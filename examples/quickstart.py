#!/usr/bin/env python3
"""Quickstart: the paper's VectorAdd example, three ways.

Runs Listing 1 (explicit copies), Listing 2 (UVM) and Listing 3 (UVM with
a discard + buffer reuse) on a simulated RTX 3080 Ti over PCIe-4, checks
the computed results, and prints the interconnect traffic each approach
generated.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CudaRuntime
from repro.workloads.vector_add import explicit_vector_add, uvm_vector_add

N = 4 * 1024 * 1024  # 16 MiB per vector


def show(title: str, runtime: CudaRuntime) -> None:
    stats = runtime.stats()
    print(
        f"{title:<28} elapsed={stats['elapsed_seconds'] * 1e3:7.2f} ms   "
        f"traffic={stats['traffic_gb'] * 1e3:7.1f} MB "
        f"(h2d {stats['traffic_h2d_gb'] * 1e3:.1f} / "
        f"d2h {stats['traffic_d2h_gb'] * 1e3:.1f})"
    )


def main() -> None:
    expected = np.arange(N, dtype=np.float32) + 2.0

    # Listing 1: explicit device buffers and memcpys.
    runtime = CudaRuntime()
    result = {}

    def explicit(cuda):
        result["out"] = yield from explicit_vector_add(cuda, N)

    runtime.run(explicit)
    assert np.allclose(result["out"], expected)
    show("Listing 1 (explicit)", runtime)

    # Listing 2: UVM with optional prefetches.
    runtime = CudaRuntime()

    def managed(cuda):
        result["out"] = yield from uvm_vector_add(cuda, N, prefetch=True)

    runtime.run(managed)
    assert np.allclose(result["out"], expected)
    show("Listing 2 (UVM)", runtime)

    # Listing 3: repurpose buffer A after a discard.
    for mode in ("eager", "lazy"):
        runtime = CudaRuntime()

        def reuse(cuda, mode=mode):
            result["out"] = yield from uvm_vector_add(
                cuda, N, prefetch=True, reuse_with_discard=mode
            )

        runtime.run(reuse)
        # The second kernel computed B + C = 2 + (A + 2) into A.
        assert np.allclose(result["out"], expected + 2.0)
        show(f"Listing 3 (discard={mode})", runtime)

    print("\nAll results verified: C = A + B (and the Listing-3 reuse).")


if __name__ == "__main__":
    main()
