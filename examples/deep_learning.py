#!/usr/bin/env python3
"""Deep learning training with GPU memory oversubscription (§7.5).

Trains the paper's VGG-16 on a simulated RTX 3080 Ti (scaled 1/8 for a
fast demo) at batch sizes below and above the GPU's capacity, comparing:

- No-UVM (Listing 4) — crashes once the footprint exceeds device memory,
- UVM-opt — survives oversubscription but pays redundant transfers,
- UvmDiscard / UvmDiscardLazy — Listing 6's discard directives.

Expected output shape (the paper's Figure 6a): everyone is equal while
the model fits; past the capacity crossover No-UVM disappears and the
discard systems sustain clearly higher throughput than plain UVM.

Run:  python examples/deep_learning.py
"""

from __future__ import annotations

from repro.cuda.device import rtx_3080ti
from repro.errors import OutOfMemoryError
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16

SCALE = 1 / 8
BATCH_SIZES = (50, 75, 100, 125, 150)
SYSTEMS = (
    System.NO_UVM,
    System.UVM_OPT,
    System.UVM_DISCARD,
    System.UVM_DISCARD_LAZY,
)


def main() -> None:
    network = vgg16().scaled(SCALE)
    gpu = rtx_3080ti().scaled(SCALE)
    print(f"GPU memory: {gpu.memory_bytes / 1e9:.2f} GB (1/8-scale 3080 Ti)\n")
    header = f"{'batch':>6} {'footprint':>10}" + "".join(
        f"{s.value:>16}" for s in SYSTEMS
    )
    print(header + "   (images/second)")
    for batch_size in BATCH_SIZES:
        network_footprint = network.total_bytes(batch_size)
        cells = [f"{batch_size:>6} {network_footprint / 1e9:>9.2f}G"]
        for system in SYSTEMS:
            trainer = DarknetTrainer(
                network, TrainerConfig(batch_size=batch_size), system
            )
            try:
                result = trainer.run(gpu, pcie_gen4())
                cells.append(f"{result.metric:>16.1f}")
            except OutOfMemoryError:
                cells.append(f"{'OOM':>16}")
        print("".join(cells))
    print(
        "\nNo-UVM dies at the capacity crossover; UVM survives; discard"
        "\nrecovers most of the lost throughput by eliminating redundant"
        "\ntransfers of dead activations (paper: +61% on ResNet-53)."
    )


if __name__ == "__main__":
    main()
