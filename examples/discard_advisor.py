#!/usr/bin/env python3
"""Finding discard opportunities automatically.

§8 of the paper notes that "a compiler-assisted approach that detects the
buffer reuse distance can be extended to diagnose the insertion of
UvmDiscard API calls".  This example does that dynamically: it records a
ping-pong pipeline's kernel-level access trace with
:class:`~repro.core.advisor.DiscardAdvisor`, reads off the provably safe
discard points, applies them, and measures the traffic saved under
memory pressure.

Run:  python examples/discard_advisor.py
"""

from __future__ import annotations

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.core.advisor import DiscardAdvisor
from repro.cuda.device import rtx_3080ti
from repro.units import MIB

ROUNDS = 4
BUFFER_BYTES = 256 * MIB


def pipeline(cuda: CudaRuntime, discard_after=None):
    """A two-stage pipeline ping-ponging between two large buffers."""
    discard_after = discard_after or {}
    ping = cuda.malloc_managed(BUFFER_BYTES, "ping")
    pong = cuda.malloc_managed(BUFFER_BYTES, "pong")
    buffers = {"ping": ping, "pong": pong}
    yield from cuda.host_write(ping)
    for round_index in range(ROUNDS):
        stage1 = KernelSpec(
            f"stage1_{round_index}",
            [
                BufferAccess(ping, AccessMode.READ),
                BufferAccess(pong, AccessMode.WRITE),
            ],
            flops=1e9,
            waves=4,
        )
        cuda.launch(stage1)
        for name in discard_after.get("stage1", []):
            cuda.discard_async(buffers[name], mode="eager")
        stage2 = KernelSpec(
            f"stage2_{round_index}",
            [
                BufferAccess(pong, AccessMode.READ),
                BufferAccess(ping, AccessMode.WRITE),
            ],
            flops=1e9,
            waves=4,
        )
        cuda.launch(stage2)
        for name in discard_after.get("stage2", []):
            cuda.discard_async(buffers[name], mode="eager")
    yield from cuda.synchronize()


def trace_the_pipeline() -> DiscardAdvisor:
    """Record the buffer-level access trace the advisor analyses."""
    advisor = DiscardAdvisor()
    for _ in range(ROUNDS):
        advisor.observe("stage1", "ping", AccessMode.READ)
        advisor.observe("stage1", "pong", AccessMode.WRITE)
        advisor.observe("stage2", "pong", AccessMode.READ)
        advisor.observe("stage2", "ping", AccessMode.WRITE)
    return advisor


def run(discard_after=None) -> dict:
    # A GPU small enough that the two buffers oversubscribe it.
    gpu = rtx_3080ti().scaled(1 / 32)
    runtime = CudaRuntime(gpu=gpu)
    runtime.run(lambda cuda: pipeline(cuda, discard_after))
    return runtime.stats()


def main() -> None:
    advisor = trace_the_pipeline()
    plan = {
        "stage1": advisor.suggested_after("stage1"),
        "stage2": advisor.suggested_after("stage2"),
    }
    print("Advisor-derived discard plan (buffer dead after kernel):")
    for kernel, buffers in plan.items():
        print(f"  after {kernel}: discard {buffers or 'nothing'}")

    before = run()
    after = run(plan)
    print(
        f"\nwithout discards: {before['traffic_gb']:.2f} GB traffic, "
        f"{before['elapsed_seconds'] * 1e3:.1f} ms"
    )
    print(
        f"with advised discards: {after['traffic_gb']:.2f} GB traffic, "
        f"{after['elapsed_seconds'] * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
