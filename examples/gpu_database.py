#!/usr/bin/env python3
"""GPU database hash-join under memory oversubscription (§7.4).

Reproduces the paper's headline result: "For a GPU database application
with a data size twice the GPU memory, UvmDiscard enables a 4.17 times
speedup by eliminating 85.8% of memory transfers."

The join's preprocessing kernels fill large scratch and partition buffers
that are dead as soon as the join consumes them; without the discard
directive the UVM driver dutifully swaps all of that dead data out to the
host and back again every round.

Run:  python examples/gpu_database.py
"""

from __future__ import annotations

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload

SCALE = 1 / 4
RATIOS = (0.99, 2.0, 3.0, 4.0)


def main() -> None:
    workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
    gpu = rtx_3080ti().scaled(SCALE)
    link = pcie_gen4()
    print(
        f"hash-join footprint: {workload.config.app_bytes / 1e9:.2f} GB, "
        f"GPU: {gpu.memory_bytes / 1e9:.2f} GB (1/4 scale)\n"
    )
    print(f"{'oversub.':>9} {'system':>16} {'runtime':>9} {'speedup':>8} {'traffic':>9}")
    for ratio in RATIOS:
        baseline = None
        for system in (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY):
            result = workload.run(system, ratio, gpu, link)
            if baseline is None:
                baseline = result.elapsed_seconds
            label = "<100%" if ratio <= 1 else f"{ratio:.0%}"
            print(
                f"{label:>9} {system.value:>16} "
                f"{result.elapsed_seconds:>8.3f}s "
                f"{baseline / result.elapsed_seconds:>7.2f}x "
                f"{result.traffic_gb:>8.2f}G"
            )
        print()
    print("At 200% the discard systems approach the paper's ~4x speedup.")


if __name__ == "__main__":
    main()
