#!/usr/bin/env python3
"""Export a chrome://tracing timeline of a simulated training batch.

Attaches a :class:`repro.Timeline` to the runtime, trains one scaled
VGG-16 batch under UVM with discard, and writes ``vgg16_trace.json`` —
load it in chrome://tracing or https://ui.perfetto.dev to see kernels on
the compute track overlapping prefetches and evictions on the copy
engine tracks, exactly like an Nsight capture of the real system.

Run:  python examples/timeline_trace.py
"""

from __future__ import annotations

from repro import Timeline
from repro.cuda.device import rtx_3080ti
from repro.cuda.runtime import CudaRuntime
from repro.harness.oversubscribe import apply_oversubscription
from repro.harness.systems import System
from repro.instrument.timeline import TRACK_D2H, TRACK_H2D
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16

SCALE = 1 / 16
BATCH = 125  # oversubscribed at this scale
OUTPUT = "vgg16_trace.json"


def main() -> None:
    network = vgg16().scaled(SCALE)
    trainer = DarknetTrainer(
        network, TrainerConfig(batch_size=BATCH, batches=2), System.UVM_DISCARD
    )
    runtime = CudaRuntime(gpu=rtx_3080ti().scaled(SCALE), link=pcie_gen4())
    apply_oversubscription(runtime, trainer.app_bytes, 1.0)
    timeline = Timeline.attach(runtime)
    runtime.run(trainer.program())

    compute_track = f"{runtime.gpu.name}:compute"
    compute = timeline.busy_seconds(compute_track)
    h2d = timeline.busy_seconds(TRACK_H2D)
    d2h = timeline.busy_seconds(TRACK_D2H)
    overlap = timeline.overlap_seconds(compute_track, TRACK_H2D)
    print(f"spans recorded:     {len(timeline.spans)}")
    print(f"compute busy:       {compute * 1e3:8.2f} ms")
    print(f"H2D engine busy:    {h2d * 1e3:8.2f} ms")
    print(f"D2H engine busy:    {d2h * 1e3:8.2f} ms")
    print(f"compute/H2D overlap:{overlap * 1e3:8.2f} ms (prefetch pipelining)")
    timeline.write_chrome_trace(OUTPUT)
    print(f"\nwrote {OUTPUT} — open it in chrome://tracing")


if __name__ == "__main__":
    main()
