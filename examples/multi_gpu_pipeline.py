#!/usr/bin/env python3
"""Multi-GPU pipelines, peer links and discard (§2.3 extension).

A producer kernel on gpu0 hands a payload buffer to a consumer kernel on
gpu1 every stage; the unified address space makes the hand-off automatic
(the consumer's faults pull the pages over).  Two knobs change the cost
dramatically:

- a **P2P link** (NVLink) moves the payload in one D2D hop instead of
  bouncing through host memory over PCIe twice;
- **discard** keeps the producer's dead scratch data from ever being
  migrated at all.

Run:  python examples/multi_gpu_pipeline.py
"""

from __future__ import annotations

from repro import AccessMode, BufferAccess, CudaRuntime, GpuSpec, KernelSpec
from repro.interconnect import nvlink_gen3
from repro.units import GB, MIB

STAGES = 6
PAYLOAD = 32 * MIB


def gpu(name: str) -> GpuSpec:
    return GpuSpec(
        name=name,
        memory_bytes=128 * MIB,
        effective_flops=2e12,
        local_bandwidth=900 * GB,
        zero_bandwidth=500 * GB,
        model="demo GPU",
    )


def run(p2p: bool, discard: bool) -> CudaRuntime:
    runtime = CudaRuntime(
        gpus=[gpu("gpu0"), gpu("gpu1")],
        p2p_link=nvlink_gen3() if p2p else None,
    )
    payload = runtime.malloc_managed(PAYLOAD, "payload")
    scratch = runtime.malloc_managed(PAYLOAD, "scratch")

    def program(cuda):
        for stage in range(STAGES):
            cuda.launch(
                KernelSpec(
                    f"produce_{stage}",
                    [
                        BufferAccess(scratch, AccessMode.WRITE),
                        BufferAccess(payload, AccessMode.WRITE),
                    ],
                    flops=1e8,
                ),
                device="gpu0",
            )
            if discard:
                cuda.discard_async(scratch, mode="eager")
            cuda.launch(
                KernelSpec(
                    f"consume_{stage}",
                    [BufferAccess(payload, AccessMode.READ)],
                    flops=1e8,
                ),
                device="gpu1",
            )
            if discard:
                cuda.discard_async(payload, mode="eager")
            yield from cuda.synchronize()

    runtime.run(program)
    return runtime


def main() -> None:
    print(f"{STAGES} hand-offs of a {PAYLOAD // MIB} MiB payload, gpu0 -> gpu1\n")
    print(f"{'p2p link':>9} {'discard':>8} {'elapsed':>10} {'h2d':>8} {'d2h':>8} {'d2d':>8}")
    for p2p in (False, True):
        for discard in (False, True):
            runtime = run(p2p, discard)
            traffic = runtime.driver.traffic
            print(
                f"{'NVLink' if p2p else 'none':>9} {str(discard):>8} "
                f"{runtime.elapsed * 1e3:>8.2f}ms "
                f"{traffic.bytes_h2d / 1e6:>6.0f}MB "
                f"{traffic.bytes_d2h / 1e6:>6.0f}MB "
                f"{traffic.bytes_d2d / 1e6:>6.0f}MB"
            )
    print(
        "\nWithout P2P the payload crosses PCIe twice per stage; discard"
        "\nkeeps the dead scratch buffer out of the migration machinery"
        "\nentirely — the §2.3 point that coherent, multi-GPU systems still"
        "\nwant a discard directive."
    )


if __name__ == "__main__":
    main()
