"""Final coverage batch: leftover branches across the stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.engine import Environment
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.units import MIB
from repro.workloads.dl import TrainerConfig, darknet19, vgg16
from repro.workloads.dl.networks import NetworkSpec
from repro.workloads.dl.trainer import DarknetTrainer, _waves_for


class TestEngineDeadlines:
    def test_run_until_between_events(self):
        env = Environment()

        def ticker():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run(until=2.5)
        assert env.now == pytest.approx(2.5)
        env.run()  # resume to completion
        assert env.now == pytest.approx(10.0)

    def test_initial_time(self):
        env = Environment(initial_time=5.0)
        assert env.now == 5.0

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(6.0)


class TestWavesHeuristic:
    def test_bounds(self):
        assert _waves_for(0) == 1
        assert _waves_for(1 << 40) == 12
        assert 1 <= _waves_for(300 * MIB) <= 12


class TestNetworkProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_scaled_total_proportional(self, factor):
        network = darknet19()
        scaled = network.scaled(factor)
        assert scaled.total_bytes(32) == pytest.approx(
            network.total_bytes(32) * factor, rel=0.05
        )

    def test_output_bytes_never_zero(self):
        network = vgg16().scaled(0.001)
        for layer in network.layers:
            assert network.output_bytes(layer, 1) >= 4

    def test_spec_requires_layers(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NetworkSpec(
                name="empty",
                layers=(),
                input_bytes_per_sample=4,
                label_bytes_per_sample=4,
            )


class TestWarmupMeasurement:
    def test_warmup_excluded_from_throughput(self):
        """More warm-up batches must not change the steady-state metric."""
        network = vgg16().scaled(1 / 32)
        gpu = tiny_gpu(256)

        def run(warmup, batches):
            trainer = DarknetTrainer(
                network,
                TrainerConfig(batch_size=60, batches=batches,
                              warmup_batches=warmup),
                System.UVM_OPT,
            )
            return trainer.run(gpu, pcie_gen4()).metric

        assert run(1, 3) == pytest.approx(run(2, 4), rel=0.02)


class TestStatsBreakdown:
    def test_traffic_breakdown_by_reason(self):
        runtime = CudaRuntime(gpu=tiny_gpu(16))
        a = runtime.malloc_managed(10 * MIB, "a")
        b = runtime.malloc_managed(10 * MIB, "b")

        def program(cuda):
            yield from cuda.host_write(a)
            cuda.prefetch_async(a)           # prefetch H2D
            cuda.launch(                      # faults + evictions
                KernelSpec("k", [BufferAccess(b, AccessMode.WRITE)], flops=1e6)
            )
            yield from cuda.synchronize()

        runtime.run(program)
        breakdown = runtime.driver.traffic.breakdown()
        assert "prefetch" in breakdown
        assert breakdown["prefetch"] == pytest.approx(10 * MIB / 1e9, rel=0.01)
        # Eviction traffic appears once memory pressure kicked in.
        assert "eviction" in breakdown


class TestBufferEdgeSizes:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=9 * MIB))
    def test_any_size_round_trips_through_the_driver(self, nbytes):
        runtime = CudaRuntime(gpu=tiny_gpu(32))
        buffer = runtime.malloc_managed(nbytes, "odd")

        def program(cuda):
            yield from cuda.host_write(buffer)
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()
            yield from cuda.host_read(buffer)

        runtime.run(program)
        assert runtime.driver.traffic.bytes_h2d == nbytes
        assert runtime.driver.traffic.bytes_d2h == nbytes
