"""Tests for the experiment harness: oversubscription, systems, results."""

import pytest

from conftest import tiny_gpu

from repro.cuda.runtime import CudaRuntime
from repro.errors import ConfigurationError
from repro.harness import (
    DiscardPolicy,
    ExperimentResult,
    ResultTable,
    System,
    apply_oversubscription,
    occupant_bytes,
)
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE, GIB, MIB


class TestOccupantBytes:
    def test_fits_means_no_occupant(self):
        assert occupant_bytes(12 * GIB, 6 * GIB, 0.99) == 0
        assert occupant_bytes(12 * GIB, 6 * GIB, 1.0) == 0

    def test_ratio_200_halves_available(self):
        gpu = 12 * GIB
        app = 8 * GIB
        occupant = occupant_bytes(gpu, app, 2.0)
        available = gpu - occupant
        assert available == pytest.approx(app / 2.0, abs=BIG_PAGE)

    def test_occupant_is_block_aligned(self):
        occupant = occupant_bytes(12 * GIB, 8 * GIB + 12345, 3.0)
        assert occupant % BIG_PAGE == 0

    def test_impossible_ratio_rejected(self):
        # App already bigger than GPU: a 1.5x ratio can't be constructed
        # when the app/1.5 still exceeds the whole GPU.
        with pytest.raises(ConfigurationError):
            occupant_bytes(4 * GIB, 16 * GIB, 1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            occupant_bytes(GIB, GIB, 0)
        with pytest.raises(ConfigurationError):
            occupant_bytes(GIB, 0, 2.0)

    def test_apply_reserves_memory(self):
        runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=64))
        reserved = apply_oversubscription(runtime, 32 * MIB, 2.0)
        assert reserved == 48 * MIB
        assert runtime.driver.gpu_free_bytes("gpu0") == 16 * MIB


class TestSystems:
    def test_flags(self):
        assert not System.NO_UVM.uses_uvm
        assert System.UVM_OPT.uses_uvm
        assert not System.UVM_OPT.uses_discard
        assert System.UVM_DISCARD.uses_discard
        assert System.UVM_DISCARD_LAZY.uses_discard

    def test_policy_uvm_opt_never_discards(self):
        policy = DiscardPolicy(System.UVM_OPT)
        assert policy.mode_for(True) is None
        assert policy.mode_for(False) is None

    def test_policy_eager_system_always_eager(self):
        policy = DiscardPolicy(System.UVM_DISCARD)
        assert policy.mode_for(True) == "eager"
        assert policy.mode_for(False) == "eager"

    def test_policy_lazy_requires_prefetch_pairing(self):
        """§7.1: lazy replaces only prefetch-paired discards."""
        policy = DiscardPolicy(System.UVM_DISCARD_LAZY)
        assert policy.mode_for(True) == "lazy"
        assert policy.mode_for(False) == "eager"


class TestResultTable:
    def _result(self, system, config, elapsed, traffic=1.0, metric=None):
        return ExperimentResult(
            system=system,
            config=config,
            elapsed_seconds=elapsed,
            traffic_gb=traffic,
            traffic_h2d_gb=traffic / 2,
            traffic_d2h_gb=traffic / 2,
            redundant_gb=0.0,
            useful_gb=traffic,
            metric=metric,
        )

    def test_normalized_runtime(self):
        table = ResultTable("t", ["200%"])
        table.add(self._result("base", "200%", 2.0))
        table.add(self._result("fast", "200%", 1.0))
        assert table.normalized_runtime("fast", "200%", "base") == pytest.approx(0.5)

    def test_render_contains_all_cells(self):
        table = ResultTable("My table", ["<100%", "200%"])
        table.add(self._result("sysA", "<100%", 1.0, traffic=3.25))
        table.add(self._result("sysA", "200%", 2.0, traffic=7.5))
        text = table.render("traffic_gb")
        assert "My table" in text
        assert "sysA" in text
        assert "3.25" in text and "7.50" in text

    def test_render_missing_cell_dash(self):
        table = ResultTable("t", ["a", "b"])
        table.add(self._result("s", "a", 1.0))
        assert "-" in table.render("traffic_gb")

    def test_render_normalized_requires_baseline(self):
        table = ResultTable("t", ["a"])
        table.add(self._result("s", "a", 1.0))
        with pytest.raises(ValueError):
            table.render("normalized_runtime")

    def test_render_metric_none_dash(self):
        table = ResultTable("t", ["a"])
        table.add(self._result("s", "a", 1.0, metric=None))
        assert "-" in table.render("metric")


class TestRunner:
    def test_ratio_label(self):
        assert ratio_label(0.99) == "<100%"
        assert ratio_label(1.0) == "<100%"
        assert ratio_label(2.0) == "200%"

    def test_ratio_label_boundaries(self):
        # At or below 1.0 is the paper's "fits" column; just above it
        # rounds to a plain whole-percent header.
        assert ratio_label(1.001) == "100%"
        assert ratio_label(1.25) == "125%"
        assert ratio_label(1.5) == "150%"

    def test_ratio_label_rounds_half_up_decimally(self):
        # 2.675 * 100 is 267.49999... in binary floats; the label must
        # still round the *decimal* value half-up to 268%.
        assert ratio_label(2.675) == "268%"
        assert ratio_label(1.125) == "113%"
        assert ratio_label(3.9999) == "400%"

    def test_run_uvm_experiment_end_to_end(self):
        def program(cuda):
            buffer = cuda.malloc_managed(8 * MIB)
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()

        result = run_uvm_experiment(
            program,
            "UVM-opt",
            "200%",
            app_bytes=16 * MIB,
            ratio=2.0,
            gpu=tiny_gpu(memory_mib=64),
            link=pcie_gen4(),
            metric=lambda rt: 42.0,
        )
        assert result.system == "UVM-opt"
        assert result.config == "200%"
        assert result.metric == 42.0
        assert result.counters["zeroed_blocks"] == 4
