"""The counter-name contract: every runtime ``bump`` uses a declared name.

:class:`~repro.instrument.counters.Counters` declares each well-known
counter as an uppercase class constant with a one-line description.  A
typo at a call site would otherwise create a silent parallel counter that
no report, test or dashboard ever reads — so this suite spies on every
``bump`` during a real driver run (chaos mechanisms included) and
asserts the observed names are a subset of the declared set, and that
the docs reference table stays generated from the same source.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.instrument.counters import Counters

REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture
def bump_spy(monkeypatch):
    seen = []
    real_bump = Counters.bump

    def spying_bump(self, name, amount=1):
        seen.append(name)
        return real_bump(self, name, amount)

    monkeypatch.setattr(Counters, "bump", spying_bump)
    return seen


class TestDeclaredNames:
    def test_declarations_and_descriptions_agree(self):
        declared = Counters.declared_names()
        assert declared, "no declared counters found"
        assert set(Counters.DESCRIPTIONS) == set(declared)
        assert all(Counters.DESCRIPTIONS[name] for name in declared)

    def test_reference_table_lists_every_counter(self):
        table = Counters.reference_table()
        for name in Counters.declared_names():
            assert f"`{name}`" in table

    def test_runtime_bumps_use_declared_names_only(self, bump_spy):
        from repro.harness.sweep import SweepPoint, execute_point

        # A chaos-laden oversubscribed point drives the fault, eviction,
        # discard, prefetch AND injection/recovery counter paths.
        point = SweepPoint(
            workload="radix",
            system="UvmDiscard",
            ratio=2.0,
            scale=0.03125,
            chaos=(
                ("seed", 3),
                ("transfer_fault_interval", 300),
                ("link_degrade_interval", 700),
                ("ecc_retire_interval", 1500),
                ("replay_storm_interval", 900),
                ("pressure_spike_interval", 1100),
            ),
        )
        result = execute_point(point)
        assert result is not None
        assert bump_spy, "expected the run to bump counters"
        undeclared = sorted(set(bump_spy) - Counters.declared_names())
        assert not undeclared, (
            f"Counters.bump called with undeclared names {undeclared}; "
            f"declare them as Counters constants (with DESCRIPTIONS entries)"
        )

    def test_docs_table_in_sync_with_code(self):
        """docs/OBSERVABILITY.md embeds the generated reference table."""
        doc = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
        assert Counters.reference_table() in doc
