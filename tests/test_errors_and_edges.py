"""Error-hierarchy tests plus engine/driver edge cases."""

import pytest

from repro import errors
from repro.engine import Environment
from repro.engine.core import AllOf


class TestErrorHierarchy:
    ALL = (
        errors.SimulationError,
        errors.OutOfMemoryError,
        errors.InvalidAddressError,
        errors.MappingError,
        errors.StreamError,
        errors.DiscardSemanticsError,
        errors.DataCorruptionError,
        errors.ConfigurationError,
    )

    @pytest.mark.parametrize("exc", ALL)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.OutOfMemoryError("full")

    def test_distinct_types(self):
        assert len(set(self.ALL)) == len(self.ALL)


class TestAllOfEdgeCases:
    def test_failure_propagates(self):
        env = Environment()
        good = env.timeout(1.0)
        bad = env.event()

        def trigger():
            yield env.timeout(0.5)
            bad.fail(ValueError("child failed"))

        def waiter():
            yield AllOf(env, [good, bad])

        env.process(trigger())
        env.process(waiter())
        with pytest.raises(ValueError, match="child failed"):
            env.run()

    def test_already_fired_children(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()  # process the trigger
        seen = {}

        def waiter():
            seen["values"] = yield AllOf(env, [done])

        env.process(waiter())
        env.run()
        assert seen["values"] == ["early"]


class TestEventStateQueries:
    def test_ok_and_triggered(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        event.succeed(1)
        assert event.triggered and event.ok

    def test_failed_event_not_ok(self):
        env = Environment()
        event = env.event()
        try:
            event.fail(RuntimeError("x"))
        except RuntimeError:
            pass
        assert event.triggered and not event.ok
        assert isinstance(event.exception, RuntimeError)

    def test_process_is_alive(self):
        env = Environment()

        def body():
            yield env.timeout(1.0)

        process = env.process(body())
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestRuntimeMisc:
    def test_nested_child_chain(self):
        """Deeply nested process composition resolves correctly."""
        env = Environment()

        def leaf(depth):
            yield env.timeout(0.1)
            return depth

        def nest(depth):
            if depth == 0:
                result = yield env.process(leaf(0))
                return result
            result = yield env.process(nest(depth - 1))
            return result + 1

        result = env.run(until=env.process(nest(20)))
        assert result == 20
        assert env.now == pytest.approx(0.1)
