"""Tests for the VaBlock state record and the per-GPU page queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.driver.queues import DiscardedQueue, GpuPageQueues, UsedQueue
from repro.driver.va_block import CPU, DiscardKind, VaBlock
from repro.errors import SimulationError
from repro.units import BIG_PAGE


def make_block(index=0, used=BIG_PAGE):
    return VaBlock(index, used)


class TestVaBlock:
    def test_initial_state(self):
        block = make_block(3)
        assert block.residency is None
        assert not block.populated
        assert not block.discarded
        assert block.sw_dirty
        assert block.version == 0
        assert not block.on_gpu and not block.on_cpu

    def test_used_bytes_validation(self):
        with pytest.raises(SimulationError):
            VaBlock(0, 0)
        with pytest.raises(SimulationError):
            VaBlock(0, BIG_PAGE + 1)

    def test_va_range(self):
        block = VaBlock(5, 1234)
        assert block.va_range.start == 5 * BIG_PAGE
        assert block.va_range.length == 1234

    def test_residency_predicates(self):
        block = make_block()
        block.residency = CPU
        assert block.on_cpu and not block.on_gpu
        block.residency = "gpu0"
        assert block.on_gpu and not block.on_cpu

    def test_mark_discarded_eager(self):
        block = make_block()
        block.record_write()
        block.mark_discarded(DiscardKind.EAGER)
        assert block.discarded
        assert block.discard_kind is DiscardKind.EAGER
        assert not block.populated
        assert block.sw_dirty  # only lazy clears the software dirty bit

    def test_mark_discarded_lazy_clears_dirty_bit(self):
        block = make_block()
        block.mark_discarded(DiscardKind.LAZY)
        assert not block.sw_dirty

    def test_write_after_discard_tracked(self):
        """The ground truth behind the §5.2 misuse detector."""
        block = make_block()
        block.mark_discarded(DiscardKind.LAZY)
        assert not block.written_since_discard
        block.record_write()
        assert block.written_since_discard
        assert block.populated

    def test_revive_resets_discard_state(self):
        block = make_block()
        block.mark_discarded(DiscardKind.LAZY)
        block.revive()
        assert not block.discarded
        assert block.discard_kind is None
        assert block.sw_dirty
        assert not block.written_since_discard

    def test_version_bumps_on_write(self):
        block = make_block()
        block.record_write()
        block.record_write()
        assert block.version == 2

    def test_transfer_needed_for_eviction(self):
        """§5.3: discarded or unpopulated blocks evict with no transfer."""
        block = make_block()
        assert not block.transfer_needed_for_eviction
        block.record_write()
        assert block.transfer_needed_for_eviction
        block.mark_discarded(DiscardKind.EAGER)
        assert not block.transfer_needed_for_eviction


class TestUsedQueue:
    def test_lru_order(self):
        queue = UsedQueue()
        blocks = [make_block(i) for i in range(3)]
        for block in blocks:
            queue.touch(block)
        assert queue.pop_lru() is blocks[0]
        assert queue.pop_lru() is blocks[1]

    def test_touch_moves_to_mru(self):
        queue = UsedQueue()
        blocks = [make_block(i) for i in range(3)]
        for block in blocks:
            queue.touch(block)
        queue.touch(blocks[0])  # refresh recency
        assert queue.pop_lru() is blocks[1]

    def test_remove_and_discard(self):
        queue = UsedQueue()
        block = make_block(1)
        queue.touch(block)
        queue.remove(block)
        assert block not in queue
        with pytest.raises(SimulationError):
            queue.remove(block)
        queue.discard(block)  # no-op on absent block

    def test_restore_lru_puts_block_first(self):
        queue = UsedQueue()
        a, b = make_block(1), make_block(2)
        queue.touch(a)
        queue.touch(b)
        popped = queue.pop_lru()
        queue.restore_lru(popped)
        assert queue.pop_lru() is a
        with pytest.raises(SimulationError):
            queue.restore_lru(b)

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            UsedQueue().pop_lru()

    def test_peek_lru(self):
        queue = UsedQueue()
        assert queue.peek_lru() is None
        block = make_block(1)
        queue.touch(block)
        assert queue.peek_lru() is block
        assert len(queue) == 1

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
    def test_lru_matches_reference_model(self, touches):
        """The pseudo-LRU queue behaves like a reference recency list."""
        queue = UsedQueue()
        blocks = {i: make_block(i) for i in range(10)}
        reference = []
        for index in touches:
            queue.touch(blocks[index])
            if index in reference:
                reference.remove(index)
            reference.append(index)
        drained = []
        while len(queue):
            drained.append(queue.pop_lru().index)
        assert drained == reference


class TestDiscardedQueue:
    def test_fifo_order(self):
        queue = DiscardedQueue()
        blocks = [make_block(i) for i in range(3)]
        for block in blocks:
            queue.push(block)
        assert queue.pop_oldest() is blocks[0]
        assert queue.pop_oldest() is blocks[1]

    def test_double_push_rejected(self):
        queue = DiscardedQueue()
        block = make_block(1)
        queue.push(block)
        with pytest.raises(SimulationError):
            queue.push(block)

    def test_remove(self):
        queue = DiscardedQueue()
        block = make_block(1)
        queue.push(block)
        queue.remove(block)
        assert len(queue) == 0
        with pytest.raises(SimulationError):
            queue.remove(block)

    def test_restore_oldest(self):
        queue = DiscardedQueue()
        a, b = make_block(1), make_block(2)
        queue.push(a)
        queue.push(b)
        popped = queue.pop_oldest()
        queue.restore_oldest(popped)
        assert queue.pop_oldest() is a

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            DiscardedQueue().pop_oldest()


class TestGpuPageQueues:
    def test_forget_from_either_queue(self):
        queues = GpuPageQueues("gpu0")
        a, b = make_block(1), make_block(2)
        queues.used.touch(a)
        queues.discarded.push(b)
        assert queues.resident_blocks() == 2
        queues.forget(a)
        queues.forget(b)
        queues.forget(make_block(3))  # absent: no-op
        assert queues.resident_blocks() == 0
