"""Coverage for runtime/driver extras: event log wiring, host_update,
per-device memcpy engines."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.instrument.traffic import TransferDirection
from repro.units import MIB


class TestDriverEventLog:
    def test_driver_logs_when_enabled(self):
        config = UvmDriverConfig(event_log_enabled=True)
        runtime = CudaRuntime(gpu=tiny_gpu(8), driver_config=config)
        buffer = runtime.malloc_managed(6 * MIB, "a")
        other = runtime.malloc_managed(6 * MIB, "b")

        def program(cuda):
            cuda.prefetch_async(buffer)
            cuda.discard_async(buffer, mode="eager")
            cuda.prefetch_async(other)  # pressure -> reclaim + zero logs
            yield from cuda.synchronize()

        runtime.run(program)
        log = runtime.driver.log
        assert len(log) > 0
        categories = {entry.category for entry in log}
        assert "evict" in categories or "zero" in categories

    def test_log_silent_by_default(self):
        runtime = CudaRuntime(gpu=tiny_gpu(8))
        buffer = runtime.malloc_managed(6 * MIB, "a")

        def program(cuda):
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()

        runtime.run(program)
        assert len(runtime.driver.log) == 0


class TestHostUpdate:
    def test_readwrite_from_host(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        buffer = runtime.malloc_managed(4 * MIB, "a")

        def program(cuda):
            yield from cuda.host_write(buffer)
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()
            yield from cuda.host_update(buffer)  # RMW pulls data back

        runtime.run(program)
        runtime.driver.finalize()
        # The GPU round trip was justified by the read side of the RMW.
        assert runtime.driver.rmt.useful_bytes == 2 * 4 * MIB
        assert all(b.on_cpu for b in buffer.blocks)
        assert all(b.version == 2 for b in buffer.blocks)


class TestPerDeviceMemcpy:
    def test_memcpy_engines_per_device(self):
        runtime = CudaRuntime(
            gpus=[tiny_gpu(64, "gpu0"), tiny_gpu(64, "gpu1")]
        )
        s0 = runtime.create_stream("s0")
        s1 = runtime.create_stream("s1")

        def program(cuda):
            # Same direction on different devices: engines are distinct,
            # so the transfers overlap.
            cuda.memcpy_async(
                64 * MIB, TransferDirection.HOST_TO_DEVICE, stream=s0,
                device="gpu0",
            )
            cuda.memcpy_async(
                64 * MIB, TransferDirection.HOST_TO_DEVICE, stream=s1,
                device="gpu1",
            )
            yield from cuda.synchronize()

        runtime.run(program)
        single = runtime.link.transfer_time(64 * MIB)
        assert runtime.elapsed == pytest.approx(single, rel=0.05)

    def test_same_device_serializes(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        s0 = runtime.create_stream("s0")
        s1 = runtime.create_stream("s1")

        def program(cuda):
            cuda.memcpy_async(
                64 * MIB, TransferDirection.HOST_TO_DEVICE, stream=s0
            )
            cuda.memcpy_async(
                64 * MIB, TransferDirection.HOST_TO_DEVICE, stream=s1
            )
            yield from cuda.synchronize()

        runtime.run(program)
        single = runtime.link.transfer_time(64 * MIB)
        assert runtime.elapsed == pytest.approx(2 * single, rel=0.05)
