"""Tests for the driver-side sequential auto-prefetcher (extension)."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.driver.config import UvmDriverConfig
from repro.gpu.access import IrregularPattern, SequentialPattern
from repro.units import MIB


def run_sweep(auto: bool, pattern=None, buffer_mib=32, waves=16):
    config = UvmDriverConfig(auto_prefetch_enabled=auto)
    runtime = CudaRuntime(gpu=tiny_gpu(64), driver_config=config)
    buffer = runtime.malloc_managed(buffer_mib * MIB, "data")

    def program(cuda):
        yield from cuda.host_write(buffer)
        cuda.begin_measurement()
        cuda.launch(
            KernelSpec(
                "sweep",
                [
                    BufferAccess(
                        buffer,
                        AccessMode.READ,
                        pattern=pattern or SequentialPattern(),
                    )
                ],
                flops=1e8,
                waves=waves,
            )
        )
        yield from cuda.synchronize()

    runtime.run(program)
    return runtime


class TestAutoPrefetch:
    def test_disabled_by_default(self):
        runtime = run_sweep(auto=False)
        assert runtime.driver.counters["auto_prefetched_blocks"] == 0

    def test_sequential_stream_detected(self):
        runtime = run_sweep(auto=True)
        assert runtime.driver.counters["auto_prefetched_blocks"] > 0

    def test_reduces_fault_batches_and_time(self):
        baseline = run_sweep(auto=False)
        assisted = run_sweep(auto=True)
        assert (
            assisted.driver.counters["gpu_faulted_blocks"]
            < baseline.driver.counters["gpu_faulted_blocks"]
        )
        assert assisted.measured_seconds < baseline.measured_seconds

    def test_irregular_access_not_prefetched(self):
        runtime = run_sweep(
            auto=True, pattern=IrregularPattern(passes=1, seed=5)
        )
        # Random fault order never establishes a stream.
        assert runtime.driver.counters["auto_prefetched_blocks"] == 0

    def test_same_total_traffic(self):
        """Prefetching ahead changes *when*, not *how much*, data moves."""
        baseline = run_sweep(auto=False)
        assisted = run_sweep(auto=True)
        assert (
            assisted.driver.traffic.total_bytes
            == baseline.driver.traffic.total_bytes
        )

    def test_trigger_threshold_respected(self):
        config = UvmDriverConfig(
            auto_prefetch_enabled=True, auto_prefetch_trigger=10_000
        )
        runtime = CudaRuntime(gpu=tiny_gpu(64), driver_config=config)
        buffer = runtime.malloc_managed(16 * MIB, "data")

        def program(cuda):
            yield from cuda.host_write(buffer)
            cuda.launch(
                KernelSpec(
                    "sweep",
                    [BufferAccess(buffer, AccessMode.READ)],
                    flops=1e7,
                    waves=8,
                )
            )
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.driver.counters["auto_prefetched_blocks"] == 0
