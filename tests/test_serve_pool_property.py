"""Property tests for the warm snapshot pool behind ``repro serve``.

Hypothesis drives random admit/fork/evict/clear sequences against a
:class:`~repro.engine.snapshot.SnapshotPool` and checks the three pool
invariants documented on the class:

1. the summed bytes of admitted entries never exceed ``max_bytes``
   (LRU eviction, oversize refusal) — verified against an exact
   OrderedDict model after every operation,
2. a live (non-quiescent) simulation is never admitted, so the pool can
   never hand out a fork of one,
3. eviction is transparent: whether or not a prefix is evicted between
   requests, :func:`~repro.serve.worker.execute_point_pooled` serves
   byte-identical outcomes, matching a cold
   :func:`~repro.harness.sweep.execute_point` baseline.
"""

from __future__ import annotations

import json
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.snapshot import EngineSnapshot, SnapshotPool
from repro.errors import SnapshotError
from repro.harness.sweep import SweepPoint, _outcome_to_dict, execute_point, prefix_key
from repro.serve.worker import execute_point_pooled


class _Quiescent:
    """A fake quiescent simulation root: deep-copyable, trivially sized."""

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def snapshot_precheck(self) -> None:
        return None


class _Live:
    """A fake mid-flight simulation: the precheck always refuses."""

    def snapshot_precheck(self) -> None:
        raise SnapshotError("live process frames on the event heap")


KEYS = st.sampled_from([("fir", 0.03125), ("radix", 0.03125), ("dl", 1.0), ("hj", 2.0)])

#: One pool operation.  Sizes are declared (``nbytes=``) so the model
#: can track byte accounting exactly; ``live`` admits use a root whose
#: quiescence precheck fails.
OPS = st.one_of(
    st.tuples(st.just("admit"), KEYS, st.integers(0, 140), st.booleans()),
    st.tuples(st.just("fork"), KEYS),
    st.tuples(st.just("evict"), KEYS),
    st.tuples(st.just("clear")),
)


@settings(max_examples=200, deadline=None)
@given(max_bytes=st.integers(0, 300), ops=st.lists(OPS, max_size=40))
def test_budget_and_lru_match_exact_model(max_bytes, ops):
    """After every operation the pool equals an exact LRU model and the
    byte budget holds."""
    pool = SnapshotPool(max_bytes=max_bytes)
    model: "OrderedDict[tuple, int]" = OrderedDict()
    admits = rejected_live = rejected_oversize = 0

    for op in ops:
        if op[0] == "admit":
            _, key, size, live = op
            root = _Live() if live else _Quiescent(str(key))
            admitted = pool.admit(key, root, nbytes=size)
            if live:
                assert not admitted
                rejected_live += 1
            elif size > max_bytes:
                assert not admitted
                rejected_oversize += 1
            else:
                assert admitted
                admits += 1
                model.pop(key, None)
                model[key] = size
                while sum(model.values()) > max_bytes:
                    model.popitem(last=False)
        elif op[0] == "fork":
            _, key = op
            forked = pool.fork(key)
            if key in model:
                assert forked is not None
                model.move_to_end(key)
            else:
                assert forked is None
        elif op[0] == "evict":
            _, key = op
            assert pool.evict(key) == (model.pop(key, None) is not None)
        else:
            pool.clear()
            model.clear()

        # The invariant under test, checked at every step.
        assert pool.nbytes <= max_bytes
        assert pool.nbytes == sum(model.values())
        assert len(pool) == len(model)
        assert list(pool._entries) == list(model)

    stats = pool.stats()
    assert stats["admitted"] == admits
    assert stats["rejected_live"] == rejected_live
    assert stats["rejected_oversize"] == rejected_oversize
    assert stats["bytes"] == pool.nbytes


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(KEYS, st.booleans()),  # (key, admit a live root?)
        min_size=1,
        max_size=20,
    )
)
def test_live_roots_are_never_admitted_nor_forked(ops):
    """A non-quiescent root is refused, and a key that only ever saw
    live admits always misses — a live snapshot can never be forked."""
    pool = SnapshotPool(max_bytes=1 << 20)
    ever_quiescent = set()
    for key, live in ops:
        root = _Live() if live else _Quiescent(str(key))
        admitted = pool.admit(key, root, nbytes=64)
        assert admitted == (not live)
        if not live:
            ever_quiescent.add(key)
    for key, _ in ops:
        forked = pool.fork(key)
        if key in ever_quiescent:
            assert isinstance(forked, _Quiescent)
        else:
            assert forked is None
    assert pool.stats()["rejected_live"] == sum(1 for _, live in ops if live)


def test_engine_snapshot_constructor_refuses_live_root():
    with pytest.raises(SnapshotError):
        EngineSnapshot(_Live())


def test_forks_are_independent_copies():
    pool = SnapshotPool(max_bytes=1 << 20)
    assert pool.admit(("k",), _Quiescent("original"), nbytes=32)
    first = pool.fork(("k",))
    first.tag = "mutated"
    second = pool.fork(("k",))
    assert second.tag == "original"
    assert first is not second


@settings(max_examples=6, deadline=None)
@given(
    system=st.sampled_from(["UVM-opt", "UvmDiscard"]),
    ratio=st.sampled_from([1.5, 2.0]),
    evict_between=st.lists(st.booleans(), min_size=1, max_size=3),
)
def test_eviction_is_transparent_to_served_results(system, ratio, evict_between):
    """Evicting a prefix between requests changes only the pool source
    (cold vs fork), never the served outcome bytes."""
    point = SweepPoint("fir", system, ratio=ratio, scale=0.03125)
    baseline = json.dumps(_outcome_to_dict(execute_point(point)), sort_keys=True)
    pool = SnapshotPool(max_bytes=64 << 20)
    key = prefix_key(point)
    warmed = False
    for do_evict in evict_between:
        outcome, source = execute_point_pooled(point, pool)
        assert source == ("fork" if warmed else "cold")
        assert json.dumps(outcome, sort_keys=True) == baseline
        warmed = True
        if do_evict:
            assert pool.evict(key)
            warmed = False
    assert pool.stats()["rejected_live"] == 0
