"""Executive-summary tests: the abstract's numbered claims, at test scale.

Each test reproduces one sentence from the paper's abstract/intro as a
qualitative band (our simulator reproduces shapes, not testbed-exact
numbers — see EXPERIMENTS.md for the full comparison).
"""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import (
    DarknetTrainer,
    TrainerConfig,
    darknet19,
    rnn_shakespeare,
)
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload

SCALE = 1 / 16
GPU = rtx_3080ti().scaled(SCALE)


def train(network, batch, system):
    trainer = DarknetTrainer(
        network.scaled(SCALE), TrainerConfig(batch_size=batch), system
    )
    return trainer.run(GPU, pcie_gen4())


class TestAbstractClaims:
    def test_database_speedup_claim(self):
        """'For a GPU database application with a data size twice the GPU
        memory, UvmDiscard enables a 4.17 times speedup by eliminating
        85.8% of memory transfers.'  Band: >=2.5x and >=65%."""
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        opt = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        eager = workload.run(System.UVM_DISCARD, 2.0, GPU, pcie_gen4())
        speedup = opt.elapsed_seconds / eager.elapsed_seconds
        eliminated = 1 - eager.traffic_gb / opt.traffic_gb
        assert speedup >= 2.5
        assert eliminated >= 0.65

    def test_rnn_claim(self):
        """'eliminate up to 60.9% of memory transfers by a compute-
        intensive recurrent neural network leading to 22.8% higher
        training throughput.'  Band: >=35% traffic, >=15% throughput."""
        opt = train(rnn_shakespeare(), 300, System.UVM_OPT)
        eager = train(rnn_shakespeare(), 300, System.UVM_DISCARD)
        traffic_cut = 1 - eager.traffic_gb / opt.traffic_gb
        throughput_gain = eager.metric / opt.metric - 1
        assert traffic_cut >= 0.35
        assert throughput_gain >= 0.15

    def test_memory_intensive_cnn_claim(self):
        """'decrease memory transfers by 60.6% on a memory-intensive
        convolutional neural network resulting in 61.2% higher training
        throughput.'  Band: >=50% traffic, >=40% throughput."""
        opt = train(darknet19(), 360, System.UVM_OPT)
        eager = train(darknet19(), 360, System.UVM_DISCARD)
        traffic_cut = 1 - eager.traffic_gb / opt.traffic_gb
        throughput_gain = eager.metric / opt.metric - 1
        assert traffic_cut >= 0.5
        assert throughput_gain >= 0.4

    def test_lazy_alleviates_eager_overhead_claim(self):
        """'UvmDiscardLazy also consistently alleviates the API overhead
        of UvmDiscard' — at fit sizes, lazy >= eager throughput."""
        for network, batch in ((darknet19(), 100), (rnn_shakespeare(), 100)):
            eager = train(network, batch, System.UVM_DISCARD)
            lazy = train(network, batch, System.UVM_DISCARD_LAZY)
            assert lazy.metric >= eager.metric, network.name

    def test_without_uvm_thousands_of_lines_claim(self):
        """'Without UVM, more than 2,000 extra lines of application-
        specific code are required' — our stand-in: the manual No-UVM
        path simply cannot run oversubscribed sizes at all."""
        from repro.errors import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            train(darknet19(), 360, System.NO_UVM)
        assert train(darknet19(), 360, System.UVM_OPT).metric > 0
