"""Mutation-style oracle tests: corrupted driver state IS detected.

A validator that never fires is indistinguishable from one that works.
Each test here injects one specific corruption into an otherwise healthy
driver — double residency, a leaked frame, queue/allocator mismatch,
broken discard semantics, broken transfer-byte conservation — and
asserts the validation layer reports exactly that problem.

The second half pins the public inspection API surface
(:meth:`repro.driver.driver.UvmDriver.inspect`) that the validation
layer and the chaos subsystem are built on: field sets, snapshot
semantics, immutability, and the guarantee that
``repro.harness.validation`` itself never reaches into private driver
state.
"""

from __future__ import annotations

import dataclasses
import inspect as pyinspect

import pytest

from conftest import tiny_gpu

from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.driver.inspect import BlockView, DriverInspection, GpuView
from repro.driver.va_block import DiscardKind
from repro.errors import SimulationError
from repro.harness.validation import (
    check_driver_invariants,
    check_transfer_conservation,
    collect_conservation_problems,
    collect_invariant_problems,
)
from repro.units import MIB


def resident_runtime(nbytes=8 * MIB) -> CudaRuntime:
    """A quiescent runtime with GPU-resident blocks to corrupt."""
    runtime = CudaRuntime(
        gpu=tiny_gpu(16),
        driver_config=UvmDriverConfig(keep_transfer_records=True),
    )

    def program(cuda):
        buf = cuda.malloc_managed(nbytes, "data")
        yield from cuda.host_write(buf)
        cuda.prefetch_async(buf)
        yield from cuda.synchronize()

    runtime.run(program)
    check_driver_invariants(runtime.driver)  # healthy before corruption
    return runtime


def gpu_block(runtime):
    return next(
        b for b in runtime.driver._blocks.values() if b.frame is not None
    )


def problems_of(runtime, allow_inflight=False):
    return collect_invariant_problems(
        runtime.driver.inspect(), allow_inflight=allow_inflight
    )


class TestCorruptionDetection:
    def test_double_resident_block_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        # Map it on the CPU while it is GPU-resident: §2.2 exclusivity.
        runtime.driver.cpu_page_table.map_block(block.index)
        problems = problems_of(runtime)
        assert any(
            "mapped on the CPU while GPU-resident" in p for p in problems
        )
        with pytest.raises(SimulationError, match="driver invariants violated"):
            check_driver_invariants(runtime.driver)

    def test_leaked_frame_detected(self):
        runtime = resident_runtime()
        gpu_name = gpu_block(runtime).residency
        # Allocate behind the driver's back: a frame no queue can reach.
        runtime.driver._gpu(gpu_name).allocator.allocate()
        problems = problems_of(runtime)
        assert any("allocator has" in p for p in problems)
        # The leak is invisible to the relaxed mid-flight contract only
        # when in-flight operations could explain it — here there are
        # none, so it must still be reported.
        assert any("allocator has" in p for p in problems_of(runtime, True))

    def test_queue_allocator_mismatch_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        frame = block.frame
        block.frame = None  # the queue entry now points at no frame
        problems = problems_of(runtime)
        assert any("GPU-resident without a frame" in p for p in problems)
        block.frame = frame

    def test_frame_without_residency_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        block.residency = None  # keeps the frame: an orphaned hold
        problems = problems_of(runtime)
        assert any("holds a frame while not on a GPU" in p for p in problems)

    def test_discard_flag_kind_disagreement_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        block.discarded = True  # no discard_kind set
        problems = problems_of(runtime)
        assert any("discard flag disagrees" in p for p in problems)

    def test_lazy_discard_with_dirty_bit_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        block.discarded = True
        block.discard_kind = DiscardKind.LAZY
        block.sw_dirty = True
        problems = problems_of(runtime)
        assert any("software dirty bit" in p for p in problems)

    def test_eager_discard_with_live_mapping_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        block.discarded = True
        block.discard_kind = DiscardKind.EAGER
        # The GPU mapping from prefetch is still live — §5.1 forbids it.
        problems = problems_of(runtime)
        assert any("eagerly discarded but still mapped" in p for p in problems)

    def test_discarded_populated_without_write_detected(self):
        runtime = resident_runtime()
        block = gpu_block(runtime)
        block.discarded = True
        block.discard_kind = DiscardKind.LAZY
        block.sw_dirty = False
        block.populated = True
        block.written_since_discard = False
        problems = problems_of(runtime)
        assert any("without a recorded write-after-discard" in p for p in problems)

    def test_conservation_corruption_detected(self):
        runtime = resident_runtime()
        assert collect_conservation_problems(runtime.driver) == []
        runtime.driver.traffic.block_bytes += 4096
        problems = collect_conservation_problems(runtime.driver)
        assert any("conservation broken" in p for p in problems)
        with pytest.raises(SimulationError, match="driver invariants violated"):
            check_transfer_conservation(runtime.driver)

    def test_record_sum_corruption_detected(self):
        runtime = resident_runtime()
        record = runtime.driver.traffic.records[0]
        try:
            record.nbytes += 512
        except (AttributeError, dataclasses.FrozenInstanceError):
            object.__setattr__(record, "nbytes", record.nbytes + 512)
        problems = collect_conservation_problems(runtime.driver)
        assert any("retained records sum" in p for p in problems)

    def test_healthy_driver_reports_nothing(self):
        runtime = resident_runtime()
        assert problems_of(runtime) == []
        assert collect_conservation_problems(runtime.driver) == []
        check_driver_invariants(runtime.driver)
        check_transfer_conservation(runtime.driver)


class TestInspectionApiPinning:
    """The public inspection surface the validation layer depends on."""

    def test_view_field_sets_are_stable(self):
        assert {f.name for f in dataclasses.fields(GpuView)} == {
            "name",
            "capacity_frames",
            "free_frames",
            "used_frames",
            "retired_frames",
            "unused_queue_frames",
            "used_queue_blocks",
            "discarded_queue_blocks",
            "mapped_blocks",
        }
        assert {f.name for f in dataclasses.fields(BlockView)} == {
            "index",
            "used_bytes",
            "residency",
            "has_frame",
            "frame_owner",
            "frame_allocated",
            "populated",
            "discarded",
            "discard_kind",
            "sw_dirty",
            "written_since_discard",
        }
        assert {f.name for f in dataclasses.fields(DriverInspection)} == {
            "gpus",
            "blocks",
            "inflight",
            "cpu_mapped",
            "event_log_entries",
            "event_log_dropped",
        }

    def test_views_are_frozen(self):
        runtime = resident_runtime()
        inspection = runtime.driver.inspect()
        view = inspection.gpus["gpu0"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            view.free_frames = 99
        block = next(iter(inspection.blocks.values()))
        with pytest.raises(dataclasses.FrozenInstanceError):
            block.populated = False

    def test_inspection_is_a_snapshot(self):
        runtime = resident_runtime()
        before = runtime.driver.inspect()
        block = gpu_block(runtime)
        block.frame = None  # mutate the live driver
        assert before.block(block.index).has_frame  # snapshot unchanged
        after = runtime.driver.inspect()
        assert not after.block(block.index).has_frame

    def test_lookup_helpers(self):
        runtime = resident_runtime()
        inspection = runtime.driver.inspect()
        assert inspection.gpu("gpu0").name == "gpu0"
        index = next(iter(inspection.blocks))
        assert inspection.block(index).index == index
        with pytest.raises(KeyError):
            inspection.gpu("nope")

    def test_validation_layer_uses_no_private_driver_state(self):
        import repro.harness.validation as validation

        source = pyinspect.getsource(validation)
        for private in ("._blocks", "._gpus", "._inflight", "._gpu("):
            assert private not in source, (
                f"validation reaches into private driver state via {private!r}"
            )

    def test_online_validator_uses_inspection(self):
        import repro.chaos.validator as validator

        source = pyinspect.getsource(validator)
        assert ".inspect()" in source
        for private in ("._blocks", "._gpus"):
            assert private not in source
