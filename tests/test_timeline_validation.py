"""Tests for the timeline exporter and the invariant checker."""

import json

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.driver.va_block import VaBlock
from repro.errors import SimulationError
from repro.harness.validation import check_driver_invariants
from repro.instrument.timeline import TRACK_H2D, Span, Timeline
from repro.units import BIG_PAGE, MIB


def traced_run(program_factory, memory_mib=64):
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib))
    timeline = Timeline.attach(runtime)
    runtime.run(program_factory)
    return runtime, timeline


class TestSpan:
    def test_duration(self):
        assert Span("t", "n", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("t", "n", 2.0, 1.0)


class TestTimelineRecording:
    def test_kernels_and_transfers_recorded(self):
        def program(cuda):
            buffer = cuda.malloc_managed(8 * MIB, "data")
            yield from cuda.host_write(buffer)
            cuda.prefetch_async(buffer)
            cuda.launch(
                KernelSpec(
                    "work", [BufferAccess(buffer, AccessMode.READ)], flops=1e9
                )
            )
            yield from cuda.synchronize()

        _, timeline = traced_run(program)
        kernel_spans = [s for s in timeline.spans if s.category == "kernel"]
        transfer_spans = [s for s in timeline.spans if s.category == "transfer"]
        assert [s.name for s in kernel_spans] == ["work"]
        assert len(transfer_spans) >= 1
        assert all(s.end >= s.start for s in timeline.spans)

    def test_busy_seconds(self):
        def program(cuda):
            buffer = cuda.malloc_managed(4 * MIB, "data")
            cuda.launch(
                KernelSpec(
                    "k", [BufferAccess(buffer, AccessMode.WRITE)], duration=0.5
                )
            )
            yield from cuda.synchronize()

        _, timeline = traced_run(program)
        assert timeline.busy_seconds("gpu0:compute") == pytest.approx(
            0.5, rel=0.1
        )

    def test_prefetch_overlaps_compute(self):
        """The overlap the paper's UVM-opt relies on, made visible."""

        def program(cuda):
            a = cuda.malloc_managed(16 * MIB, "a")
            b = cuda.malloc_managed(16 * MIB, "b")
            yield from cuda.host_write(a)
            yield from cuda.host_write(b)
            transfer = cuda.create_stream("transfer")
            cuda.prefetch_async(a)
            yield from cuda.synchronize()
            # Kernel on A while B prefetches concurrently.
            cuda.prefetch_async(b, stream=transfer)
            cuda.launch(
                KernelSpec(
                    "k", [BufferAccess(a, AccessMode.READ)], duration=0.01
                )
            )
            yield from cuda.synchronize()

        _, timeline = traced_run(program)
        assert timeline.overlap_seconds("gpu0:compute", TRACK_H2D) > 0

    def test_overlap_of_disjoint_tracks_is_zero(self):
        timeline = Timeline()
        timeline.record("a", "x", 0.0, 1.0)
        timeline.record("b", "y", 2.0, 3.0)
        assert timeline.overlap_seconds("a", "b") == 0.0


class TestChromeTraceExport:
    def test_export_format(self, tmp_path):
        timeline = Timeline()
        timeline.record("gpu0:compute", "k1", 0.001, 0.002, args={"n": 1})
        target = tmp_path / "trace.json"
        timeline.write_chrome_trace(str(target))
        data = json.loads(target.read_text())
        events = data["traceEvents"]
        assert len(events) == 1
        event = events[0]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1000.0)  # microseconds
        assert event["dur"] == pytest.approx(1000.0)
        assert event["tid"] == "gpu0:compute"
        assert event["args"] == {"n": 1}


class TestInvariantChecker:
    def test_clean_runtime_passes(self):
        def program(cuda):
            buffer = cuda.malloc_managed(8 * MIB, "data")
            cuda.prefetch_async(buffer)
            cuda.discard_async(buffer, mode="eager")
            yield from cuda.synchronize()

        runtime = CudaRuntime(gpu=tiny_gpu())
        runtime.run(program)
        check_driver_invariants(runtime.driver)  # must not raise

    def test_detects_forged_residency(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        block = VaBlock(999, BIG_PAGE)
        runtime.driver.register_blocks([block])
        block.residency = "gpu0"  # lie: no frame, no queue, no mapping
        with pytest.raises(SimulationError, match="invariants violated"):
            check_driver_invariants(runtime.driver)

    def test_detects_leaked_frame(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        # Allocate a frame behind the driver's back.
        runtime.driver._gpu("gpu0").allocator.allocate()
        with pytest.raises(SimulationError, match="allocator has"):
            check_driver_invariants(runtime.driver)
