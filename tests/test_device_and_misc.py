"""Misc coverage: device specs, access modes, split-block mechanics,
runtime memcpy/event paths."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, CudaRuntime
from repro.cuda.device import GpuSpec, a100_40gb, gtx_1070, rtx_3080ti
from repro.cuda.stream import CudaEvent
from repro.driver.migration import coalesce_spans
from repro.driver.va_block import VaBlock
from repro.units import BIG_PAGE, GB, MIB


class TestAccessMode:
    def test_reads_writes_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads
        assert AccessMode.READWRITE.reads and AccessMode.READWRITE.writes


class TestGpuSpecs:
    def test_all_presets_well_formed(self):
        for factory in (rtx_3080ti, gtx_1070, a100_40gb):
            spec = factory()
            assert spec.memory_bytes > 0
            assert spec.effective_flops > 0
            assert spec.local_bandwidth > spec.zero_bandwidth / 10
            assert spec.model

    def test_custom_names(self):
        assert rtx_3080ti("gpuX").name == "gpuX"

    def test_local_bandwidth_dwarfs_interconnect(self):
        """The §2.3 gap the whole paper rests on."""
        from repro.interconnect import pcie_gen4

        assert rtx_3080ti().local_bandwidth > 30 * pcie_gen4().peak_bandwidth

    def test_a100_paper_figures(self):
        assert a100_40gb().local_bandwidth > 2000 * GB  # ">2TB/s"


class TestSplitBlocks:
    def test_split_blocks_never_coalesce(self):
        blocks = [VaBlock(i, BIG_PAGE) for i in range(4)]
        blocks[1].split = True
        spans = coalesce_spans(blocks)
        assert [[b.index for b in s] for s in spans] == [[0], [1], [2, 3]]

    def test_split_transfer_slower(self):
        from repro.driver.migration import MigrationEngine, CopyEngines
        from repro.engine import Environment
        from repro.instrument.rmt import RmtClassifier
        from repro.instrument.traffic import (
            TrafficRecorder,
            TransferDirection,
            TransferReason,
        )
        from repro.interconnect import pcie_gen4

        def timed(split):
            env = Environment()
            engine = MigrationEngine(
                env, pcie_gen4(), TrafficRecorder(), RmtClassifier()
            )
            engines = CopyEngines(env)
            block = VaBlock(1, BIG_PAGE)
            block.split = split

            def driver():
                yield from engine.transfer_blocks(
                    [block], TransferDirection.HOST_TO_DEVICE,
                    TransferReason.FAULT_MIGRATION, engines,
                )

            env.run(until=env.process(driver()))
            return env.now

        assert timed(split=True) > 5 * timed(split=False)


class TestRuntimeEvents:
    def test_cuda_event_cross_stream(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        a = runtime.create_stream("a")
        b = runtime.create_stream("b")
        order = []

        def slow():
            yield runtime.env.timeout(1.0)
            order.append("a-done")

        def fast():
            yield runtime.env.timeout(0.0)
            order.append("b-done")

        a.enqueue(slow)
        event = CudaEvent(runtime.env, "sync")
        a.record_event(event)
        b.wait_event(event)
        b.enqueue(fast)

        def program(cuda):
            yield from cuda.synchronize()

        runtime.run(program)
        assert order == ["a-done", "b-done"]

    def test_memcpy_direction_bookkeeping(self):
        from repro.instrument.traffic import TransferDirection

        runtime = CudaRuntime(gpu=tiny_gpu())

        def program(cuda):
            cuda.memcpy_async(MIB, TransferDirection.HOST_TO_DEVICE)
            cuda.memcpy_async(2 * MIB, TransferDirection.DEVICE_TO_HOST)
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.driver.traffic.bytes_h2d == MIB
        assert runtime.driver.traffic.bytes_d2h == 2 * MIB

    def test_run_returns_elapsed(self):
        runtime = CudaRuntime(gpu=tiny_gpu())

        def program(cuda):
            yield cuda.env.timeout(2.5)

        assert runtime.run(program) == pytest.approx(2.5)
