"""Tests for the used-queue eviction policy knob (lru vs fifo)."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.driver.config import UvmDriverConfig
from repro.units import MIB


def run_reuse(policy: str):
    """Two buffers; A is re-touched before pressure arrives."""
    config = UvmDriverConfig(eviction_policy=policy)
    runtime = CudaRuntime(gpu=tiny_gpu(16), driver_config=config)
    a = runtime.malloc_managed(6 * MIB, "a")
    b = runtime.malloc_managed(6 * MIB, "b")
    c = runtime.malloc_managed(6 * MIB, "c")

    def program(cuda):
        cuda.prefetch_async(a)
        cuda.prefetch_async(b)
        cuda.prefetch_async(a)  # refresh A's recency
        cuda.prefetch_async(c)  # pressure: someone must go
        yield from cuda.synchronize()

    runtime.run(program)
    return a, b, c


class TestEvictionPolicy:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            UvmDriverConfig(eviction_policy="random").validate()

    def test_lru_protects_recently_touched(self):
        a, b, c = run_reuse("lru")
        # B was least recently used: it went, A stayed.
        assert a.blocks[0].residency == "gpu0"
        assert b.blocks[0].residency != "gpu0"

    def test_fifo_evicts_insertion_order(self):
        a, b, c = run_reuse("fifo")
        # FIFO ignores A's refresh: A was inserted first, A goes.
        assert a.blocks[0].residency != "gpu0"
        assert b.blocks[0].residency == "gpu0"

    def test_lru_beats_fifo_on_reuse_workload(self):
        """Recency matters for backward passes re-reading recent layers."""

        def sweep(policy):
            config = UvmDriverConfig(eviction_policy=policy)
            runtime = CudaRuntime(gpu=tiny_gpu(32), driver_config=config)
            buffer = runtime.malloc_managed(40 * MIB, "acts")

            def program(cuda):
                yield from cuda.host_write(buffer)
                cuda.begin_measurement()
                # Forward sweep then reverse re-read (like fwd + bwd).
                cuda.launch(
                    KernelSpec(
                        "fwd",
                        [BufferAccess(buffer, AccessMode.READWRITE)],
                        flops=1e7,
                        waves=10,
                    )
                )
                cuda.launch(
                    KernelSpec(
                        "bwd",
                        [BufferAccess(buffer, AccessMode.READ)],
                        flops=1e7,
                        waves=10,
                    )
                )
                yield from cuda.synchronize()

            runtime.run(program)
            return runtime.driver.traffic.total_bytes

        # Both policies move data; LRU never does worse here.
        assert sweep("lru") <= sweep("fifo")
