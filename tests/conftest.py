"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cuda.device import GpuSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.units import GB, MIB

#: The one seed all test randomness derives from.  Fixed by default so
#: every run sees identical data; export ``REPRO_TEST_SEED`` to probe
#: other draws (a failure then reports which seed to reproduce with).
TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "20220821"))


def tiny_gpu(memory_mib: int = 64, name: str = "gpu0") -> GpuSpec:
    """A deliberately small GPU so tests exercise eviction cheaply."""
    return GpuSpec(
        name=name,
        memory_bytes=memory_mib * MIB,
        effective_flops=1e12,
        local_bandwidth=500 * GB,
        zero_bandwidth=500 * GB,
        model=f"test-gpu-{memory_mib}MiB",
    )


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ snapshots instead of diffing "
        "against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng(request) -> np.random.Generator:
    """A seeded NumPy generator for test input data.

    Keyed by :data:`TEST_SEED` plus the requesting test's node id, so
    (a) a full run and a single-test run hand the test identical data,
    and (b) no test's draws depend on which other tests ran before it.
    """
    return np.random.default_rng([TEST_SEED, *request.node.nodeid.encode()])


@pytest.fixture
def runtime() -> CudaRuntime:
    """A runtime with a 64 MiB GPU and strict semantics checking."""
    config = UvmDriverConfig(strict_lazy=False, keep_transfer_records=True)
    return CudaRuntime(gpu=tiny_gpu(), driver_config=config)


@pytest.fixture
def big_runtime() -> CudaRuntime:
    """A runtime whose GPU comfortably fits the test workloads."""
    return CudaRuntime(gpu=tiny_gpu(memory_mib=1024))
