"""Snapshot/fork correctness: forked runs must be bit-identical to cold.

Three layers, mirroring the machinery's structure:

- engine level — :class:`~repro.engine.snapshot.EngineSnapshot` only
  accepts quiescent graphs (a hypothesis sweep stops simulations at
  random points and checks the legality decision), the ``_PENDING``
  sentinel and finished processes survive deep copies, live processes
  fail loudly,
- group level — for a differential corpus spanning every workload
  family, system, ratio and a set of setup-inert driver variants,
  :func:`~repro.harness.sweep.execute_group` (shared prefix, snapshot,
  fork per point) must reproduce :func:`execute_point` (cold) results
  byte-for-byte,
- sweep level — :func:`run_sweep` reports and cache contents must be
  identical with forking on or off, serial or pooled.

There is deliberately no tolerance anywhere in this file: snapshot
reuse is advertised as a pure wall-clock optimization, so a single
diverging bit is a semantics bug, not noise.
"""

from __future__ import annotations

import copy
import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.core import Environment, _PENDING
from repro.engine.snapshot import EngineSnapshot, assert_quiescent
from repro.errors import SnapshotError
from repro.harness.sweep import (
    ResultCache,
    SweepPoint,
    execute_group,
    execute_point,
    prefix_key,
    run_sweep,
)

UVM_SYSTEMS = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")


def _corpus():
    """The differential corpus: every family x system x two ratios,
    plus setup-inert driver variants and a DL grid."""
    points = []
    for workload, ratios in (
        ("fir", (1.5, 2.0)),
        ("radix", (0.9, 2.0)),
        ("hashjoin", (1.0, 2.0)),
    ):
        for system in UVM_SYSTEMS:
            for ratio in ratios:
                points.append(
                    SweepPoint(workload, system, ratio=ratio, scale=0.01)
                )
    for variant in (
        {"eviction_policy": "fifo"},
        {"coalesce_transfers": False},
        {"discarded_queue_enabled": False},
    ):
        points.append(
            SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.01, driver=variant)
        )
    for system in UVM_SYSTEMS:
        points.append(
            SweepPoint("dl:vgg16", system, batch_size=8, scale=0.03125)
        )
    return points


def _grouped_corpus():
    groups = {}
    for point in _corpus():
        groups.setdefault(prefix_key(point), []).append(point)
    assert None not in groups
    return sorted(groups.items(), key=lambda kv: repr(kv[0]))


def _canonical(result):
    if result is None:
        return None
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEngineSnapshot:
    def test_pending_sentinel_identity_survives_deepcopy(self):
        assert copy.deepcopy(_PENDING) is _PENDING
        assert copy.deepcopy({"k": _PENDING})["k"] is _PENDING

    def test_live_process_refuses_deepcopy(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        with pytest.raises(SnapshotError):
            copy.deepcopy(process)

    def test_finished_process_deepcopies_without_generator(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        process = env.process(proc())
        env.run()
        clone = copy.deepcopy(process)
        assert clone.value == "done"
        assert clone._generator is None

    def test_snapshot_rejects_pending_events(self):
        env = Environment()
        env.timeout(1.0)
        with pytest.raises(SnapshotError):
            EngineSnapshot(env)

    def test_snapshot_rejects_busy_runtime(self):
        from repro.cuda.runtime import CudaRuntime

        runtime = CudaRuntime()
        runtime.env.timeout(1.0)
        with pytest.raises(SnapshotError):
            EngineSnapshot(runtime)

    def test_assert_quiescent_requires_checkable_root(self):
        with pytest.raises(SnapshotError):
            assert_quiescent(object())

    def test_forks_are_independent(self):
        env = Environment()

        def proc():
            yield env.timeout(2.5e-6)

        env.process(proc())
        env.run()
        snapshot = EngineSnapshot(env)
        fork_a = snapshot.fork()
        assert fork_a.now == env.now

        def more(e):
            yield e.timeout(1e-6)

        fork_a.process(more(fork_a))
        fork_a.run()
        fork_b = snapshot.fork()
        assert fork_a.now > env.now
        assert fork_b.now == env.now  # payload untouched by fork_a's run

    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.integers(min_value=1, max_value=40),
        stop_steps=st.integers(min_value=0, max_value=60),
    )
    def test_snapshot_legality_at_random_stop_points(self, steps, stop_steps):
        """Stopping a simulation after an arbitrary number of events:
        a snapshot is legal exactly when the run has fully drained."""
        env = Environment()

        def proc():
            # Whole-second steps keep the accumulated clock float-exact,
            # so the deadline comparison below is not at the mercy of the
            # last ulp of a 1e-6 sum.
            for _ in range(steps):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=float(stop_steps))
        if stop_steps >= steps:
            fork = EngineSnapshot(env).fork()
            assert fork.now == env.now
            assert fork.quiescent
        else:
            assert not env.quiescent
            with pytest.raises(SnapshotError):
                EngineSnapshot(env)


class TestPrefixKey:
    def test_no_uvm_is_never_grouped(self):
        point = SweepPoint("dl:vgg16", "No-UVM", batch_size=8, scale=0.03125)
        assert prefix_key(point) is None

    def test_snapshot_reuse_override_opts_out(self):
        point = SweepPoint(
            "fir", "UvmDiscard", scale=0.01, driver={"snapshot_reuse": False}
        )
        assert prefix_key(point) is None

    def test_system_ratio_and_inert_knobs_share_a_key(self):
        base = SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.01)
        same = [
            SweepPoint("fir", "UVM-opt", ratio=2.0, scale=0.01),
            SweepPoint("fir", "UvmDiscard", ratio=3.0, scale=0.01),
            SweepPoint(
                "fir", "UvmDiscard", ratio=2.0, scale=0.01,
                driver={"eviction_policy": "fifo"},
            ),
        ]
        for point in same:
            assert prefix_key(point) == prefix_key(base), point.label

    def test_setup_affecting_fields_split_groups(self):
        base = SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.01)
        different = [
            SweepPoint("radix", "UvmDiscard", ratio=2.0, scale=0.01),
            SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.02),
            SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.01, link="gen3"),
            SweepPoint(
                "fir", "UvmDiscard", ratio=2.0, scale=0.01,
                driver={"cpu_fault_overhead": 0.0},
            ),
            SweepPoint(
                "fir", "UvmDiscard", ratio=2.0, scale=0.01,
                driver={"keep_transfer_records": True},
            ),
        ]
        for point in different:
            assert prefix_key(point) != prefix_key(base), point.label

    def test_dl_batches_field_splits_groups(self):
        a = SweepPoint("dl:vgg16", "UvmDiscard", batch_size=8, scale=0.03125)
        b = dataclasses.replace(a, batches=5)
        assert prefix_key(a) != prefix_key(b)


class TestForkEqualsCold:
    @pytest.mark.parametrize(
        "group", [g for _, g in _grouped_corpus()],
        ids=[f"{g[0].workload}@{g[0].scale:g}" for _, g in _grouped_corpus()],
    )
    def test_group_matches_cold_runs_byte_for_byte(self, group):
        cold = [execute_point(point) for point in group]
        forked = execute_group(group)
        for point, c, f in zip(group, cold, forked):
            assert _canonical(c) == _canonical(f), point.label

    def test_single_point_group_falls_back_to_cold(self):
        point = SweepPoint("fir", "UvmDiscard", ratio=2.0, scale=0.01)
        (forked,) = execute_group([point])
        assert _canonical(forked) == _canonical(execute_point(point))


class TestRunSweepForking:
    POINTS = [
        SweepPoint("fir", system, ratio=ratio, scale=0.01)
        for system in ("UVM-opt", "UvmDiscard")
        for ratio in (1.5, 2.0)
    ] + [
        SweepPoint("dl:vgg16", system, batch_size=8, scale=0.03125)
        for system in ("UVM-opt", "UvmDiscard")
    ]

    def test_report_identical_with_and_without_forking(self, tmp_path):
        forked = run_sweep(
            self.POINTS, cache=ResultCache(tmp_path / "a"), snapshot_reuse=True
        )
        cold = run_sweep(
            self.POINTS, cache=ResultCache(tmp_path / "b"), snapshot_reuse=False
        )
        assert forked.to_json() == cold.to_json()
        # A cache populated by forked runs must serve cold re-runs.
        warm = run_sweep(
            self.POINTS, cache=ResultCache(tmp_path / "a"), snapshot_reuse=False
        )
        assert warm.simulated == 0
        assert warm.to_json() == forked.to_json()

    def test_pooled_grouped_execution_is_deterministic(self):
        serial = run_sweep(self.POINTS, snapshot_reuse=True)
        pooled = run_sweep(self.POINTS, jobs=2, snapshot_reuse=True)
        assert serial.to_json() == pooled.to_json()
