"""Functional-mode workload tests: real results under simulated memory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import tiny_gpu

from repro.cuda.runtime import CudaRuntime
from repro.workloads.functional import functional_hash_join, functional_radix_sort


def run_with(factory, memory_mib=64):
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib))
    out = {}

    def program(cuda):
        out["result"] = yield from factory(cuda)

    runtime.run(program)
    return runtime, out["result"]


class TestFunctionalRadixSort:
    def test_sorts(self, rng):
        keys = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        runtime, result = run_with(
            lambda cuda: functional_radix_sort(cuda, keys)
        )
        assert np.array_equal(result, np.sort(keys))

    def test_rejects_wrong_dtype(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(TypeError):

            def program(cuda):
                yield from functional_radix_sort(
                    cuda, np.zeros(4, dtype=np.int64)
                )

            runtime.run(program)

    @pytest.mark.parametrize("discard", [None, "eager", "lazy"])
    def test_every_discard_mode_produces_same_result(self, discard, rng):
        keys = rng.integers(0, 2**32, size=1024, dtype=np.uint32)
        runtime, result = run_with(
            lambda cuda: functional_radix_sort(cuda, keys, discard=discard)
        )
        assert np.array_equal(result, np.sort(keys))
        assert runtime.driver.oracle.corruption_count == 0

    def test_oversubscribed_sort_still_correct(self, rng):
        """Eviction + discard churn never corrupts the data."""
        # 16 MiB of keys on an 8 MiB GPU: constant eviction.
        keys = rng.integers(0, 2**32, size=4 * 1024 * 1024, dtype=np.uint32)
        runtime, result = run_with(
            lambda cuda: functional_radix_sort(cuda, keys), memory_mib=8
        )
        assert np.array_equal(result, np.sort(keys))
        assert runtime.driver.counters["evicted_blocks"] > 0
        assert runtime.driver.counters["discarded_blocks"] > 0
        assert runtime.driver.oracle.corruption_count == 0

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200
        )
    )
    def test_sort_property(self, values):
        keys = np.array(values, dtype=np.uint32)
        _, result = run_with(lambda cuda: functional_radix_sort(cuda, keys))
        assert np.array_equal(result, np.sort(keys))


class TestFunctionalHashJoin:
    def _tables(self):
        left_keys = np.array([1, 2, 3, 5, 8], dtype=np.int64)
        left_vals = np.array([10, 20, 30, 50, 80], dtype=np.int64)
        right_keys = np.array([5, 2, 9, 2], dtype=np.int64)
        right_vals = np.array([500, 200, 900, 201], dtype=np.int64)
        return left_keys, left_vals, right_keys, right_vals

    def test_inner_join_matches_reference(self):
        lk, lv, rk, rv = self._tables()
        _, (keys, lvals, rvals) = run_with(
            lambda cuda: functional_hash_join(cuda, lk, lv, rk, rv)
        )
        assert keys.tolist() == [2, 2, 5]
        assert lvals.tolist() == [20, 20, 50]
        assert rvals.tolist() == [200, 201, 500]

    def test_no_matches(self):
        lk = np.array([1], dtype=np.int64)
        lv = np.array([10], dtype=np.int64)
        rk = np.array([2], dtype=np.int64)
        rv = np.array([20], dtype=np.int64)
        _, (keys, lvals, rvals) = run_with(
            lambda cuda: functional_hash_join(cuda, lk, lv, rk, rv)
        )
        assert keys.size == 0

    @pytest.mark.parametrize("discard", [None, "eager"])
    def test_discard_mode_equivalence(self, discard):
        lk, lv, rk, rv = self._tables()
        runtime, (keys, _, _) = run_with(
            lambda cuda: functional_hash_join(cuda, lk, lv, rk, rv, discard=discard)
        )
        assert keys.tolist() == [2, 2, 5]
        assert runtime.driver.oracle.corruption_count == 0

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30),
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30),
    )
    def test_join_property(self, left, right):
        """Matches NumPy's reference inner join on unique left keys."""
        left_keys = np.array(sorted(set(left)), dtype=np.int64)
        left_vals = left_keys * 10
        right_keys = np.array(right, dtype=np.int64)
        right_vals = np.arange(len(right), dtype=np.int64)
        _, (keys, lvals, rvals) = run_with(
            lambda cuda: functional_hash_join(
                cuda, left_keys, left_vals, right_keys, right_vals
            )
        )
        expected = sorted(
            (int(k), int(k) * 10, int(v))
            for k, v in zip(right_keys, right_vals)
            if k in set(left_keys.tolist())
        )
        got = list(zip(keys.tolist(), lvals.tolist(), rvals.tolist()))
        assert got == expected
