"""Differential property tests: vectorized kernel vs scalar reference.

The bitmap-slab page table (:class:`~repro.vm.page_table.
BitmapPageTable`) and the scalar set-based reference
(:class:`~repro.vm.page_table.PageTable`) must be observationally
byte-identical — same costs bit-for-bit, same counters, same errors
with the same messages, same mapped sets — under any operation
sequence, including deep-copy fork points (the snapshot machinery
deep-copies page tables) and chaos-perturbed full-driver runs.
Hypothesis drives the sequences; the ``vectorized`` driver knob selects
the implementation for the whole-driver comparisons.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import AccessMode
from repro.driver import UvmDriver, UvmDriverConfig, VaBlock
from repro.engine import Environment
from repro.instrument.traffic import TransferReason
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE, MIB
from repro.vm.page_table import MappingError, make_page_table

# Indices span three regions so bulk ops cross the slab's sliding
# origin: a dense low band, a distant band (forces re-anchoring and
# left-padding), and a mid band.
_INDEX_BANDS = st.one_of(
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=9_990, max_value=10_014),
    st.integers(min_value=500, max_value=520),
)

_table_op = st.one_of(
    st.tuples(st.just("map"), _INDEX_BANDS),
    st.tuples(st.just("unmap"), _INDEX_BANDS),
    st.tuples(
        st.just("map_bulk"), st.lists(_INDEX_BANDS, min_size=1, max_size=80)
    ),
    st.tuples(
        st.just("unmap_bulk"), st.lists(_INDEX_BANDS, min_size=1, max_size=80)
    ),
    st.tuples(st.just("unmap_bulk_no_tlb"), st.lists(_INDEX_BANDS, min_size=1, max_size=80)),
    st.tuples(st.just("fork"), st.none()),
)


def _apply(table, name, arg):
    """Run one op; return ('ok', cost) or ('err', type name, message)."""
    try:
        if name == "map":
            return ("ok", table.map_block(arg))
        if name == "unmap":
            return ("ok", table.unmap_block(arg))
        if name == "map_bulk":
            return ("ok", table.map_blocks(arg))
        if name == "unmap_bulk":
            return ("ok", table.unmap_blocks(arg))
        if name == "unmap_bulk_no_tlb":
            return ("ok", table.unmap_blocks(arg, invalidate_tlb=False))
        raise AssertionError(name)
    except MappingError as exc:
        return ("err", type(exc).__name__, str(exc))


def _observe(table):
    return (
        table.mapped_indices(),
        table.mapped_blocks,
        table.map_count,
        table.unmap_count,
        table.tlb_invalidations,
    )


@settings(max_examples=120, deadline=None)
@given(st.lists(_table_op, min_size=1, max_size=60))
def test_bitmap_page_table_matches_scalar_reference(ops):
    """Same ops -> bit-identical costs, counters, errors and mapped sets,
    including across deep-copy fork points."""
    vec = make_page_table("gpu0", vectorized=True)
    ref = make_page_table("gpu0", vectorized=False)
    forks = []
    for name, arg in ops:
        if name == "fork":
            forks.append((copy.deepcopy(vec), copy.deepcopy(ref)))
            continue
        out_vec = _apply(vec, name, arg)
        out_ref = _apply(ref, name, arg)
        assert out_vec == out_ref, (name, arg)
        assert _observe(vec) == _observe(ref)
        # Probes agree everywhere the op touched.
        probe = [arg] if isinstance(arg, int) else arg
        for index in probe:
            assert vec.is_mapped(index) == ref.is_mapped(index)
    # Forked copies stayed frozen at their fork point and still agree.
    for forked_vec, forked_ref in forks:
        assert _observe(forked_vec) == _observe(forked_ref)
        # A forked copy is independently mutable and stays equivalent.
        index = 123_456
        assert forked_vec.map_block(index) == forked_ref.map_block(index)
        assert _observe(forked_vec) == _observe(forked_ref)
        assert not vec.is_mapped(index) and not ref.is_mapped(index)


_driver_op = st.tuples(
    st.sampled_from(
        [
            "prefetch_gpu",
            "prefetch_cpu",
            "gpu_fault",
            "gpu_write",
            "host_write",
            "discard_eager",
            "discard_lazy",
        ]
    ),
    st.integers(min_value=0, max_value=11),
    st.integers(min_value=1, max_value=4),  # span length
)


def _run_driver_sequence(ops, vectorized: bool):
    """Apply a random fault/prefetch/discard sequence; return the full
    observable state (simulated clock, counters, traffic, residency)."""
    env = Environment()
    driver = UvmDriver(
        env, pcie_gen4(), UvmDriverConfig(vectorized=vectorized)
    )
    driver.register_gpu("gpu0", 6 * 2 * MIB)
    blocks = [VaBlock(100 + i, BIG_PAGE) for i in range(12)]
    driver.register_blocks(blocks)

    def run(generator):
        env.run(until=env.process(generator))

    for name, start, span in ops:
        selected = blocks[start : start + span]
        if name == "prefetch_gpu":
            run(driver.prefetch(selected, "gpu0"))
        elif name == "prefetch_cpu":
            run(driver.prefetch(selected, "cpu"))
        elif name == "gpu_fault":
            faulting = [
                b for b in selected if driver.gpu_needs_fault("gpu0", b)
            ]
            run(driver.handle_gpu_faults("gpu0", faulting))
        elif name == "gpu_write":
            run(driver.prefetch(selected, "gpu0"))
            for block in selected:
                driver.note_access(block, AccessMode.WRITE)
        elif name == "host_write":
            run(
                driver.make_resident_cpu(
                    selected, TransferReason.FAULT_MIGRATION, True
                )
            )
            for block in selected:
                driver.note_access(block, AccessMode.WRITE)
        elif name == "discard_eager":
            for block in selected:
                if not block.discarded:
                    driver.discard_block_eager(block)
        elif name == "discard_lazy":
            for block in selected:
                if not block.discarded:
                    driver.discard_block_lazy(block)
    driver.finalize()
    table = driver.gpu_page_table("gpu0")
    return (
        env.now,
        driver.counters.as_dict(),
        driver.traffic.total_bytes,
        driver.traffic.bytes_h2d,
        driver.traffic.bytes_d2h,
        driver.rmt.useful_bytes,
        driver.rmt.redundant_bytes,
        table.mapped_indices(),
        table.map_count,
        table.unmap_count,
        table.tlb_invalidations,
        driver.cpu_page_table.mapped_indices(),
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(_driver_op, min_size=1, max_size=25))
def test_driver_runs_identically_with_either_page_table(ops):
    """The ``vectorized`` knob changes nothing observable: simulated
    clock (bit-for-bit floats), counters, traffic and residency all
    match between the bitmap and scalar implementations."""
    assert _run_driver_sequence(ops, vectorized=True) == _run_driver_sequence(
        ops, vectorized=False
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_chaos_schedules_identical_across_page_table_implementations(seed):
    """Under random chaos schedules the whole experiment result is
    byte-identical with the bitmap or scalar page table."""
    from repro.harness.sweep import SweepPoint, execute_point

    def result_dict(vectorized: bool):
        point = SweepPoint(
            workload="fir",
            system="UvmDiscard",
            ratio=2.0,
            scale=0.03125,
            driver=(("vectorized", vectorized),),
            chaos=(
                ("seed", seed),
                ("transfer_fault_interval", 40),
                ("link_degrade_interval", 60),
            ),
        )
        result = execute_point(point)
        assert result is not None
        return result.to_dict()

    fast = result_dict(True)
    slow = result_dict(False)
    # The driver override differs between the two runs only by the
    # implementation knob; everything measured must match exactly.
    assert fast == slow
