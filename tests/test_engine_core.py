"""Tests for the discrete-event engine core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import Environment, Interrupt
from repro.errors import SimulationError


class TestTimeout:
    def test_clock_advances_by_delay(self):
        env = Environment()

        def proc():
            yield env.timeout(1.5)
            yield env.timeout(0.5)

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_zero_delay_is_allowed(self):
        env = Environment()

        def proc():
            yield env.timeout(0.0)

        env.process(proc())
        env.run()
        assert env.now == 0.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_carries_value(self):
        env = Environment()
        seen = {}

        def proc():
            seen["value"] = yield env.timeout(1.0, value="payload")

        env.process(proc())
        env.run()
        assert seen["value"] == "payload"


class TestOrdering:
    def test_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_earlier_events_first(self):
        env = Environment()
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3.0, "late"))
        env.process(proc(1.0, "early"))
        env.process(proc(2.0, "mid"))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_determinism_across_runs(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(n):
                for i in range(n):
                    yield env.timeout(0.1 * (n - i))
                    trace.append((n, i, round(env.now, 6)))

            for n in (3, 1, 2):
                env.process(worker(n))
            env.run()
            return trace

        assert build_and_run() == build_and_run()


class TestProcessComposition:
    def test_yield_child_process_gets_return_value(self):
        env = Environment()
        seen = {}

        def child():
            yield env.timeout(1.0)
            return 42

        def parent():
            seen["result"] = yield env.process(child())

        env.process(parent())
        env.run()
        assert seen["result"] == 42

    def test_exception_propagates_to_parent(self):
        env = Environment()
        seen = {}

        def child():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                seen["error"] = str(exc)

        env.process(parent())
        env.run()
        assert seen["error"] == "boom"

    def test_unhandled_exception_escapes_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise RuntimeError("unhandled")

        env.process(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_waiting_on_finished_process(self):
        env = Environment()
        seen = {}

        def child():
            yield env.timeout(1.0)
            return "done"

        def parent(proc):
            yield env.timeout(5.0)  # child finished long ago
            seen["result"] = yield proc

        proc = env.process(child())
        env.process(parent(proc))
        env.run()
        assert seen["result"] == "done"


class TestEvents:
    def test_manual_event_wakes_waiter(self):
        env = Environment()
        event = env.event()
        seen = {}

        def waiter():
            seen["value"] = yield event

        def trigger():
            yield env.timeout(2.0)
            event.succeed("hello")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert seen["value"] == "hello"
        assert env.now == pytest.approx(2.0)

    def test_event_fail_raises_in_waiter(self):
        env = Environment()
        event = env.event()

        def waiter():
            yield event

        def trigger():
            yield env.timeout(1.0)
            event.fail(KeyError("nope"))

        env.process(waiter())
        env.process(trigger())
        with pytest.raises(KeyError):
            env.run()

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_fire_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_all_of_collects_values(self):
        env = Environment()
        seen = {}

        def waiter(events):
            seen["values"] = yield env.all_of(events)

        timeouts = [env.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
        env.process(waiter(timeouts))
        env.run()
        assert seen["values"] == [3.0, 1.0, 2.0]
        assert env.now == pytest.approx(3.0)

    def test_all_of_empty(self):
        env = Environment()
        seen = {}

        def waiter():
            seen["values"] = yield env.all_of([])

        env.process(waiter())
        env.run()
        assert seen["values"] == []


class TestRunModes:
    def test_run_until_time(self):
        env = Environment()

        def ticker():
            while True:
                yield env.timeout(1.0)

        env.process(ticker())
        env.run(until=5.5)
        assert env.now == pytest.approx(5.5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)
            return "finished"

        result = env.run(until=env.process(proc()))
        assert result == "finished"

    def test_run_until_event_starvation_detected(self):
        env = Environment()
        never = env.event()

        def waiter():
            yield never

        env.process(waiter())
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_step_on_empty_heap_rejected(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_run_past_deadline_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == pytest.approx(10.0)


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        seen = {}

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                seen["cause"] = interrupt.cause
                seen["time"] = env.now

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("wake up")

        proc = env.process(sleeper())
        env.process(interrupter(proc))
        env.run()
        assert seen["cause"] == "wake up"
        assert seen["time"] == pytest.approx(1.0)

    def test_interrupting_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0.1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestProcessValidation:
    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_rejected(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()


@given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=30))
def test_clock_is_monotone_and_ends_at_total(delays):
    env = Environment()
    observed = []

    def proc():
        for delay in delays:
            yield env.timeout(delay)
            observed.append(env.now)

    env.process(proc())
    env.run()
    assert observed == sorted(observed)
    assert env.now == pytest.approx(sum(delays))
