"""Tests for engine resources (FIFO slots) and stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import Environment, Resource, Store
from repro.errors import SimulationError


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_serializes_single_slot(self):
        env = Environment()
        resource = Resource(env)
        spans = []

        def worker(tag):
            request = resource.request()
            yield request
            start = env.now
            yield env.timeout(1.0)
            resource.release(request)
            spans.append((tag, start, env.now))

        for tag in range(3):
            env.process(worker(tag))
        env.run()
        # FIFO grant order, back to back with no overlap.
        assert [s[0] for s in spans] == [0, 1, 2]
        for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
            assert start == pytest.approx(end)

    def test_parallel_with_two_slots(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        done = []

        def worker(tag):
            request = resource.request()
            yield request
            yield env.timeout(1.0)
            resource.release(request)
            done.append((tag, env.now))

        for tag in range(4):
            env.process(worker(tag))
        env.run()
        assert env.now == pytest.approx(2.0)
        assert [d[0] for d in done] == [0, 1, 2, 3]

    def test_release_of_ungranted_slot_rejected(self):
        env = Environment()
        resource = Resource(env)
        request = resource.request()

        def drive():
            yield request

        env.process(drive())
        env.run()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_queue_length_and_in_use(self):
        env = Environment()
        resource = Resource(env)
        held = {}

        def holder():
            request = resource.request()
            yield request
            held["request"] = request
            yield env.timeout(10.0)
            resource.release(request)

        def waiter():
            request = resource.request()
            yield request
            resource.release(request)

        env.process(holder())
        env.process(waiter())
        env.run(until=5.0)
        assert resource.in_use == 1
        assert resource.queue_length == 1
        env.run()
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_cancel_dequeues_request(self):
        env = Environment()
        resource = Resource(env)

        def holder():
            request = resource.request()
            yield request
            yield env.timeout(1.0)
            resource.release(request)

        env.process(holder())
        env.run(until=0.5)
        pending = resource.request()
        assert resource.queue_length == 1
        pending.cancel()
        assert resource.queue_length == 0
        with pytest.raises(SimulationError):
            pending.cancel()

    def test_acquire_helper_releases_on_error(self):
        env = Environment()
        resource = Resource(env)

        def failing_body():
            yield env.timeout(1.0)
            raise ValueError("inner")

        def outer():
            try:
                yield from resource.acquire(failing_body())
            except ValueError:
                pass

        env.process(outer())
        env.run()
        assert resource.in_use == 0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        seen = {}

        def consumer():
            seen["item"] = yield store.get()

        store.put("x")
        env.process(consumer())
        env.run()
        assert seen["item"] == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        seen = {}

        def consumer():
            seen["item"] = yield store.get()
            seen["time"] = env.now

        def producer():
            yield env.timeout(3.0)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert seen["item"] == "late"
        assert seen["time"] == pytest.approx(3.0)

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            for _ in range(3):
                received.append((yield store.get()))

        for item in (1, 2, 3):
            store.put(item)
        env.process(consumer())
        env.run()
        assert received == [1, 2, 3]

    def test_len_tracks_items(self):
        store = Store(Environment())
        assert len(store) == 0
        store.put("a")
        store.put("b")
        assert len(store) == 2


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20))
def test_resource_total_time_matches_capacity(capacity, jobs):
    """With unit-time jobs, makespan == ceil(jobs / capacity)."""
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def worker():
        request = resource.request()
        yield request
        yield env.timeout(1.0)
        resource.release(request)

    for _ in range(jobs):
        env.process(worker())
    env.run()
    assert env.now == pytest.approx(-(-jobs // capacity))
