"""Steady-state fast-forward validation (:mod:`repro.instrument.steady_state`).

Fast-forward is the one reuse mechanism that is *not* bit-exact — it
replays a verified per-iteration delta instead of simulating events —
so unlike ``tests/test_snapshot_fork.py`` these tests compare against
full simulations with an explicit contract: every integer observable
(traffic bytes, counters, RMT classification) must match exactly, and
simulated time must agree to within float-addition reordering noise
(``rel=1e-9``, in practice ~1e-14).  Validated on three DL networks
with distinct phase structures, per the acceptance criteria.

The config-validation tests pin the guard rails: fast-forward is off by
default and refuses to combine with golden-trace instrumentation.
"""

from __future__ import annotations

import math

import pytest

from repro.driver.config import UvmDriverConfig
from repro.errors import SimulationError
from repro.harness.sweep import SweepPoint, execute_point
from repro.instrument.steady_state import SteadyStateDetector

#: Relative tolerance for simulated-time comparison; see module docstring.
TIME_RTOL = 1e-9

#: (network, batch_size, scale): three architectures with different
#: layer mixes, each trained for 10 mini-batches so the fast-forward
#: replays a substantial tail.  The final entry oversubscribes the
#: scaled GPU, exercising the eviction path under replay.
VALIDATION_GRID = (
    ("vgg16", 8, 0.03125),
    ("darknet19", 16, 0.03125),
    ("rnn", 16, 0.0625),
    ("vgg16", 80, 0.03125),
)


def _point(network, batch_size, scale, system="UvmDiscard", **driver):
    return SweepPoint(
        f"dl:{network}",
        system,
        batch_size=batch_size,
        scale=scale,
        batches=10,
        driver=driver or (),
    )


class TestFastForwardMatchesFullSimulation:
    @pytest.mark.parametrize(
        "network,batch_size,scale", VALIDATION_GRID,
        ids=[f"{g[0]}-bs{g[1]}" for g in VALIDATION_GRID],
    )
    def test_dl_training_loop(self, network, batch_size, scale):
        full = execute_point(_point(network, batch_size, scale))
        fast = execute_point(
            _point(network, batch_size, scale, steady_state_fastforward=True)
        )
        assert full is not None and fast is not None
        full_d, fast_d = full.to_dict(), fast.to_dict()
        for key in full_d:
            if key in ("elapsed_seconds", "metric"):
                assert math.isclose(
                    full_d[key], fast_d[key], rel_tol=TIME_RTOL
                ), (network, key, full_d[key], fast_d[key])
            else:
                # Traffic, RMT and counters replay exactly.
                assert full_d[key] == fast_d[key], (network, key)

    def test_systems_diverge_even_with_fastforward(self):
        """Fast-forward must not blur the systems apart: the discard
        savings the paper measures survive the replay.  Batch size 80
        oversubscribes the scaled GPU (smaller batches fit entirely, so
        every UVM system would see identical traffic)."""
        results = {
            system: execute_point(
                _point("vgg16", 80, 0.03125, system=system,
                       steady_state_fastforward=True)
            )
            for system in ("UVM-opt", "UvmDiscard")
        }
        assert (
            results["UvmDiscard"].traffic_gb < results["UVM-opt"].traffic_gb
        )


class TestDetector:
    def _runtime(self):
        from repro.cuda.runtime import CudaRuntime

        return CudaRuntime()

    def test_fast_forward_before_verification_rejected(self):
        runtime = self._runtime()
        detector = SteadyStateDetector(runtime, verify_iterations=2)
        with pytest.raises(SimulationError):
            detector.fast_forward(3)

    def test_verification_needs_consecutive_identical_deltas(self):
        runtime = self._runtime()
        env = runtime.env
        detector = SteadyStateDetector(runtime, verify_iterations=2)

        def tick(duration):
            def proc():
                yield env.timeout(duration)

            env.process(proc())
            env.run()

        tick(1e-6)
        assert not detector.mark()  # first delta: nothing to compare
        tick(2e-6)
        assert not detector.mark()  # delta changed: streak resets
        tick(2e-6)
        assert not detector.mark()  # one match
        tick(2e-6)
        assert detector.mark()  # two consecutive matches: verified

    def test_fast_forward_advances_clock_and_instruments(self):
        runtime = self._runtime()
        env = runtime.env
        detector = SteadyStateDetector(runtime, verify_iterations=1)

        def iteration():
            def proc():
                yield env.timeout(1e-6)

            env.process(proc())
            env.run()
            runtime.driver.counters.bump("iters")

        for _ in range(3):
            iteration()
            verified = detector.mark()
        assert verified
        before = env.now
        detector.fast_forward(5)
        assert math.isclose(env.now, before + 5e-6, rel_tol=1e-12)
        assert runtime.driver.counters["iters"] == 3 + 5

    def test_fast_forward_zero_iterations_is_noop(self):
        runtime = self._runtime()
        env = runtime.env
        detector = SteadyStateDetector(runtime, verify_iterations=1)

        def tick():
            def proc():
                yield env.timeout(1e-6)

            env.process(proc())
            env.run()

        tick()
        detector.mark()
        tick()
        assert detector.mark()
        now = env.now
        detector.fast_forward(0)
        assert env.now == now

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SteadyStateDetector(self._runtime(), verify_iterations=0)


class TestConfigGuards:
    def test_off_by_default(self):
        assert UvmDriverConfig().steady_state_fastforward is False

    def test_rejects_event_log_combination(self):
        config = UvmDriverConfig(
            steady_state_fastforward=True, event_log_enabled=True
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_rejects_golden_trace_combination(self):
        config = UvmDriverConfig(
            steady_state_fastforward=True, keep_transfer_records=True
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_verify_iterations_validated(self):
        with pytest.raises(ValueError):
            UvmDriverConfig(steady_state_verify_iterations=0).validate()

    def test_event_log_capacity_validated(self):
        with pytest.raises(ValueError):
            UvmDriverConfig(event_log_capacity=0).validate()
        UvmDriverConfig(event_log_capacity=None).validate()
