"""Property-based tests of the semantics oracle against a reference model.

The reference: after the last discard, the newest write is guaranteed
visible; losing it (data loss) makes subsequent reads corrupted until a
new write or discard.  Random event sequences must keep the oracle in
lockstep with this model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import DataOracle
from repro.driver.va_block import DiscardKind, VaBlock
from repro.units import BIG_PAGE

EVENTS = st.lists(
    st.sampled_from(["write", "discard", "loss", "read"]),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(EVENTS)
def test_oracle_matches_reference_model(events):
    oracle = DataOracle(strict=False)
    block = VaBlock(7, BIG_PAGE)
    guaranteed_write = False  # a write since the last discard
    lost = False  # that write was dropped by the driver
    expected_corrupted_reads = 0

    for time, event in enumerate(events):
        if event == "write":
            block.record_write()
            oracle.record_write(float(time), block)
            guaranteed_write = True
            lost = False
        elif event == "discard":
            block.mark_discarded(DiscardKind.LAZY)
            oracle.record_discard(float(time), block)
            guaranteed_write = False
            lost = False
        elif event == "loss":
            oracle.record_data_loss(float(time), block, "test loss")
            if guaranteed_write:
                lost = True
            # After a loss the driver also drops residency/discard state;
            # mirror the block-side effect of a reclaim.
            block.revive()
            block.populated = False
        else:  # read
            oracle.validate_read(float(time), block)
            if lost:
                expected_corrupted_reads += 1

    assert oracle.corrupted_read_count == expected_corrupted_reads


@settings(max_examples=100, deadline=None)
@given(EVENTS)
def test_correct_programs_never_flag(events):
    """Filtering out 'loss' events, no sequence produces corruption."""
    oracle = DataOracle(strict=True)
    block = VaBlock(9, BIG_PAGE)
    for time, event in enumerate(events):
        if event == "write":
            block.record_write()
            oracle.record_write(float(time), block)
        elif event == "discard":
            block.mark_discarded(DiscardKind.EAGER)
            oracle.record_discard(float(time), block)
        elif event == "read":
            oracle.validate_read(float(time), block)  # never raises
    assert oracle.corruption_count == 0
