"""Property-based stress tests of the driver's structural invariants.

Hypothesis generates random operation sequences (prefetch either way,
GPU fault batches, eager/lazy discards, correct lazy reuse, buffer
frees) against a small GPU, and after every operation the test checks
the invariants that define a well-formed UVM driver state:

- frame conservation: allocator bookkeeping matches queue contents,
- exclusive residency: a block is mapped on at most the processor it
  resides on (modulo eager-discard's deliberate unmapping),
- queue membership matches discard state,
- the data oracle stays clean for programs that follow the §5.2 contract.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import AccessMode
from repro.driver import UvmDriver, UvmDriverConfig, VaBlock
from repro.engine import Environment
from repro.instrument.traffic import TransferReason
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE, MIB

NUM_BLOCKS = 12
GPU_FRAMES = 6  # half the blocks fit: constant eviction pressure

operation = st.tuples(
    st.sampled_from(
        [
            "prefetch_gpu",
            "prefetch_cpu",
            "gpu_fault",
            "gpu_write",
            "gpu_read",
            "host_write",
            "discard_eager",
            "discard_lazy",
        ]
    ),
    st.integers(min_value=0, max_value=NUM_BLOCKS - 1),
    st.integers(min_value=1, max_value=3),  # span length
)


def check_invariants(driver: UvmDriver, blocks) -> None:
    state = driver._gpu("gpu0")
    queues = state.queues
    # Frame conservation.
    queued = queues.resident_blocks() + len(queues.unused)
    assert queued == state.allocator.used_frames
    assert 0 <= state.allocator.free_frames <= state.allocator.capacity_frames
    table = driver.gpu_page_table("gpu0")
    for block in blocks:
        if block.on_gpu:
            # GPU-resident blocks sit in exactly one queue and own a frame.
            in_used = block in queues.used
            in_discarded = block in queues.discarded
            assert in_used != in_discarded, block
            assert block.frame is not None and block.frame.allocated
            assert in_discarded == block.discarded
            # The CPU never maps a GPU-resident block (§2.2).
            assert not driver.cpu_page_table.is_mapped(block.index)
        else:
            assert block.frame is None
            assert not table.is_mapped(block.index)
        if table.is_mapped(block.index):
            assert block.residency == "gpu0"


@settings(max_examples=60, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_random_operation_sequences_preserve_invariants(ops):
    env = Environment()
    driver = UvmDriver(env, pcie_gen4(), UvmDriverConfig())
    driver.register_gpu("gpu0", GPU_FRAMES * 2 * MIB)
    blocks = [VaBlock(100 + i, BIG_PAGE) for i in range(NUM_BLOCKS)]
    driver.register_blocks(blocks)

    def run(generator):
        env.run(until=env.process(generator))

    for name, start, span in ops:
        selected = blocks[start : start + span]
        if name == "prefetch_gpu":
            run(driver.prefetch(selected, "gpu0"))
        elif name == "prefetch_cpu":
            run(driver.prefetch(selected, "cpu"))
        elif name == "gpu_fault":
            faulting = [
                b for b in selected if driver.gpu_needs_fault("gpu0", b)
            ]
            run(driver.handle_gpu_faults("gpu0", faulting))
        elif name == "gpu_write":
            # Correct lazy usage: notify via prefetch before writing.
            run(driver.prefetch(selected, "gpu0"))
            for block in selected:
                driver.note_access(block, AccessMode.WRITE)
        elif name == "gpu_read":
            run(driver.prefetch(selected, "gpu0"))
            for block in selected:
                driver.note_access(block, AccessMode.READ)
        elif name == "host_write":
            run(
                driver.make_resident_cpu(
                    selected, TransferReason.FAULT_MIGRATION, True
                )
            )
            for block in selected:
                driver.note_access(block, AccessMode.WRITE)
        elif name == "discard_eager":
            for block in selected:
                if not block.discarded:
                    driver.discard_block_eager(block)
        elif name == "discard_lazy":
            for block in selected:
                if not block.discarded:
                    driver.discard_block_lazy(block)
        check_invariants(driver, blocks)

    # A program following the contract never corrupts data.
    assert driver.counters["lazy_misuses"] == 0
    assert driver.oracle.corruption_count == 0
    driver.finalize()
    assert (
        driver.rmt.useful_bytes + driver.rmt.redundant_bytes
        <= driver.traffic.total_bytes + NUM_BLOCKS * BIG_PAGE * len(ops)
    )


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=20,
    )
)
def test_discard_reuse_cycles_never_transfer(cycles):
    """Any interleaving of {discard, prefetch, overwrite} cycles over
    GPU-only scratch blocks moves zero bytes across the link."""
    env = Environment()
    driver = UvmDriver(env, pcie_gen4(), UvmDriverConfig())
    driver.register_gpu("gpu0", 8 * MIB)
    blocks = [VaBlock(200 + i, BIG_PAGE) for i in range(6)]
    driver.register_blocks(blocks)

    def run(generator):
        env.run(until=env.process(generator))

    for lazy, index in cycles:
        block = blocks[index]
        run(driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        if lazy:
            driver.discard_block_lazy(block)
        else:
            driver.discard_block_eager(block)
    assert driver.traffic.total_bytes == 0
