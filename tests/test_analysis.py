"""Tests for :mod:`repro.analysis` — attribution, waste, discard inference.

Four layers:

- conservation — every attributed view (per-buffer segments, per-phase,
  per-reason, RMT fates) re-sums to the recorder's running totals, on
  cold runs, snapshot-forked runs and chaos runs alike,
- re-export — :func:`repro.workloads.replay.per_buffer_transfer_totals`
  is the :mod:`repro.analysis.attribution` implementation, not a copy,
- inference — :func:`infer_discards` placements replayed over the
  discard-free baseline save exactly the bytes the hand-placed discards
  save (the ``repro explain --check`` contract, full-size runs of every
  workload are exercised by the CI explain-smoke job),
- reporting — :func:`explain_point` / :func:`diff_reports` shapes and
  their text renderers.
"""

from __future__ import annotations

import pytest

from repro.analysis.attribution import (
    RAW_BUCKET,
    attribution_report,
    attribution_summary,
    per_buffer_transfer_totals,
)
from repro.analysis.explain import (
    check_discard_inference,
    diff_reports,
    explain_point,
    render_check,
    render_diff,
    render_report,
)
from repro.analysis.opportunities import apply_discards, infer_discards
from repro.harness.results import ExperimentResult
from repro.harness.sweep import SweepPoint
from repro.harness.tracerun import traced_run
from repro.harness.validation import collect_conservation_problems
from repro.workloads import replay as replay_module

RECORDS = (("keep_transfer_records", True),)


def point(workload="fir", system="UVM-opt", scale=0.01, **kwargs):
    kwargs.setdefault("ratio", 2.0)
    return SweepPoint(
        workload=workload, system=system, link="gen3", scale=scale,
        driver=RECORDS, **kwargs,
    )


@pytest.fixture(scope="module")
def cold():
    return traced_run(point())


@pytest.fixture(scope="module")
def forked():
    return traced_run(point(), via_fork=True)


# ----------------------------------------------------------------------
# conservation
# ----------------------------------------------------------------------


class TestConservation:
    def test_cold_run_has_no_conservation_problems(self, cold):
        _, _, runtime = cold
        assert collect_conservation_problems(runtime.driver) == []

    def test_forked_run_has_no_conservation_problems(self, forked):
        _, _, runtime = forked
        assert collect_conservation_problems(runtime.driver) == []

    def test_forked_attribution_equals_cold(self, cold, forked):
        assert attribution_report(cold[2]) == attribution_report(forked[2])

    def test_report_resums_recorder_totals(self, cold):
        _, _, runtime = cold
        report = attribution_report(runtime)
        assert report["complete"] is True
        totals = report["totals"]
        for key, direction in (("bytes_h2d", "h2d"), ("bytes_d2h", "d2h"),
                               ("bytes_d2d", "d2d")):
            assert totals[key] == sum(
                row[direction] for row in report["by_buffer"].values()
            )
            assert totals[key] == sum(
                row[direction] for row in report["by_phase"].values()
            )
            assert totals[key] == sum(
                row[direction] for row in report["by_reason"].values()
            )
        waste = report["waste"]
        classified = (
            waste["useful_bytes"] + waste["redundant_bytes"]
        )
        assert classified + waste["pending_bytes"] == totals["block_bytes"]
        assert waste["redundant_bytes"] == (
            waste["overwritten_bytes"]
            + waste["discarded_bytes"]
            + waste["unused_bytes"]
        )
        assert 0.0 <= waste["redundant_fraction"] <= 1.0

    def test_chaos_run_conserves_attribution(self):
        # The chaos runner keeps transfer records and its validator folds
        # collect_conservation_problems (attribution included) into the
        # mid-flight invariant checks at every cadence boundary.
        from repro.chaos.runner import run_chaos_suite

        report = run_chaos_suite(seed=7, workloads=["fir"], strict=True)
        assert report.ok

    def test_summary_is_a_subset_of_the_report(self, cold):
        _, _, runtime = cold
        report = attribution_report(runtime)
        summary = attribution_summary(runtime)
        assert summary == {
            "complete": report["complete"],
            "waste": report["waste"],
            "by_buffer": report["by_buffer"],
        }

    def test_result_rows_carry_the_summary(self, cold):
        result, _, runtime = cold
        row = ExperimentResult.from_runtime(runtime, "UVM-opt", "200%")
        assert row.attribution == attribution_summary(runtime)
        assert ExperimentResult.from_dict(row.to_dict()) == row
        # Without retained records the field stays None (hot path).
        assert result.attribution is None or result.attribution["complete"]


# ----------------------------------------------------------------------
# re-export
# ----------------------------------------------------------------------


class TestPerBufferReexport:
    def test_replay_reexports_the_analysis_function(self):
        assert (
            replay_module.per_buffer_transfer_totals
            is per_buffer_transfer_totals
        )

    def test_totals_resum_and_bucket_raw_transfers(self, cold):
        _, _, runtime = cold
        traffic = runtime.driver.traffic
        totals = per_buffer_transfer_totals(runtime)
        assert sum(row["h2d"] for row in totals.values()) == traffic.bytes_h2d
        assert sum(row["d2h"] for row in totals.values()) == traffic.bytes_d2h
        raw = totals.get(RAW_BUCKET, {"h2d": 0, "d2h": 0, "d2d": 0})
        assert sum(raw.values()) == traffic.total_bytes - traffic.block_bytes


# ----------------------------------------------------------------------
# discard inference
# ----------------------------------------------------------------------


CHECK_SCALE = 0.03125

CHECK_POINTS = [
    # Lazy + prefetch pairing + the unpaired eager tail (reduction) and
    # eager with *negative* savings (knn windows): the two inference
    # edge cases worth paying for in tier-1 time.
    ("reduction", "UvmDiscardLazy"),
    ("knn", "UvmDiscard"),
]


class TestDiscardInference:
    @pytest.mark.parametrize("workload,system", CHECK_POINTS)
    def test_inferred_savings_match_hand_discards(self, workload, system):
        check = check_discard_inference(
            point(workload, "UVM-opt", scale=CHECK_SCALE),
            point(workload, system, scale=CHECK_SCALE),
            system,
        )
        assert check["ok"], render_check(check, workload)
        assert check["measured_savings"] == check["detected_savings"]

    def test_apply_discards_builds_a_fresh_valid_trace(self):
        from repro.workloads.replay import run_replay

        _, tracer, _ = traced_run(point("reduction", scale=CHECK_SCALE))
        from repro.workloads.replay import chrome_trace_to_replay

        trace = chrome_trace_to_replay(tracer.to_chrome_trace())
        opportunities = infer_discards(trace, "UvmDiscard")
        assert opportunities, "reduction must expose discard opportunities"
        for opp in opportunities:
            assert opp["rule"]
            assert opp["length"] > 0
            assert 0 <= opp["killer"] < len(trace.ops)
            assert 0 <= opp["insert_before"] <= len(trace.ops)
        modified = apply_discards(trace, opportunities, "UvmDiscard")
        assert len(modified.ops) == len(trace.ops) + len(opportunities)
        assert "expected" not in modified.meta
        assert modified.meta["system"] == "UvmDiscard"
        inserted = [
            op for op in modified.ops
            if op["op"] == "discard" and "t" not in op
        ]
        assert len(inserted) == len(opportunities)
        ids = [op["id"] for op in inserted]
        assert len(ids) == len(set(ids))
        base_ids = {
            op.get("id") for op in trace.ops if op.get("id") is not None
        }
        assert not base_ids.intersection(ids)
        # The modified trace replays (totals differ from the baseline:
        # that delta is the priced opportunity).
        result, _ = run_replay(modified)
        assert result is not None

    def test_host_touched_buffers_are_never_discarded(self):
        _, tracer, _ = traced_run(point("reduction", scale=CHECK_SCALE))
        from repro.workloads.replay import chrome_trace_to_replay

        trace = chrome_trace_to_replay(tracer.to_chrome_trace())
        # E1: a host access inside the measured body disqualifies the
        # whole buffer — the host still needs those bytes, so nothing in
        # it is provably dead.  (Setup-span host writes are fine.)
        measure = next(
            idx for idx, op in enumerate(trace.ops) if op["op"] == "measure"
        )
        body_host = {
            op["buffer"]
            for op in trace.ops[measure:]
            if op["op"] == "host_access"
        }
        buffers = {name for name, _, _ in trace.buffers}
        opportunities = infer_discards(trace, "UvmDiscard")
        assert opportunities
        for opp in opportunities:
            assert opp["buffer"] in buffers
            assert opp["buffer"] not in body_host


# ----------------------------------------------------------------------
# explain reports
# ----------------------------------------------------------------------


class TestExplainReports:
    @pytest.fixture(scope="class")
    def report(self):
        return explain_point(point("reduction", scale=CHECK_SCALE))

    def test_report_shape(self, report):
        assert report["oom"] is False
        assert report["attribution"]["complete"] is True
        assert report["opportunities"]
        savings = report["estimated_savings"]
        assert set(savings) == {"bytes_h2d", "bytes_d2h", "bytes_d2d"}

    def test_render_report(self, report):
        text = render_report(report)
        assert "per-buffer attribution" in text
        assert "missed discard opportunit" in text

    def test_self_diff_is_empty(self, report):
        diff = diff_reports(report, report)
        assert all(value == 0 for value in diff["totals"].values())
        assert all(value == 0 for value in diff["waste"].values())
        assert diff["by_buffer"] == {}
        assert diff["by_phase"] == {}
        assert diff["by_reason"] == {}
        assert "diff:" in render_diff(diff)

    def test_diff_tracks_byte_deltas(self, report):
        import copy

        other = copy.deepcopy(report)
        other["attribution"]["totals"]["bytes_h2d"] += 7
        other["attribution"]["by_buffer"]["reduce_values"]["h2d"] += 7
        diff = diff_reports(report, other)
        assert diff["totals"]["bytes_h2d"] == 7
        assert diff["by_buffer"]["reduce_values"]["h2d"] == 7
