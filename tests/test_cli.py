"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fir"])
        assert args.experiment == "fir"
        assert args.scale == 0.125
        assert args.link == "gen4"
        assert args.csv is None

    def test_bad_link_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fir", "--link", "gen5"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_micro_experiment_prints_tables(self, capsys):
        assert main(["run", "fir", "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "UVM-opt" in out
        assert "UvmDiscard" in out
        assert "<100%" in out and "400%" in out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        assert main(
            ["run", "hashjoin", "--scale", "0.03125", "--csv", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("system,config,")
        assert len(lines) == 1 + 4 * 3  # header + ratios x systems

    def test_dl_experiment(self, capsys):
        assert main(["run", "dl:rnn", "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "RNN" in out

    def test_pcie3_option(self, capsys):
        assert main(["run", "fir", "--scale", "0.03125", "--link", "gen3"]) == 0


class TestReproduce:
    def test_writes_markdown_report(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        # One micro + one DL experiment at minimal scale keeps this fast;
        # monkeypatch the experiment list down.
        import repro.cli as cli

        original = dict(cli.EXPERIMENTS)
        try:
            cli.EXPERIMENTS.clear()
            cli.EXPERIMENTS["fir"] = original["fir"]
            assert main(
                ["reproduce", "--scale", "0.03125", "--output", str(target)]
            ) == 0
        finally:
            cli.EXPERIMENTS.clear()
            cli.EXPERIMENTS.update(original)
        text = target.read_text()
        assert text.startswith("# UVM Discard reproduction report")
        assert "| UVM-opt |" in text
        assert "speedup" in text


class TestDemo:
    def test_demo_verifies_result(self, capsys):
        assert main(["demo"]) == 0
        assert "result OK" in capsys.readouterr().out
