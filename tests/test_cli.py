"""Tests for the command-line interface."""

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fir"])
        assert args.experiment == "fir"
        assert args.scale == 0.125
        assert args.link == "gen4"
        assert args.csv is None

    def test_bad_link_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fir", "--link", "gen5"])


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_micro_experiment_prints_tables(self, capsys):
        assert main(["run", "fir", "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "UVM-opt" in out
        assert "UvmDiscard" in out
        assert "<100%" in out and "400%" in out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        assert main(
            ["run", "hashjoin", "--scale", "0.03125", "--csv", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("system,config,")
        assert len(lines) == 1 + 4 * 3  # header + ratios x systems

    def test_dl_experiment(self, capsys):
        assert main(["run", "dl:rnn", "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "RNN" in out

    def test_pcie3_option(self, capsys):
        assert main(["run", "fir", "--scale", "0.03125", "--link", "gen3"]) == 0


class TestReproduce:
    def test_writes_markdown_report(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        # One micro + one DL experiment at minimal scale keeps this fast;
        # monkeypatch the experiment list down.
        import repro.cli as cli

        original = dict(cli.EXPERIMENTS)
        try:
            cli.EXPERIMENTS.clear()
            cli.EXPERIMENTS["fir"] = original["fir"]
            assert main(
                ["reproduce", "--scale", "0.03125", "--output", str(target)]
            ) == 0
        finally:
            cli.EXPERIMENTS.clear()
            cli.EXPERIMENTS.update(original)
        text = target.read_text()
        assert text.startswith("# UVM Discard reproduction report")
        assert "| UVM-opt |" in text
        assert "speedup" in text


class TestDemo:
    def test_demo_verifies_result(self, capsys):
        assert main(["demo"]) == 0
        assert "result OK" in capsys.readouterr().out


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8731
        assert args.workers == 2
        assert args.executor == "process"
        assert args.pool_bytes == 256 * 1024 * 1024
        assert args.queue_limit == 256
        assert args.rate == 0.0
        assert args.no_cache is False
        assert args.drain_seconds == 10.0

    def test_overrides(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--workers", "5",
                "--executor", "thread",
                "--pool-bytes", "0",
                "--queue-limit", "7",
                "--rate", "3.5",
                "--no-cache",
            ]
        )
        assert args.port == 0
        assert args.workers == 5
        assert args.executor == "thread"
        assert args.pool_bytes == 0
        assert args.queue_limit == 7
        assert args.rate == 3.5
        assert args.no_cache is True

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "fiber"])

    def test_invalid_spec_exits_2(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "bad serve spec" in capsys.readouterr().err

    def test_bad_bind_address_exits_2(self, capsys):
        assert main(["serve", "--host", "203.0.113.1", "--no-cache"]) == 2
        assert "cannot serve" in capsys.readouterr().err


class TestLoadgenParser:
    def test_defaults(self):
        args = build_parser().parse_args(["loadgen", "--url", "http://x:1"])
        assert args.url == "http://x:1"
        assert args.requests == 100
        assert args.clients == 8
        assert args.duplicates == 0.5
        assert args.seed == 0
        assert args.verify_identity == 0
        assert args.report is None

    def test_url_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])

    def test_unreachable_server_exits_2(self, capsys):
        assert main(
            ["loadgen", "--url", "http://127.0.0.1:9", "--requests", "1",
             "--clients", "1", "--timeout", "1"]
        ) in (1, 2)


class TestServeSubprocess:
    """The full `python -m repro serve` contract: announce line,
    malformed-request 400s, SIGTERM -> graceful exit 0."""

    @pytest.fixture()
    def server_process(self):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--executor", "thread",
                "--workers", "1",
                "--no-cache",
                "--drain-seconds", "5",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            yield process, announce
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

    @staticmethod
    def _port(announce):
        assert announce.startswith("serving on http://127.0.0.1:"), announce
        return int(announce.split("http://127.0.0.1:")[1].split()[0])

    def _post(self, port, path, body):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request(
                "POST", path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    def test_serves_then_drains_cleanly_on_sigterm(self, server_process):
        process, announce = server_process
        port = self._port(announce)
        assert "cache off" in announce and "thread x1" in announce

        # Malformed requests are 400s, not crashes.
        status, payload = self._post(port, "/run", b"{not json")
        assert status == 400
        assert "error" in payload
        status, payload = self._post(port, "/run", json.dumps({}).encode())
        assert status == 400

        # A real point round-trips through the worker pool.
        status, payload = self._post(
            port,
            "/run",
            json.dumps(
                {"point": {"workload": "fir", "system": "UvmDiscard",
                           "ratio": 2.0, "scale": 0.03125}}
            ).encode(),
        )
        assert status == 200
        assert payload["provenance"] == "run"
        assert payload["outcome"]["status"] == "ok"

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0

    def test_sigint_also_exits_zero(self, server_process):
        process, announce = server_process
        self._port(announce)  # wait until bound
        time.sleep(0.1)
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0


class TestFastMode:
    def test_run_fast_prints_full_tables(self, capsys):
        assert main(["run", "fir", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "UvmDiscard" in out
        assert "<100%" in out and "400%" in out

    def test_run_fast_rejects_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["run", "fir", "--fast", "--trace", str(trace)]) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_run_fast_uncalibrated_scale_exits_2(self, capsys):
        assert main(["run", "fir", "--fast", "--scale", "0.017"]) == 2
        assert "fast model unavailable" in capsys.readouterr().err

    def test_sweep_fast_labels_points(self, tmp_path, capsys):
        assert main([
            "sweep",
            "--workloads", "fir",
            "--systems", "UvmDiscard",
            "--ratios", "2.0,2.25",
            "--fast",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "+fast" in out


class TestProfileCompare:
    def test_compare_prints_delta_table(self, capsys):
        assert main([
            "profile",
            "--benchmarks", "engine_churn",
            "--repeat", "1",
            "--output", "",
            "--compare", "benchmarks/perf/baseline.json",
        ]) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "engine_churn" in out
        assert "speedup" in out

    def test_compare_bad_baseline_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "nope.json"
        assert main([
            "profile",
            "--benchmarks", "engine_churn",
            "--repeat", "1",
            "--output", "",
            "--compare", str(bogus),
        ]) == 2
        assert "bad baseline" in capsys.readouterr().err


class TestChaosWorkloadListing:
    """The --workloads error is a contract: it must name every catalog
    entry so the listing can never drift from ``CHAOS_WORKLOADS``."""

    def test_unknown_workload_lists_full_catalog(self, capsys):
        from repro.chaos.catalog import CHAOS_WORKLOADS

        assert main(["chaos", "--workloads", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown chaos workloads ['bogus']" in err
        for name in CHAOS_WORKLOADS:
            assert name in err, f"{name} missing from the catalog listing"

    def test_new_categories_are_selectable(self):
        args = build_parser().parse_args(
            ["chaos", "--workloads", "bfs,kmeans,knn,stencil,reduction"]
        )
        assert args.workloads == "bfs,kmeans,knn,stencil,reduction"


class TestExplain:
    def test_defaults(self):
        args = build_parser().parse_args(["explain", "reduction"])
        assert args.experiment == "reduction"
        assert args.system == "UVM-opt"
        assert args.diff is None
        assert not args.check and not args.json and not args.fork

    def test_needs_experiment_or_diff(self, capsys):
        assert main(["explain"]) == 2
        assert "needs an experiment" in capsys.readouterr().err

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["explain", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_and_diff(self, tmp_path, capsys):
        run_a = tmp_path / "a.json"
        run_b = tmp_path / "b.json"
        common = ["--scale", "0.03125", "--link", "gen3"]
        assert main(
            ["explain", "reduction", *common, "--out", str(run_a)]
        ) == 0
        out = capsys.readouterr().out
        assert "per-buffer attribution" in out
        assert "missed discard opportunit" in out
        assert main(
            ["explain", "reduction", *common, "--system", "UvmDiscardLazy",
             "--json", "--out", str(run_b)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attribution"]["complete"] is True
        assert json.loads(run_b.read_text()) == payload

        assert main(["explain", "--diff", str(run_a), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "diff: reduction/UVM-opt -> reduction/UvmDiscardLazy" in out

    def test_check_passes_on_reduction(self, capsys):
        assert main(
            ["explain", "reduction", "--scale", "0.03125", "--link", "gen3",
             "--system", "UvmDiscard", "--check"]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_diff_with_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["explain", "--diff", str(tmp_path / "a.json"),
             str(tmp_path / "b.json")]
        ) == 2
        assert "cannot load" in capsys.readouterr().err


class TestReplay:
    @pytest.fixture(scope="class")
    def export(self, tmp_path_factory):
        """A Chrome export of a small traced point, as 'repro trace'
        would write it."""
        from repro.harness.sweep import SweepPoint
        from repro.harness.tracerun import trace_point

        point = SweepPoint(
            workload="fir", system="UvmDiscard", ratio=2.0, scale=0.01
        )
        _, tracer = trace_point(point)
        path = tmp_path_factory.mktemp("replay") / "export.json"
        path.write_text(json.dumps(tracer.to_chrome_trace()))
        return path

    def test_defaults(self):
        args = build_parser().parse_args(["replay", "t.json"])
        assert args.trace == "t.json"
        assert args.convert is None
        assert not args.check and not args.per_buffer and not args.json

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_convert_then_check_round_trips(self, export, tmp_path, capsys):
        csv_path = tmp_path / "replay.csv"
        assert main(["replay", str(export), "--convert", str(csv_path)]) == 0
        assert "wrote replay trace" in capsys.readouterr().out

        assert main(["replay", str(csv_path), "--check", "--per-buffer"]) == 0
        out = capsys.readouterr().out
        assert "recorded totals: MATCH" in out
        assert "fir_input" in out  # per-buffer lines present

    def test_json_output_reports_check(self, export, capsys):
        assert main(["replay", str(export), "--json", "--check"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["check"]["checked"] and payload["check"]["ok"]
        assert payload["meta"]["workload"] == "fir"
        assert payload["ops"] > 0

    def test_check_without_recorded_totals_exits_2(
        self, export, tmp_path, capsys
    ):
        from repro.workloads.replay import load_replay_trace

        doc = load_replay_trace(str(export)).to_document()
        doc["meta"].pop("expected")
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        assert main(["replay", str(bare), "--check"]) == 2
        assert "no expected totals" in capsys.readouterr().err
