"""Tests for the migration engine: coalescing, engines, peer transfers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.driver.migration import CopyEngines, MigrationEngine, coalesce_spans
from repro.driver.va_block import VaBlock
from repro.engine import Environment
from repro.instrument.rmt import RmtClassifier
from repro.instrument.traffic import TrafficRecorder, TransferDirection, TransferReason
from repro.interconnect import nvlink_gen3, pcie_gen4
from repro.units import BIG_PAGE


def blocks_at(indices):
    return [VaBlock(i, BIG_PAGE) for i in indices]


class TestCoalesceSpans:
    def test_contiguous_single_span(self):
        spans = coalesce_spans(blocks_at([3, 4, 5]))
        assert len(spans) == 1
        assert [b.index for b in spans[0]] == [3, 4, 5]

    def test_gaps_split_spans(self):
        spans = coalesce_spans(blocks_at([1, 2, 5, 6, 9]))
        assert [[b.index for b in s] for s in spans] == [[1, 2], [5, 6], [9]]

    def test_unsorted_input_sorted(self):
        spans = coalesce_spans(blocks_at([5, 3, 4]))
        assert [b.index for b in spans[0]] == [3, 4, 5]

    def test_empty(self):
        assert coalesce_spans([]) == []

    @given(st.sets(st.integers(min_value=0, max_value=200), max_size=60))
    def test_partition_property(self, indices):
        spans = coalesce_spans(blocks_at(sorted(indices)))
        flat = [b.index for s in spans for b in s]
        assert flat == sorted(indices)
        for span in spans:
            ids = [b.index for b in span]
            assert ids == list(range(ids[0], ids[0] + len(ids)))
        # Maximal: adjacent spans are non-contiguous.
        for a, b in zip(spans, spans[1:]):
            assert a[-1].index + 1 < b[0].index


def make_engine():
    env = Environment()
    traffic = TrafficRecorder()
    engine = MigrationEngine(env, pcie_gen4(), traffic, RmtClassifier())
    return env, engine, traffic, CopyEngines(env)


class TestTransferBlocks:
    def test_one_dma_command_per_span(self):
        env, engine, traffic, engines = make_engine()
        group = blocks_at([1, 2, 10])

        def driver():
            yield from engine.transfer_blocks(
                group, TransferDirection.HOST_TO_DEVICE,
                TransferReason.PREFETCH, engines,
            )

        env.run(until=env.process(driver()))
        assert traffic.transfer_count == 2  # [1,2] and [10]
        assert traffic.bytes_h2d == 3 * BIG_PAGE

    def test_coalescing_saves_latency(self):
        def timed(indices):
            env, engine, _, engines = make_engine()

            def driver():
                yield from engine.transfer_blocks(
                    blocks_at(indices), TransferDirection.HOST_TO_DEVICE,
                    TransferReason.PREFETCH, engines,
                )

            env.run(until=env.process(driver()))
            return env.now

        contiguous = timed(list(range(8)))
        fragmented = timed(list(range(0, 16, 2)))
        assert contiguous < fragmented

    def test_direction_engine_serialization(self):
        env, engine, _, engines = make_engine()
        group_a = blocks_at([0])
        group_b = blocks_at([100])

        def send(group):
            yield from engine.transfer_blocks(
                group, TransferDirection.HOST_TO_DEVICE,
                TransferReason.PREFETCH, engines,
            )

        env.process(send(group_a))
        env.process(send(group_b))
        env.run()
        single = engine.transfer_time(BIG_PAGE)
        assert env.now == pytest.approx(2 * single, rel=0.01)

    def test_opposite_directions_overlap(self):
        env, engine, _, engines = make_engine()

        def h2d():
            yield from engine.transfer_blocks(
                blocks_at([0]), TransferDirection.HOST_TO_DEVICE,
                TransferReason.PREFETCH, engines,
            )

        def d2h():
            yield from engine.transfer_blocks(
                blocks_at([100]), TransferDirection.DEVICE_TO_HOST,
                TransferReason.EVICTION, engines,
            )

        env.process(h2d())
        env.process(d2h())
        env.run()
        assert env.now == pytest.approx(engine.transfer_time(BIG_PAGE), rel=0.01)

    def test_empty_transfer_noop(self):
        env, engine, traffic, engines = make_engine()

        def driver():
            yield from engine.transfer_blocks(
                [], TransferDirection.HOST_TO_DEVICE,
                TransferReason.PREFETCH, engines,
            )
            yield env.timeout(0)

        env.run(until=env.process(driver()))
        assert traffic.transfer_count == 0


class TestPeerTransfer:
    def test_records_d2d(self):
        env = Environment()
        traffic = TrafficRecorder()
        engine = MigrationEngine(env, pcie_gen4(), traffic, RmtClassifier())
        src, dst = CopyEngines(env), CopyEngines(env)

        def driver():
            yield from engine.transfer_blocks_peer(
                blocks_at([1, 2]), nvlink_gen3(), src, dst
            )

        env.run(until=env.process(driver()))
        assert traffic.bytes_d2d == 2 * BIG_PAGE
        assert traffic.bytes_h2d == 0

    def test_p2p_link_speed_used(self):
        env = Environment()
        engine = MigrationEngine(
            env, pcie_gen4(), TrafficRecorder(), RmtClassifier()
        )
        src, dst = CopyEngines(env), CopyEngines(env)

        def driver():
            yield from engine.transfer_blocks_peer(
                blocks_at([1]), nvlink_gen3(), src, dst
            )

        env.run(until=env.process(driver()))
        assert env.now == pytest.approx(
            nvlink_gen3().transfer_time(BIG_PAGE, chunk=BIG_PAGE), rel=0.01
        )


class TestRawTransfer:
    def test_records_bytes(self):
        env, engine, traffic, engines = make_engine()

        def driver():
            yield from engine.raw_transfer(
                12345, TransferDirection.DEVICE_TO_HOST,
                TransferReason.MEMCPY, engines,
            )

        env.run(until=env.process(driver()))
        assert traffic.bytes_d2h == 12345
        assert traffic.bytes_for(TransferReason.MEMCPY) == 12345
