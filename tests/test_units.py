"""Tests for repro.units: sizes, times and alignment helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_binary_sizes_are_powers(self):
        assert units.KIB == 2**10
        assert units.MIB == 2**20
        assert units.GIB == 2**30

    def test_decimal_sizes(self):
        assert units.KB == 10**3
        assert units.MB == 10**6
        assert units.GB == 10**9

    def test_page_geometry(self):
        assert units.BIG_PAGE == 2 * units.MIB
        assert units.SMALL_PAGE == 4 * units.KIB
        assert units.PAGES_PER_BLOCK == 512
        assert units.FULL_BLOCK_MASK == (1 << 512) - 1

    def test_time_helpers(self):
        assert units.us(1) == pytest.approx(1e-6)
        assert units.ms(2.5) == pytest.approx(2.5e-3)

    def test_traffic_units(self):
        assert units.to_gb(5_000_000_000) == pytest.approx(5.0)
        assert units.to_gib(units.GIB) == pytest.approx(1.0)


class TestAlignment:
    def test_align_down(self):
        assert units.align_down(5, 4) == 4
        assert units.align_down(8, 4) == 8
        assert units.align_down(0, 4) == 0

    def test_align_up(self):
        assert units.align_up(5, 4) == 8
        assert units.align_up(8, 4) == 8
        assert units.align_up(0, 4) == 0

    def test_is_aligned(self):
        assert units.is_aligned(8, 4)
        assert not units.is_aligned(6, 4)

    @pytest.mark.parametrize("func", [units.align_down, units.align_up, units.is_aligned])
    def test_rejects_nonpositive_alignment(self, func):
        with pytest.raises(ValueError):
            func(8, 0)
        with pytest.raises(ValueError):
            func(8, -2)

    @given(st.integers(min_value=0, max_value=10**15), st.integers(min_value=1, max_value=10**9))
    def test_align_down_properties(self, value, alignment):
        down = units.align_down(value, alignment)
        assert down % alignment == 0
        assert down <= value < down + alignment

    @given(st.integers(min_value=0, max_value=10**15), st.integers(min_value=1, max_value=10**9))
    def test_align_up_properties(self, value, alignment):
        up = units.align_up(value, alignment)
        assert up % alignment == 0
        assert up - alignment < value <= up

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_align_round_trip(self, value, alignment):
        assert units.align_up(units.align_down(value, alignment), alignment) == (
            units.align_down(value, alignment)
        )
