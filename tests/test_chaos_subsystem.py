"""Unit tests for the repro.chaos fault-injection subsystem.

One test class per fault mechanism (link degradation, transient transfer
faults with driver retry/backoff, ECC frame retirement, pressure spikes,
kernel abort-and-retry), plus the online validator's cadence contract,
the ChaosConfig serialization forms, sweep-harness integration and a CLI
smoke test.  The differential/property layer lives in
``test_chaos_property.py``; the detection oracle in
``test_validation_oracle.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import tiny_gpu

from repro.access import AccessMode
from repro.chaos import ChaosConfig, ChaosInjector, OnlineValidator
from repro.chaos.injector import _Periodic, _stream
from repro.chaos.runner import run_chaos_suite
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import (
    ConfigurationError,
    InvariantViolationError,
    OutOfMemoryError,
    TransferError,
)
from repro.memsim.frames import FrameAllocator
from repro.units import BIG_PAGE, MIB


def make_runtime(memory_mib: int = 64, **config) -> CudaRuntime:
    return CudaRuntime(
        gpu=tiny_gpu(memory_mib), driver_config=UvmDriverConfig(**config)
    )


def touch_program(cuda, nbytes=8 * MIB, name="data"):
    """Minimal host-init -> prefetch -> kernel -> readback program."""
    buf = cuda.malloc_managed(nbytes, name)
    yield from cuda.host_write(buf)
    cuda.prefetch_async(buf)
    cuda.launch(
        KernelSpec("touch", [BufferAccess(buf, AccessMode.READ)], flops=1e6)
    )
    yield from cuda.synchronize()
    yield from cuda.host_read(buf)
    yield from cuda.synchronize()


class TestLinkDegradation:
    def test_degrade_scales_bandwidth_and_latency(self):
        link = make_runtime().link
        base_bw = link.effective_bandwidth(BIG_PAGE)
        base_time = link.transfer_time(BIG_PAGE)
        link.degrade(0.5, extra_latency=1e-5)
        assert link.degraded
        assert link.effective_bandwidth(BIG_PAGE) == pytest.approx(base_bw / 2)
        assert link.transfer_time(BIG_PAGE) > base_time
        link.restore()
        assert not link.degraded
        assert link.effective_bandwidth(BIG_PAGE) == pytest.approx(base_bw)
        assert link.transfer_time(BIG_PAGE) == pytest.approx(base_time)

    def test_degraded_transfer_takes_longer(self):
        fast = make_runtime()
        fast.run(lambda cuda: touch_program(cuda))
        slow = make_runtime()
        slow.link.degrade(0.25)
        slow.run(lambda cuda: touch_program(cuda))
        assert slow.env.now > fast.env.now

    def test_degrade_rejects_bad_factor(self):
        link = make_runtime().link
        for factor in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                link.degrade(factor)


class TestTransferFaults:
    def test_armed_fault_is_retried_and_charged(self):
        clean = make_runtime()
        clean.run(lambda cuda: touch_program(cuda))
        faulty = make_runtime()
        faulty.link.inject_transfer_fault()
        faulty.run(lambda cuda: touch_program(cuda))
        counters = faulty.driver.counters
        assert counters["transfer_faults"] == 1
        assert counters["transfer_retries"] == 1
        assert faulty.link.armed_faults == 0
        # The failed attempt wasted wire time plus backoff.
        assert faulty.env.now > clean.env.now

    def test_faults_past_retry_budget_escalate(self):
        runtime = make_runtime(transfer_max_retries=2)
        runtime.link.inject_transfer_fault(count=5)
        with pytest.raises(TransferError):
            runtime.run(lambda cuda: touch_program(cuda))

    def test_reconfigure_applies_retry_knobs(self):
        runtime = make_runtime()
        assert runtime.driver.migration.max_retries == 3
        runtime.driver.reconfigure(
            UvmDriverConfig(transfer_max_retries=7, transfer_retry_backoff=0.0)
        )
        assert runtime.driver.migration.max_retries == 7
        assert runtime.driver.migration.retry_backoff == 0.0

    def test_config_rejects_negative_retry_knobs(self):
        with pytest.raises(ValueError):
            UvmDriverConfig(transfer_max_retries=-1).validate()
        with pytest.raises(ValueError):
            UvmDriverConfig(transfer_retry_backoff=-1.0).validate()


class TestEccRetirement:
    def test_allocator_retires_only_free_frames(self):
        allocator = FrameAllocator("gpu0", 4 * BIG_PAGE)
        frames = [allocator.allocate() for _ in range(3)]
        allocator.retire(1)
        assert allocator.retired_frames == 1
        assert allocator.capacity_frames == 3
        assert allocator.free_frames == 0
        with pytest.raises(OutOfMemoryError):
            allocator.retire(1)  # everything left is allocated
        allocator.free(frames[0])
        allocator.retire(1)
        assert allocator.retired_frames == 2

    def test_driver_retire_vacates_resident_blocks(self):
        runtime = make_runtime(memory_mib=16)

        def program(cuda):
            buf = cuda.malloc_managed(16 * MIB, "data")
            yield from cuda.host_write(buf)
            cuda.prefetch_async(buf)
            yield from cuda.synchronize()
            # Every frame is now backing a resident block: retiring must
            # evict (remap) before the frames can disappear.
            yield from cuda.driver.retire_frames("gpu0", 2)

        runtime.run(program)
        counters = runtime.driver.counters
        assert counters["ecc_retired_frames"] == 2
        assert counters["ecc_remapped_blocks"] >= 2
        view = runtime.driver.inspect().gpus["gpu0"]
        assert view.retired_frames == 2
        assert view.capacity_frames == 6

    def test_retire_never_takes_the_last_frame(self):
        runtime = make_runtime(memory_mib=2)
        with pytest.raises(OutOfMemoryError):
            runtime.run(
                lambda cuda: cuda.driver.retire_frames("gpu0", 2)
            )


class TestPressureSpikes:
    def test_reserve_gpu_frames_evicts_to_make_room(self):
        runtime = make_runtime(memory_mib=16)
        got = {}

        def program(cuda):
            buf = cuda.malloc_managed(16 * MIB, "data")
            yield from cuda.host_write(buf)
            cuda.prefetch_async(buf)
            yield from cuda.synchronize()
            # GPU is full of resident blocks; the co-tenant still lands.
            got["frames"] = yield from cuda.driver.reserve_gpu_frames("gpu0", 3)

        runtime.run(program)
        assert got["frames"] == 3
        assert runtime.driver.counters["evicted_blocks"] > 0
        view = runtime.driver.inspect().gpus["gpu0"]
        assert view.capacity_frames == 5  # 8 - 3 reserved

    def test_reserve_gpu_frames_is_best_effort(self):
        runtime = make_runtime(memory_mib=4)
        got = {}

        def program(cuda):
            got["frames"] = yield from cuda.driver.reserve_gpu_frames("gpu0", 99)

        runtime.run(program)
        # Nothing resident, so every free frame is reservable — but no more.
        assert got["frames"] == 2


class TestKernelAbort:
    def _abort_config(self, limit=2):
        return ChaosConfig(
            seed=1, kernel_abort_probability=1.0, kernel_abort_limit=limit
        )

    def test_abort_reruns_waves_and_preserves_result(self):
        runtime = make_runtime()
        calls = []
        out = {}

        def program(cuda):
            arr = np.arange(1024, dtype=np.float64)
            buf = cuda.malloc_managed(arr.nbytes, "data", array=arr)
            yield from cuda.host_write(buf)

            def body():
                calls.append(1)
                buf.array[:] = buf.array * 2

            cuda.launch(
                KernelSpec(
                    "double",
                    [BufferAccess(buf, AccessMode.READWRITE)],
                    flops=1e6,
                    waves=4,
                    fn=body,
                )
            )
            yield from cuda.synchronize()
            yield from cuda.host_read(buf)
            yield from cuda.synchronize()
            out["result"] = buf.array.copy()

        injector = ChaosInjector(self._abort_config()).install(runtime)
        try:
            runtime.run(program)
        finally:
            injector.uninstall()
        # Two aborts (the limit), then a clean pass; fn ran exactly once.
        assert runtime.driver.counters["kernel_aborts"] == 2
        assert calls == [1]
        assert np.array_equal(out["result"], np.arange(1024) * 2.0)

    def test_abort_budget_resets_per_launch(self):
        runtime = make_runtime()

        def program(cuda):
            buf = cuda.malloc_managed(1 * MIB, "data")
            yield from cuda.host_write(buf)
            for index in range(3):
                cuda.launch(
                    KernelSpec(
                        f"k{index}",
                        [BufferAccess(buf, AccessMode.READ)],
                        flops=1e6,
                        waves=2,
                    )
                )
                yield from cuda.synchronize()

        injector = ChaosInjector(self._abort_config(limit=1)).install(runtime)
        try:
            runtime.run(program)
        finally:
            injector.uninstall()
        assert runtime.driver.counters["kernel_aborts"] == 3


class TestOnlineValidator:
    def test_checks_fire_at_cadence(self):
        runtime = make_runtime()
        validator = OnlineValidator(runtime.driver, cadence=10).install(
            runtime.env
        )
        try:
            runtime.run(lambda cuda: touch_program(cuda))
        finally:
            validator.uninstall()
        events = runtime.env.event_count
        assert validator.checks >= events // 10 - 1
        assert validator.violations == []
        assert runtime.driver.counters["invariant_checks"] == validator.checks

    def test_strict_validator_raises_on_corruption(self):
        runtime = make_runtime()
        validator = OnlineValidator(
            runtime.driver, cadence=1, strict=True
        ).install(runtime.env)

        def program(cuda):
            buf = cuda.malloc_managed(4 * MIB, "data")
            yield from cuda.host_write(buf)
            cuda.prefetch_async(buf)
            yield from cuda.synchronize()
            # Corrupt: steal a frame behind the driver's back.
            block = next(
                b for b in cuda.driver._blocks.values() if b.frame is not None
            )
            block.frame = None
            yield cuda.env.timeout(1.0)

        try:
            with pytest.raises(InvariantViolationError):
                runtime.run(program)
        finally:
            validator.uninstall()
        assert validator.violations

    def test_non_strict_records_and_continues(self):
        runtime = make_runtime()
        validator = OnlineValidator(runtime.driver, cadence=1, strict=False)
        validator.install(runtime.env)

        def program(cuda):
            buf = cuda.malloc_managed(4 * MIB, "data")
            yield from cuda.host_write(buf)
            cuda.prefetch_async(buf)
            yield from cuda.synchronize()
            block = next(
                b for b in cuda.driver._blocks.values() if b.frame is not None
            )
            frame = block.frame
            block.frame = None
            for _ in range(3):
                yield cuda.env.timeout(1.0)
            block.frame = frame  # heal before the run ends

        try:
            runtime.run(program)
        finally:
            validator.uninstall()
        assert validator.violations

    def test_rejects_nonpositive_cadence(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            OnlineValidator(runtime.driver, cadence=0)

    def test_double_install_rejected(self):
        runtime = make_runtime()
        validator = OnlineValidator(runtime.driver).install(runtime.env)
        with pytest.raises(RuntimeError):
            validator.install(runtime.env)
        validator.uninstall()


class TestChaosConfig:
    def test_roundtrip_through_items(self):
        config = ChaosConfig.default_storm(seed=5)
        items = tuple(sorted(config.to_dict().items()))
        assert ChaosConfig.from_items(items) == config

    def test_to_dict_omits_defaults(self):
        assert ChaosConfig().to_dict() == {}
        assert ChaosConfig(seed=3).to_dict() == {"seed": 3}

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ChaosConfig(link_degrade_interval=-1).validate()
        with pytest.raises(ValueError):
            ChaosConfig(batch_reorder_probability=1.5).validate()
        with pytest.raises(ValueError):
            ChaosConfig(
                link_degrade_factor_min=0.8, link_degrade_factor_max=0.2
            ).validate()
        with pytest.raises(ValueError):
            ChaosConfig(ecc_max_retired_fraction=1.0).validate()

    def test_any_enabled(self):
        assert not ChaosConfig().any_enabled
        assert ChaosConfig(transfer_fault_interval=5).any_enabled
        assert ChaosConfig.default_storm().any_enabled


class TestDeterminism:
    def test_streams_are_tag_independent(self):
        a = [_stream(1, "x").random() for _ in range(3)]
        b = [_stream(1, "x").random() for _ in range(3)]
        c = [_stream(1, "y").random() for _ in range(3)]
        assert a == b
        assert a != c

    def test_periodic_schedule_reproducible(self):
        first = _Periodic(9, "tag", 10)
        second = _Periodic(9, "tag", 10)
        fires_a = [count for count in range(200) if first.due(count)]
        fires_b = [count for count in range(200) if second.due(count)]
        assert fires_a == fires_b
        assert fires_a  # actually fired

    def test_injector_actions_reproduce(self):
        config = ChaosConfig.default_storm(seed=11)

        def run():
            runtime = make_runtime(memory_mib=8)
            injector = ChaosInjector(config).install(runtime)
            try:
                runtime.run(lambda cuda: touch_program(cuda, nbytes=12 * MIB))
            finally:
                injector.uninstall()
            return injector.actions, runtime.env.now

        (actions_a, now_a), (actions_b, now_b) = run(), run()
        assert actions_a == actions_b
        assert now_a == now_b
        assert actions_a  # chaos actually fired

    def test_double_install_rejected(self):
        runtime = make_runtime()
        injector = ChaosInjector(ChaosConfig()).install(runtime)
        with pytest.raises(RuntimeError):
            injector.install(runtime)
        injector.uninstall()

    def test_uninstall_restores_link_and_spikes(self):
        runtime = make_runtime()
        injector = ChaosInjector(ChaosConfig()).install(runtime)
        runtime.link.degrade(0.5)
        injector.uninstall()
        assert not runtime.link.degraded
        assert runtime.driver.chaos is None


class TestSweepIntegration:
    def _chaos_items(self):
        return tuple(
            sorted(
                {
                    "seed": 2,
                    "transfer_fault_interval": 40,
                    "link_degrade_interval": 90,
                    "batch_reorder_probability": 0.3,
                }.items()
            )
        )

    def test_point_roundtrip_and_cache_compat(self):
        from repro.harness.sweep import SweepPoint

        plain = SweepPoint(workload="fir", system="UvmDiscard")
        assert "chaos" not in plain.to_dict()
        chaotic = SweepPoint(
            workload="fir", system="UvmDiscard", chaos=self._chaos_items()
        )
        assert chaotic.to_dict()["chaos"] == dict(self._chaos_items())
        restored = SweepPoint.from_dict(chaotic.to_dict())
        assert restored == chaotic
        assert restored.cache_key() == chaotic.cache_key()
        assert restored.cache_key() != plain.cache_key()
        assert chaotic.label.endswith("+chaos")

    def test_no_uvm_rejects_chaos(self):
        from repro.harness.sweep import SweepPoint

        with pytest.raises(ConfigurationError):
            SweepPoint(
                workload="fir", system="No-UVM", chaos=self._chaos_items()
            )

    def test_bad_chaos_override_rejected(self):
        from repro.harness.sweep import SweepPoint

        with pytest.raises(ConfigurationError):
            SweepPoint(
                workload="fir",
                system="UvmDiscard",
                chaos=(("no_such_knob", 1),),
            )

    def test_chaos_points_share_prefix_with_fault_free(self):
        from repro.harness.sweep import SweepPoint, prefix_key

        chaotic = SweepPoint(
            workload="fir", system="UvmDiscard", chaos=self._chaos_items()
        )
        plain = SweepPoint(workload="fir", system="UvmDiscard")
        assert prefix_key(chaotic) == prefix_key(plain)

    def test_cold_and_forked_chaos_runs_agree(self):
        from repro.harness.sweep import SweepPoint, execute_group, execute_point

        chaotic = SweepPoint(
            workload="fir", system="UvmDiscard", chaos=self._chaos_items()
        )
        plain = SweepPoint(workload="fir", system="UvmDiscard")
        cold = execute_point(chaotic)
        forked, plain_forked = execute_group([chaotic, plain])
        assert cold is not None and forked is not None
        assert cold.to_dict() == forked.to_dict()
        # Chaos observably perturbed the run relative to fault-free.
        assert plain_forked is not None
        assert cold.to_dict() != plain_forked.to_dict()


class TestChaosSuiteAndCli:
    def test_suite_single_workload(self):
        report = run_chaos_suite(seed=1, workloads=["fir"], strict=True)
        assert report.ok
        (result,) = report.results
        assert result.outputs_match
        assert result.trace_reproducible
        assert result.violations == 0
        assert result.injected_actions > 0
        assert result.checks > 0

    def test_suite_unknown_workload(self):
        with pytest.raises(ValueError):
            run_chaos_suite(workloads=["nope"])

    def test_cli_chaos_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "--seed", "1", "--workloads", "fir", "--counters"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "PASS" in captured.out
        assert "fir" in captured.out

    def test_cli_rejects_unknown_workload(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--workloads", "bogus"]) == 2
        assert "bad chaos spec" in capsys.readouterr().err
