"""Golden-trace regression tests.

Two small but representative sweep points — one micro-benchmark (FIR
under 2x oversubscription) and one DL training point (VGG-16) — are
simulated end to end and every number in their
:class:`~repro.harness.results.ExperimentResult` (headline metrics plus
the full counter dictionary) is compared against a snapshot checked in
under ``tests/golden/``.

The simulator is deterministic, so *any* drift in these numbers means a
behavioural change in the driver, the cost model or the workloads.  When
a change is intentional, regenerate the snapshots and commit them::

    PYTHONPATH=src python -m pytest tests/test_golden_trace.py --update-golden

On mismatch the failure lists each divergent key with its golden and
actual value, rather than dumping two opaque JSON blobs.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.harness.sweep import SweepPoint, execute_group, execute_point

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Snapshot name -> the sweep point it pins down.
GOLDEN_POINTS = {
    "fir_discard_200pct": SweepPoint(
        workload="fir", system="UvmDiscard", ratio=2.0, scale=0.01
    ),
    "dl_vgg16_discard_bs8": SweepPoint(
        workload="dl:vgg16", system="UvmDiscard", batch_size=8, scale=0.03125
    ),
    # One golden per UVMBench-style category (PR 9); lazy-discard for
    # the ping-pong workloads so §5.2's prefetch-paired path is pinned.
    "bfs_discard_200pct": SweepPoint(
        workload="bfs", system="UvmDiscard", ratio=2.0, scale=0.03125
    ),
    "kmeans_discard_200pct": SweepPoint(
        workload="kmeans", system="UvmDiscard", ratio=2.0, scale=0.03125
    ),
    "knn_discard_200pct": SweepPoint(
        workload="knn", system="UvmDiscard", ratio=2.0, scale=0.03125
    ),
    "stencil_discardlazy_200pct": SweepPoint(
        workload="stencil", system="UvmDiscardLazy", ratio=2.0, scale=0.03125
    ),
    "reduction_discardlazy_200pct": SweepPoint(
        workload="reduction", system="UvmDiscardLazy", ratio=2.0, scale=0.03125
    ),
}

#: The micro points above (tracing needs a UVM driver; the DL golden is
#: excluded only because its traced run is disproportionately slow).
TRACED_POINTS = sorted(name for name in GOLDEN_POINTS if "dl_" not in name)


def _flatten(result_dict):
    """One flat {key: value} map: counters are inlined as counters.<k>."""
    flat = {}
    for key, value in sorted(result_dict.items()):
        if isinstance(value, dict):
            for sub, subvalue in sorted(value.items()):
                flat[f"{key}.{sub}"] = subvalue
        else:
            flat[key] = value
    return flat


def _diff(golden, actual):
    """Readable per-key drift report between two flattened snapshots."""
    lines = []
    for key in sorted(set(golden) | set(actual)):
        if key not in golden:
            lines.append(f"  {key}: (absent in golden) -> {actual[key]!r}")
        elif key not in actual:
            lines.append(f"  {key}: {golden[key]!r} -> (absent in result)")
        elif golden[key] != actual[key]:
            lines.append(f"  {key}: {golden[key]!r} -> {actual[key]!r}")
    return lines


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_golden_trace(name, update_golden):
    point = GOLDEN_POINTS[name]
    result = execute_point(point)
    assert result is not None, f"{point.label} unexpectedly hit OOM"
    snapshot = {"point": point.to_dict(), "result": result.to_dict()}
    path = GOLDEN_DIR / f"{name}.json"

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {path}")

    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        "'python -m pytest tests/test_golden_trace.py --update-golden'"
    )
    golden = json.loads(path.read_text())
    assert golden["point"] == snapshot["point"], (
        f"{name}: the pinned sweep point itself changed; regenerate the "
        "snapshot with --update-golden if intentional"
    )
    drift = _diff(_flatten(golden["result"]), _flatten(snapshot["result"]))
    assert not drift, (
        f"{name}: simulation drifted from tests/golden/{name}.json "
        "(golden -> actual); if the change is intentional, rerun with "
        "--update-golden and commit the new snapshot:\n" + "\n".join(drift)
    )


@pytest.mark.parametrize("coalesce", [True, False])
@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_golden_trace_invariant_to_coalescing(name, coalesce):
    """Transfer coalescing is a pure wall-clock optimization.

    Every golden point must reproduce its committed snapshot bit-for-bit
    with the fast path forced on *and* with the legacy per-span path —
    same simulated times, same traffic, same counters.  There is no
    --update-golden escape hatch here: if the two modes disagree, the
    coalesced path has a semantics bug, not a stale snapshot.
    """
    point = dataclasses.replace(
        GOLDEN_POINTS[name], driver=(("coalesce_transfers", coalesce),)
    )
    result = execute_point(point)
    assert result is not None, f"{point.label} unexpectedly hit OOM"
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden snapshot {path}"
    golden = json.loads(path.read_text())
    drift = _diff(_flatten(golden["result"]), _flatten(result.to_dict()))
    assert not drift, (
        f"{name}: coalesce_transfers={coalesce} diverges from the "
        "committed snapshot (golden -> actual):\n" + "\n".join(drift)
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_golden_trace_invariant_to_snapshot_forking(name):
    """Shared-prefix snapshot forking is a pure wall-clock optimization.

    Each golden point is run as part of a prefix-sharing group (with a
    sibling under another system, so the snapshot/fork path actually
    engages) and must still reproduce its committed snapshot
    bit-for-bit.  As with the coalescing invariance above there is no
    --update-golden escape hatch: a divergence means the forked
    continuation is not equivalent to a cold run.
    """
    point = GOLDEN_POINTS[name]
    sibling = dataclasses.replace(point, system="UVM-opt")
    assert sibling.system != point.system
    result = execute_group([point, sibling])[0]
    assert result is not None, f"{point.label} unexpectedly hit OOM"
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden snapshot {path}"
    golden = json.loads(path.read_text())
    drift = _diff(_flatten(golden["result"]), _flatten(result.to_dict()))
    assert not drift, (
        f"{name}: snapshot-forked run diverges from the committed "
        "snapshot (golden -> actual):\n" + "\n".join(drift)
    )


@pytest.mark.parametrize("name", TRACED_POINTS)
def test_trace_digest_identity(name):
    """Cold, repeated and snapshot-forked traced runs are byte-identical.

    Every golden micro point is traced three ways — cold, cold again
    (determinism), and with the measured body on a snapshot fork of the
    setup prefix — and all three must produce the same ``trace_digest``.
    There is no --update-golden escape hatch: the digests are compared
    against each other, not a file, so a divergence always means the
    fork/repeat path changed simulation behaviour.
    """
    from repro.harness.tracerun import trace_point

    point = GOLDEN_POINTS[name]
    result_cold, cold = trace_point(point)
    assert result_cold is not None, f"{point.label} unexpectedly hit OOM"
    _, repeat = trace_point(point)
    _, forked = trace_point(point, via_fork=True)
    assert cold.digest() == repeat.digest(), (
        f"{name}: repeated traced run produced a different trace_digest"
    )
    assert cold.digest() == forked.digest(), (
        f"{name}: snapshot-forked traced run produced a different "
        "trace_digest"
    )
