"""Edge-case and fast-path regression tests for the engine kernel.

The optimized engine takes shortcuts — synchronous continuation through
already-processed events, ``try_acquire`` grants that never touch the
heap, recycled :class:`Timeout` objects, lazily formatted log entries.
These tests pin down the semantics the shortcuts must preserve.
"""

from __future__ import annotations

import pytest

from repro.engine.core import Environment, Timeout
from repro.engine.resources import Request, Resource, Store
from repro.errors import SimulationError
from repro.instrument.eventlog import EventLog, LogEntry


class Boom(RuntimeError):
    pass


class TestAllOfFailure:
    def test_child_failure_propagates_to_waiter(self):
        env = Environment()
        seen = {}

        def failing():
            yield env.timeout(1.0)
            raise Boom("child died")

        def healthy():
            yield env.timeout(2.0)
            return "ok"

        def waiter():
            try:
                yield env.all_of([env.process(failing()), env.process(healthy())])
            except Boom as exc:
                seen["error"] = str(exc)
                seen["time"] = env.now

        env.process(waiter())
        env.run()
        assert seen["error"] == "child died"
        # The failure surfaces when the failing child dies, not when the
        # slower sibling would have completed.
        assert seen["time"] == pytest.approx(1.0)

    def test_already_failed_child_rejected(self):
        env = Environment()
        failed = env.event()
        failed.fail(Boom("pre-failed"))

        def waiter():
            with pytest.raises(Boom):
                yield env.all_of([failed, env.timeout(1.0)])

        env.process(waiter())
        env.run()


class TestRequestCancel:
    def test_cancel_while_queued_skips_grant(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        granted = []

        def holder():
            request = resource.request()
            yield request
            yield env.timeout(1.0)
            resource.release(request)

        def cancelling_waiter():
            request = resource.request()
            yield env.timeout(0.5)  # still queued behind the holder
            request.cancel()
            granted.append(("cancelled-fired", request.triggered))

        def patient_waiter():
            request = resource.request()
            yield request
            granted.append(("patient", env.now))
            resource.release(request)

        env.process(holder())
        env.process(cancelling_waiter())
        env.process(patient_waiter())
        env.run()
        # The freed slot bypasses the cancelled request and goes to the
        # next one in FIFO order; the cancelled request never fires.
        assert ("cancelled-fired", False) in granted
        assert ("patient", pytest.approx(1.0)) in granted

    def test_cancel_of_granted_request_rejected(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        request = resource.request()  # granted immediately
        with pytest.raises(SimulationError):
            request.cancel()

    def test_cancel_twice_rejected(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()  # occupies the slot
        queued = resource.request()
        queued.cancel()
        with pytest.raises(SimulationError):
            queued.cancel()


class TestStoreOrdering:
    def test_simultaneous_puts_wake_getters_in_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def getter(name):
            item = yield store.get()
            received.append((name, item, env.now))

        def putter():
            yield env.timeout(1.0)
            # Both puts land at the same timestamp; the oldest blocked
            # getter must receive the oldest item.
            store.put("first")
            store.put("second")

        env.process(getter("g1"))
        env.process(getter("g2"))
        env.process(putter())
        env.run()
        assert received == [
            ("g1", "first", pytest.approx(1.0)),
            ("g2", "second", pytest.approx(1.0)),
        ]

    def test_put_before_get_keeps_fifo(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        out = []

        def drain():
            out.append((yield store.get()))
            out.append((yield store.get()))

        env.process(drain())
        env.run()
        assert out == [1, 2]


class TestTryAcquire:
    def test_grants_when_free_and_yield_is_noop(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def fast():
            request = resource.try_acquire()
            assert isinstance(request, Request)
            yield request  # already processed: resumes without scheduling
            order.append(("held", env.now))
            yield env.timeout(1.0)
            resource.release(request)
            order.append(("released", env.now))

        env.process(fast())
        env.run()
        assert order == [("held", 0.0), ("released", 1.0)]

    def test_returns_none_when_full_or_contended(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        first = resource.try_acquire()
        assert first is not None
        assert resource.try_acquire() is None  # full
        waiter = resource.request()  # queues behind the grant
        resource.release(first)
        # waiter now holds the slot; a queue ever being non-empty must
        # never let try_acquire jump the FIFO.
        assert resource.in_use == 1
        resource.release(waiter)
        assert resource.try_acquire() is not None

    def test_release_of_fast_grant_wakes_queued_waiter(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        woken = []

        def fast():
            request = resource.try_acquire()
            yield env.timeout(1.0)
            resource.release(request)

        def slow():
            request = resource.request()
            yield request
            woken.append(env.now)
            resource.release(request)

        env.process(fast())
        env.process(slow())
        env.run()
        assert woken == [pytest.approx(1.0)]


class TestTimeoutRecycling:
    def test_many_sequential_timeouts_keep_correct_delays(self):
        env = Environment()
        trace = []

        def ticker():
            for i in range(1, 300):
                yield env.timeout(i * 1e-6)
                trace.append(env.now)

        env.process(ticker())
        env.run()
        expected = 0.0
        for i, now in zip(range(1, 300), trace):
            expected += i * 1e-6
            assert now == pytest.approx(expected)

    def test_held_reference_is_not_recycled(self):
        env = Environment()
        kept = {}

        def holder():
            timeout = env.timeout(2.0)
            kept["timeout"] = timeout
            yield timeout
            # Burn through enough further timeouts that a recycled object
            # would have been reinitialized by now.
            for _ in range(50):
                yield env.timeout(0.1)

        env.process(holder())
        env.run()
        assert isinstance(kept["timeout"], Timeout)
        assert kept["timeout"].delay == 2.0


class _Grenade:
    """Formatting sentinel: any stringification is a test failure."""

    def __str__(self):
        raise AssertionError("sentinel was formatted")

    __repr__ = __str__
    __format__ = None  # belt and braces: format() would TypeError


class TestEventLogLaziness:
    def test_disabled_log_never_formats(self):
        log = EventLog(enabled=False)
        log.log(0.0, "evict", "reclaimed block %s", _Grenade())
        assert len(log) == 0

    def test_enabled_log_defers_formatting_until_read(self):
        log = EventLog(enabled=True)
        log.log(0.0, "evict", "reclaimed block %s", _Grenade())
        entry = log.entries()[0]
        assert entry._args  # still raw: nothing interpolated yet
        with pytest.raises(AssertionError, match="sentinel was formatted"):
            _ = entry.message

    def test_interpolation_happens_once_and_caches(self):
        class Counting:
            calls = 0

            def __str__(self):
                Counting.calls += 1
                return "block-7"

        log = EventLog(enabled=True)
        log.log(1.0, "fault", "migrated %s", Counting())
        entry = log.entries()[0]
        assert entry.message == "migrated block-7"
        assert entry.message == "migrated block-7"
        assert Counting.calls == 1

    def test_formatted_entries_compare_and_hash_on_message(self):
        eager = LogEntry(1.0, "fault", "migrated block-7")
        lazy = LogEntry(1.0, "fault", "migrated %s", "block-7")
        assert eager == lazy
        assert hash(eager) == hash(lazy)
        assert "migrated block-7" in str(lazy)

    def test_plain_message_without_args_untouched(self):
        log = EventLog(enabled=True)
        log.log(0.0, "note", "literal 100%% done")
        # No args: the template is the message, %-escapes included.
        assert log.entries()[0].message == "literal 100%% done"
