"""Regression tests for the two properties the methodology rests on.

1. **Determinism** — identical inputs produce bit-identical simulated
   timelines and traffic, across repeated runs.  Every calibrated number
   in EXPERIMENTS.md depends on this.
2. **Scaling invariance** — shrinking the GPU and the workload by the
   same factor preserves the *ratios* the paper's tables report
   (normalized runtime, traffic-reduction fraction), which is what
   licenses running benchmarks at 1/4-1/8 scale.
"""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16
from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload


class TestDeterminism:
    def _fir_once(self):
        workload = FirWorkload(FirConfig().scaled(1 / 32))
        return workload.run(
            System.UVM_DISCARD, 2.0, rtx_3080ti().scaled(1 / 32), pcie_gen4()
        )

    def test_fir_bitwise_repeatable(self):
        a = self._fir_once()
        b = self._fir_once()
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.traffic_gb == b.traffic_gb
        assert a.counters == b.counters

    def test_radix_irregular_repeatable(self):
        """Seeded shuffles make even the 'random' workload deterministic."""

        def once():
            workload = RadixSortWorkload(RadixSortConfig().scaled(1 / 32))
            return workload.run(
                System.UVM_OPT, 2.0, rtx_3080ti().scaled(1 / 32), pcie_gen4()
            )

        a, b = once(), once()
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.traffic_gb == b.traffic_gb

    def test_dl_trainer_repeatable(self):
        def once():
            trainer = DarknetTrainer(
                vgg16().scaled(1 / 32),
                TrainerConfig(batch_size=120),
                System.UVM_DISCARD_LAZY,
            )
            return trainer.run(rtx_3080ti().scaled(1 / 32), pcie_gen4())

        a, b = once(), once()
        assert a.metric == b.metric
        assert a.counters == b.counters


class TestScalingInvariance:
    def _normalized(self, scale, workload_cls, config):
        workload = workload_cls(config.scaled(scale))
        gpu = rtx_3080ti().scaled(scale)
        opt = workload.run(System.UVM_OPT, 2.0, gpu, pcie_gen4())
        discard = workload.run(System.UVM_DISCARD, 2.0, gpu, pcie_gen4())
        return (
            discard.elapsed_seconds / opt.elapsed_seconds,
            1 - discard.traffic_gb / opt.traffic_gb,
        )

    def test_fir_ratios_scale_invariant(self):
        coarse = self._normalized(1 / 8, FirWorkload, FirConfig())
        fine = self._normalized(1 / 32, FirWorkload, FirConfig())
        assert coarse[0] == pytest.approx(fine[0], abs=0.08)
        assert coarse[1] == pytest.approx(fine[1], abs=0.08)

    def test_hashjoin_ratios_scale_invariant(self):
        coarse = self._normalized(1 / 8, HashJoinWorkload, HashJoinConfig())
        fine = self._normalized(1 / 32, HashJoinWorkload, HashJoinConfig())
        assert coarse[0] == pytest.approx(fine[0], abs=0.1)
        assert coarse[1] == pytest.approx(fine[1], abs=0.1)

    def test_traffic_scales_linearly(self):
        """Absolute traffic scales with the factor (ratios aside)."""
        workload_a = FirWorkload(FirConfig().scaled(1 / 8))
        workload_b = FirWorkload(FirConfig().scaled(1 / 16))
        gpu_a = rtx_3080ti().scaled(1 / 8)
        gpu_b = rtx_3080ti().scaled(1 / 16)
        traffic_a = workload_a.run(
            System.UVM_OPT, 2.0, gpu_a, pcie_gen4()
        ).traffic_gb
        traffic_b = workload_b.run(
            System.UVM_OPT, 2.0, gpu_b, pcie_gen4()
        ).traffic_gb
        assert traffic_a == pytest.approx(2 * traffic_b, rel=0.1)
