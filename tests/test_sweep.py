"""Tests for the experiment-sweep subsystem (:mod:`repro.harness.sweep`).

Covers grid expansion, on-disk cache hit/miss behaviour, worker-pool
determinism (``jobs=1`` and ``jobs=4`` must produce byte-identical
reports) and recovery from corrupted cache entries.  The ``slow``-marked
test at the bottom checks the Fig. 5 acceptance criterion: a >= 12 point
DL sweep runs measurably faster with 4 workers and re-runs entirely from
cache.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.harness.results import ExperimentResult
from repro.harness.sweep import (
    DL_BATCH_GRID,
    ResultCache,
    SweepGrid,
    SweepPoint,
    execute_point,
    run_sweep,
)


def fir_points(ratios=(2.0, 3.0), systems=("UVM-opt", "UvmDiscard")):
    """A small, fast micro-benchmark point set."""
    return [
        SweepPoint(workload="fir", system=system, ratio=ratio, scale=0.01)
        for ratio in ratios
        for system in systems
    ]


class TestSweepPoint:
    def test_labels(self):
        micro = SweepPoint(workload="fir", system="UVM-opt", ratio=2.0)
        assert micro.config_label == "200%"
        dl = SweepPoint(workload="dl:vgg16", system="UvmDiscard", batch_size=75)
        assert dl.config_label == "bs=75"
        assert "dl:vgg16/UvmDiscard/gen4/bs=75" in dl.label

    def test_accepts_enum_names_and_values(self):
        by_value = SweepPoint(workload="fir", system="UVM-opt")
        by_name = SweepPoint(workload="fir", system="UVM_OPT")
        assert by_value.system == by_name.system == "UVM-opt"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="nope", system="UVM-opt")
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="fir", system="not-a-system")
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="dl:vgg16", system="UVM-opt")  # no batch
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="fir", system="UVM-opt", batch_size=8)
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="fir", system="UVM-opt", ratio=0.0)
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="fir", system="UVM-opt", link="gen5")
        with pytest.raises(ConfigurationError):
            SweepPoint(workload="fir", system="UVM-opt", scale=-1.0)

    def test_dict_roundtrip(self):
        point = SweepPoint(
            workload="dl:rnn", system="UvmDiscardLazy", link="gen3",
            batch_size=150, scale=0.25, driver={"eviction_policy": "fifo"},
        )
        assert SweepPoint.from_dict(point.to_dict()) == point
        with pytest.raises(ConfigurationError):
            SweepPoint.from_dict({**point.to_dict(), "bogus": 1})

    def test_cache_key_stable_and_content_sensitive(self):
        a = SweepPoint(workload="fir", system="UVM-opt", ratio=2.0)
        b = SweepPoint.from_dict(a.to_dict())
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != a.__class__(
            workload="fir", system="UVM-opt", ratio=3.0
        ).cache_key()
        assert a.cache_key() != a.__class__(
            workload="fir", system="UVM-opt", ratio=2.0, scale=0.25
        ).cache_key()
        assert a.cache_key() != a.__class__(
            workload="fir", system="UVM-opt", ratio=2.0,
            driver={"eviction_policy": "fifo"},
        ).cache_key()


class TestGridExpansion:
    def test_micro_cartesian_product(self):
        grid = SweepGrid(
            workloads=["fir", "radix"],
            systems=["UVM-opt", "UvmDiscard"],
            links=["gen3", "gen4"],
            ratios=[2.0, 3.0, 4.0],
        )
        points = grid.expand()
        assert len(points) == 2 * 2 * 2 * 3
        assert len(set(points)) == len(points)
        # Workload-major ordering is deterministic.
        assert [p.workload for p in points[:12]] == ["fir"] * 12

    def test_dl_uses_paper_grid_by_default(self):
        points = SweepGrid(workloads=["dl:vgg16"], systems=["UVM-opt"]).expand()
        assert [p.batch_size for p in points] == list(DL_BATCH_GRID["vgg16"])

    def test_dl_batch_override_and_mixed_grids(self):
        grid = SweepGrid(
            workloads=["fir", "dl:resnet53"],
            systems=["UVM-opt"],
            ratios=[2.0],
            batch_sizes=[28, 56],
        )
        points = grid.expand()
        assert [p.config_label for p in points] == ["200%", "bs=28", "bs=56"]

    def test_from_json(self):
        grid = SweepGrid.from_json(
            json.dumps(
                {
                    "workloads": ["hashjoin"],
                    "systems": ["UVM-opt", "UvmDiscard"],
                    "ratios": [2.0, 4.0],
                    "scale": 0.05,
                }
            )
        )
        points = grid.expand()
        assert len(points) == 4
        assert all(p.scale == 0.05 for p in points)

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepGrid.from_json("[1, 2]")
        with pytest.raises(ConfigurationError):
            SweepGrid.from_json("{not json")
        with pytest.raises(ConfigurationError):
            SweepGrid.from_json('{"systems": ["UVM-opt"]}')  # no workloads
        with pytest.raises(ConfigurationError):
            SweepGrid.from_json('{"workloads": ["fir"], "bogus": 1}')
        with pytest.raises(ConfigurationError):
            SweepGrid(workloads=[]).expand()


class TestCacheBehaviour:
    def test_second_run_simulates_zero_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = fir_points()
        first = run_sweep(points, cache=cache)
        assert first.simulated == len(points)
        assert first.cached == 0
        second = run_sweep(points, cache=cache)
        assert second.simulated == 0
        assert second.cached == len(points)
        assert second.to_json() == first.to_json()

    def test_input_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(fir_points(ratios=(2.0,)), cache=cache)
        changed = run_sweep(fir_points(ratios=(3.0,)), cache=cache)
        assert changed.simulated == len(changed.points)

    def test_corrupted_entries_are_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = fir_points()
        first = run_sweep(points, cache=cache)
        # Corrupt one entry with non-JSON garbage and another with valid
        # JSON of the wrong shape; leave the remaining two intact.
        cache.path_for(points[0]).write_text("not json at all {{{")
        good = json.loads(cache.path_for(points[1]).read_text())
        good["outcome"] = {"status": "ok", "result": {"bogus": 1}}
        cache.path_for(points[1]).write_text(json.dumps(good))
        second = run_sweep(points, cache=cache)
        assert second.simulated == 2
        assert second.cached == 2
        assert second.to_json() == first.to_json()
        # The corrupted entries were repaired in place.
        third = run_sweep(points, cache=cache)
        assert third.simulated == 0

    def test_oom_outcomes_are_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # No-UVM crashes when the footprint exceeds device memory (§7.5).
        point = SweepPoint(
            workload="dl:vgg16", system="No-UVM", batch_size=150, scale=0.03125
        )
        first = run_sweep([point], cache=cache)
        assert first.results == [None]
        second = run_sweep([point], cache=cache)
        assert second.cached == 1 and second.simulated == 0
        assert second.results == [None]

    def test_no_cache_writes_nothing(self, tmp_path):
        root = tmp_path / "cache"
        run_sweep(fir_points(ratios=(2.0,), systems=("UVM-opt",)))
        assert not root.exists()

    def test_progress_lines(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = fir_points(ratios=(2.0,))
        lines = []
        run_sweep(points, cache=cache, progress=lines.append)
        assert len(lines) == len(points)
        assert all("simulated" in line for line in lines)
        lines.clear()
        run_sweep(points, cache=cache, progress=lines.append)
        assert all("cached" in line for line in lines)


class TestWorkerPool:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_sweep(fir_points(), jobs=0)

    def test_parallel_results_byte_identical_to_serial(self):
        points = fir_points()
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=4)
        assert parallel.to_json() == serial.to_json()
        assert parallel.simulated == len(points)

    def test_parallel_populates_cache_identically(self, tmp_path):
        serial_cache = ResultCache(tmp_path / "serial")
        parallel_cache = ResultCache(tmp_path / "parallel")
        points = fir_points()
        run_sweep(points, jobs=1, cache=serial_cache)
        run_sweep(points, jobs=4, cache=parallel_cache)
        for point in points:
            assert (
                serial_cache.path_for(point).read_text()
                == parallel_cache.path_for(point).read_text()
            )


class TestExecutePoint:
    def test_micro_point_matches_direct_run(self):
        from repro.cuda.device import rtx_3080ti
        from repro.harness.systems import System
        from repro.interconnect import pcie_gen4
        from repro.workloads.fir import FirConfig, FirWorkload

        point = SweepPoint(workload="fir", system="UvmDiscard", ratio=2.0, scale=0.01)
        via_sweep = execute_point(point)
        direct = FirWorkload(FirConfig().scaled(0.01)).run(
            System.UVM_DISCARD, 2.0, rtx_3080ti().scaled(0.01), pcie_gen4()
        )
        assert via_sweep.to_dict() == direct.to_dict()

    def test_driver_override_changes_results(self):
        base = SweepPoint(workload="fir", system="UvmDiscard", ratio=3.0, scale=0.01)
        ablated = SweepPoint(
            workload="fir", system="UvmDiscard", ratio=3.0, scale=0.01,
            driver={"discarded_queue_enabled": False},
        )
        assert execute_point(base).counters != execute_point(ablated).counters

    def test_bad_driver_override_rejected(self):
        point = SweepPoint(
            workload="fir", system="UVM-opt", ratio=2.0, scale=0.01,
            driver={"no_such_knob": 1},
        )
        with pytest.raises(ConfigurationError):
            execute_point(point)


class TestResultSerialization:
    def test_roundtrip(self):
        result = execute_point(fir_points(ratios=(2.0,), systems=("UVM-opt",))[0])
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_corrupt_dicts_rejected(self):
        result = execute_point(fir_points(ratios=(2.0,), systems=("UVM-opt",))[0])
        data = result.to_dict()
        with pytest.raises(ValueError):
            ExperimentResult.from_dict({**data, "bogus": 1})
        with pytest.raises(ValueError):
            ExperimentResult.from_dict({"system": "UVM-opt"})


@pytest.mark.slow
def test_fig5_subgrid_speedup_and_cache_identity(tmp_path):
    """The ISSUE's acceptance sweep: >= 12 Fig. 5 DL points.

    ``--jobs 4`` must beat ``--jobs 1`` on wall clock (loosely, and only
    where a second core exists) and an immediate re-run must serve every
    point from cache with identical values.
    """
    points = [
        SweepPoint(workload="dl:vgg16", system=system, batch_size=batch)
        for batch in (50, 75, 100, 125)
        for system in ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")
    ]
    assert len(points) >= 12

    started = time.monotonic()
    serial = run_sweep(points, jobs=1)
    serial_seconds = time.monotonic() - started

    if (os.cpu_count() or 1) >= 2:
        started = time.monotonic()
        parallel = run_sweep(points, jobs=4)
        parallel_seconds = time.monotonic() - started
        assert parallel.to_json() == serial.to_json()
        # Loose: half the ideal 4x, and only demanded when cores exist.
        assert parallel_seconds < serial_seconds * 0.9, (
            f"jobs=4 took {parallel_seconds:.2f}s vs "
            f"jobs=1 {serial_seconds:.2f}s"
        )

    cache = ResultCache(tmp_path / "cache")
    first = run_sweep(points, jobs=4, cache=cache)
    assert first.simulated == len(points)
    again = run_sweep(points, jobs=4, cache=cache)
    assert again.simulated == 0
    assert again.cached == len(points)
    assert again.to_json() == first.to_json()


class TestCacheConcurrency:
    """The cache must be safe under concurrent readers/writers (the
    experiment server hammers one root from threads *and* processes).

    Regression: ``put`` used a pid-only temp name, so two threads in one
    process could interleave bytes in a single staging file and publish
    a torn JSON entry."""

    @staticmethod
    def _outcomes(point):
        """Two distinct but individually valid outcomes for one key."""
        ok = {"status": "ok", "result": execute_point(point).to_dict()}
        return ok, {"status": "oom"}

    def test_thread_hammer_never_observes_partial_writes(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path / "cache")
        point = fir_points(ratios=(2.0,), systems=("UvmDiscard",))[0]
        variants = self._outcomes(point)
        canonical = {json.dumps(v, sort_keys=True) for v in variants}
        cache.put(point, variants[0])
        torn = []

        def writer(variant):
            for _ in range(60):
                cache.put(point, variant)

        def reader():
            for _ in range(120):
                seen = cache.get(point)
                if seen is None or json.dumps(seen, sort_keys=True) not in canonical:
                    torn.append(seen)

        threads = [
            threading.Thread(target=writer, args=(variants[i % 2],))
            for i in range(4)
        ] + [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not torn, f"readers observed torn/corrupt entries: {torn[:3]}"
        final = cache.get(point)
        assert json.dumps(final, sort_keys=True) in canonical
        # No staging litter left behind.
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if ".tmp" in p.name
        ]
        assert not leftovers

    def test_process_hammer_never_observes_partial_writes(self, tmp_path):
        import multiprocessing

        cache = ResultCache(tmp_path / "cache")
        point = fir_points(ratios=(2.0,), systems=("UvmDiscard",))[0]
        variants = self._outcomes(point)
        canonical = {json.dumps(v, sort_keys=True) for v in variants}
        cache.put(point, variants[0])
        context = multiprocessing.get_context("fork")
        failures = context.Queue()

        def hammer(variant):
            for _ in range(40):
                cache.put(point, variant)
                seen = cache.get(point)
                if seen is None or json.dumps(seen, sort_keys=True) not in canonical:
                    failures.put(seen)

        workers = [
            context.Process(target=hammer, args=(variants[i % 2],))
            for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert failures.empty()
        final = cache.get(point)
        assert json.dumps(final, sort_keys=True) in canonical
