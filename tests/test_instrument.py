"""Tests for the instrumentation: traffic recorder, RMT classifier,
counters and the event log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.instrument import (
    Counters,
    EventLog,
    RmtClassifier,
    TrafficRecorder,
    TransferReason,
)
from repro.interconnect import TransferDirection

H2D = TransferDirection.HOST_TO_DEVICE
D2H = TransferDirection.DEVICE_TO_HOST


class TestTrafficRecorder:
    def test_per_direction_totals(self):
        traffic = TrafficRecorder()
        traffic.record(0.0, H2D, 100, TransferReason.PREFETCH)
        traffic.record(1.0, D2H, 40, TransferReason.EVICTION)
        traffic.record(2.0, H2D, 60, TransferReason.FAULT_MIGRATION)
        assert traffic.bytes_h2d == 160
        assert traffic.bytes_d2h == 40
        assert traffic.total_bytes == 200
        assert traffic.transfer_count == 3

    def test_per_reason_totals(self):
        traffic = TrafficRecorder()
        traffic.record(0.0, H2D, 100, TransferReason.PREFETCH)
        traffic.record(0.0, H2D, 50, TransferReason.PREFETCH)
        assert traffic.bytes_for(TransferReason.PREFETCH) == 150
        assert traffic.bytes_for(TransferReason.EVICTION) == 0
        assert traffic.breakdown() == {"prefetch": 150e-9}

    def test_records_retained_only_when_asked(self):
        silent = TrafficRecorder(keep_records=False)
        silent.record(0.0, H2D, 1, TransferReason.MEMCPY)
        assert silent.records == []
        verbose = TrafficRecorder(keep_records=True)
        record = verbose.record(0.5, D2H, 7, TransferReason.SWAP, 3, 1)
        assert verbose.records == [record]
        assert record.first_block == 3

    def test_total_gb_decimal(self):
        traffic = TrafficRecorder()
        traffic.record(0.0, H2D, 2_500_000_000, TransferReason.PREFETCH)
        assert traffic.total_gb == pytest.approx(2.5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TrafficRecorder().record(0.0, H2D, -1, TransferReason.MEMCPY)

    def test_reset(self):
        traffic = TrafficRecorder(keep_records=True)
        traffic.record(0.0, H2D, 10, TransferReason.MEMCPY)
        traffic.reset()
        assert traffic.total_bytes == 0
        assert traffic.transfer_count == 0
        assert traffic.records == []


class TestRmtClassifier:
    def _transfer(self, rmt, block, nbytes=100):
        rmt.on_transfer(block, nbytes, H2D, TransferReason.FAULT_MIGRATION)

    def test_read_resolves_useful(self):
        rmt = RmtClassifier()
        self._transfer(rmt, 1)
        rmt.on_read(1)
        assert rmt.useful_bytes == 100
        assert rmt.redundant_bytes == 0

    def test_overwrite_resolves_redundant(self):
        """§3.1: transferred then overwritten before read = redundant."""
        rmt = RmtClassifier()
        self._transfer(rmt, 1)
        rmt.on_overwrite(1)
        assert rmt.redundant_bytes == 100
        assert rmt.useful_bytes == 0

    def test_discard_resolves_redundant(self):
        rmt = RmtClassifier()
        self._transfer(rmt, 1)
        rmt.on_discard(1)
        assert rmt.redundant_bytes == 100

    def test_chain_resolved_together(self):
        """An evict + re-migrate chain resolves as one unit."""
        rmt = RmtClassifier()
        rmt.on_transfer(1, 100, D2H, TransferReason.EVICTION)
        rmt.on_transfer(1, 100, H2D, TransferReason.FAULT_MIGRATION)
        rmt.on_overwrite(1)
        assert rmt.redundant_bytes == 200

    def test_read_then_new_transfer_independent(self):
        rmt = RmtClassifier()
        self._transfer(rmt, 1)
        rmt.on_read(1)
        self._transfer(rmt, 1, nbytes=50)
        rmt.on_discard(1)
        assert rmt.useful_bytes == 100
        assert rmt.redundant_bytes == 50

    def test_finalize_marks_pending_redundant(self):
        rmt = RmtClassifier()
        self._transfer(rmt, 1)
        self._transfer(rmt, 2)
        rmt.finalize()
        assert rmt.redundant_bytes == 200
        rmt.finalize()  # idempotent
        assert rmt.redundant_bytes == 200

    def test_events_for_untracked_blocks_ignored(self):
        rmt = RmtClassifier()
        rmt.on_read(99)
        rmt.on_overwrite(98)
        rmt.on_discard(97)
        assert rmt.classified_bytes == 0

    def test_redundant_fraction(self):
        rmt = RmtClassifier()
        assert rmt.redundant_fraction == 0.0
        self._transfer(rmt, 1)
        rmt.on_read(1)
        self._transfer(rmt, 2)
        rmt.on_discard(2)
        assert rmt.redundant_fraction == pytest.approx(0.5)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.sampled_from(["transfer", "read", "overwrite", "discard"]),
            ),
            max_size=100,
        )
    )
    def test_conservation(self, events):
        """useful + redundant + pending == everything ever transferred."""
        rmt = RmtClassifier()
        transferred = 0
        for block, action in events:
            if action == "transfer":
                rmt.on_transfer(block, 10, H2D, TransferReason.PREFETCH)
                transferred += 10
            elif action == "read":
                rmt.on_read(block)
            elif action == "overwrite":
                rmt.on_overwrite(block)
            else:
                rmt.on_discard(block)
        rmt.finalize()
        assert rmt.useful_bytes + rmt.redundant_bytes == transferred


class TestCounters:
    def test_bump_and_read(self):
        counters = Counters()
        counters.bump("x")
        counters.bump("x", 4)
        assert counters["x"] == 5
        assert counters["missing"] == 0
        assert "x" in counters
        assert "missing" not in counters

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counters().bump("x", -1)

    def test_items_sorted_and_as_dict(self):
        counters = Counters()
        counters.bump("b")
        counters.bump("a", 2)
        assert list(counters.items()) == [("a", 2), ("b", 1)]
        assert counters.as_dict() == {"a": 2, "b": 1}

    def test_reset(self):
        counters = Counters()
        counters.bump("x")
        counters.reset()
        assert counters["x"] == 0


class TestEventLog:
    def test_disabled_by_default(self):
        log = EventLog()
        log.log(0.0, "evict", "msg")
        assert len(log) == 0

    def test_enabled_records(self):
        log = EventLog(enabled=True)
        log.log(1.0, "evict", "one")
        log.log(2.0, "zero", "two")
        assert len(log) == 2
        assert [e.category for e in log] == ["evict", "zero"]
        assert log.entries("zero")[0].message == "two"

    def test_bounded_capacity(self):
        log = EventLog(capacity=3, enabled=True)
        for i in range(10):
            log.log(float(i), "c", str(i))
        assert [e.message for e in log] == ["7", "8", "9"]

    def test_truncation_reports_dropped_count(self):
        log = EventLog(capacity=4, enabled=True)
        assert log.capacity == 4
        for i in range(4):
            log.log(float(i), "c", str(i))
        assert log.dropped == 0
        for i in range(4, 11):
            log.log(float(i), "c", str(i))
        assert log.dropped == 7
        assert len(log) == 4

    def test_unbounded_never_drops(self):
        log = EventLog(capacity=None, enabled=True)
        for i in range(10_001):
            log.log(float(i), "c", "m")
        assert log.dropped == 0
        assert len(log) == 10_001

    def test_disabled_logging_does_not_drop(self):
        log = EventLog(capacity=1, enabled=False)
        for i in range(5):
            log.log(float(i), "c", "m")
        assert log.dropped == 0
        assert len(log) == 0

    def test_clear(self):
        log = EventLog(enabled=True)
        log.log(0.0, "c", "m")
        log.clear()
        assert len(log) == 0

    def test_clear_resets_dropped(self):
        log = EventLog(capacity=1, enabled=True)
        log.log(0.0, "c", "a")
        log.log(1.0, "c", "b")
        assert log.dropped == 1
        log.clear()
        assert log.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_str_rendering(self):
        log = EventLog(enabled=True)
        log.log(1e-6, "evict", "reclaimed")
        assert "evict" in str(log.entries()[0])
