"""Tests for the DL layer math and the four network specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.units import GB
from repro.workloads.dl.layers import (
    DTYPE_BYTES,
    conv_layer,
    fc_layer,
    pool_layer,
    rnn_layer,
)
from repro.workloads.dl.networks import (
    darknet19,
    resnet53,
    rnn_shakespeare,
    vgg16,
)

#: The paper's reported total CUDA allocations (§7.5).
PAPER_TOTALS = {
    "VGG-16": ((75, 12.0), (150, 21.1)),
    "Darknet-19": ((171, 11.2), (360, 23.4)),
    "ResNet-53": ((56, 10.8), (150, 28.5)),
    "RNN": ((150, 10.2), (300, 20.0)),
}

ALL_NETWORKS = (vgg16, darknet19, resnet53, rnn_shakespeare)


class TestLayerMath:
    def test_conv_output_shape(self):
        layer = conv_layer("c", 3, 64, 3, 224)
        assert layer.output_bytes_per_sample == 64 * 224 * 224 * DTYPE_BYTES

    def test_conv_strided_shrinks_output(self):
        layer = conv_layer("c", 64, 128, 3, 224, stride=2)
        assert layer.output_bytes_per_sample == 128 * 112 * 112 * DTYPE_BYTES

    def test_conv_weights(self):
        layer = conv_layer("c", 3, 64, 3, 224)
        assert layer.weight_bytes == (3 * 3 * 3 * 64 + 64) * DTYPE_BYTES

    def test_conv_backward_costs_twice_forward(self):
        layer = conv_layer("c", 16, 32, 3, 56)
        assert layer.bwd_flops_per_sample == pytest.approx(
            2 * layer.fwd_flops_per_sample
        )

    def test_conv_stride_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            conv_layer("c", 3, 8, 3, 225, stride=2)

    def test_pool_halves_spatial(self):
        layer = pool_layer("p", 64, 112)
        assert layer.output_bytes_per_sample == 64 * 56 * 56 * DTYPE_BYTES
        assert layer.weight_bytes == 0

    def test_fc_sizes(self):
        layer = fc_layer("fc", 4096, 1000)
        assert layer.weight_bytes == (4096 * 1000 + 1000) * DTYPE_BYTES
        assert layer.output_bytes_per_sample == 1000 * DTYPE_BYTES

    def test_rnn_flops_per_byte_high(self):
        """The compute-intensity that makes RNN the paper's outlier."""
        recurrent = rnn_layer("r", 1024, 128)
        convolution = conv_layer("c", 64, 64, 3, 112)
        rnn_intensity = recurrent.fwd_flops_per_sample / recurrent.output_bytes_per_sample
        conv_intensity = convolution.fwd_flops_per_sample / convolution.output_bytes_per_sample
        assert rnn_intensity > 2 * conv_intensity


class TestNetworkFootprints:
    @pytest.mark.parametrize("factory", ALL_NETWORKS)
    def test_totals_match_paper(self, factory):
        """§7.5's reported allocations, within 5%."""
        network = factory()
        for batch, expected_gb in PAPER_TOTALS[network.name]:
            total = network.total_bytes(batch) / GB
            assert total == pytest.approx(expected_gb, rel=0.05), (
                network.name,
                batch,
            )

    @pytest.mark.parametrize("factory", ALL_NETWORKS)
    def test_total_monotone_in_batch(self, factory):
        network = factory()
        totals = [network.total_bytes(b) for b in (1, 8, 64, 256)]
        assert totals == sorted(totals)

    @pytest.mark.parametrize("factory", ALL_NETWORKS)
    def test_scaled_shrinks_proportionally(self, factory):
        network = factory()
        half = network.scaled(0.5)
        assert half.total_bytes(64) == pytest.approx(
            network.total_bytes(64) / 2, rel=0.02
        )
        full_fwd, _ = network.flops_per_sample()
        half_fwd, _ = half.flops_per_sample()
        assert half_fwd == pytest.approx(full_fwd / 2, rel=0.02)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            vgg16().scaled(0)

    def test_vgg16_has_16_weight_layers(self):
        weighted = [l for l in vgg16().layers if l.weight_bytes > 0]
        assert len(weighted) == 16

    def test_vgg16_weights_are_138m_params(self):
        assert vgg16().weight_bytes / DTYPE_BYTES == pytest.approx(138e6, rel=0.02)

    def test_resnet53_has_53_conv_layers(self):
        convs = [
            l
            for l in resnet53().layers
            if l.weight_bytes > 0 and "classifier" not in l.name
        ]
        assert len(convs) == 52  # + the classifier = 53 weighted layers

    def test_darknet19_has_19_conv_layers(self):
        convs = [
            l
            for l in darknet19().layers
            if l.weight_bytes > 0 and "classifier" not in l.name
        ]
        assert len(convs) == 18  # + the classifier = 19 weighted layers

    def test_rnn_workspace_small(self):
        network = rnn_shakespeare()
        assert network.workspace_bytes(300) < network.gradients_bytes(300)

    def test_gradients_buffer_sized_for_largest_output(self):
        network = vgg16()
        largest = max(l.output_bytes_per_sample for l in network.layers)
        assert network.gradients_bytes(10) == int(
            largest * 10 * network.activation_multiplier
        )

    def test_compute_intensity_ordering(self):
        """RNN is compute-intensive; the CNNs are memory-intensive (§7.5.2)."""

        def intensity(network):
            fwd, bwd = network.flops_per_sample()
            return (fwd + bwd) / network.per_sample_bytes

        assert intensity(rnn_shakespeare()) > 2 * intensity(resnet53())
        assert intensity(rnn_shakespeare()) > 2 * intensity(darknet19())
