"""Tests for the gradient-checkpointing trainer ([41] comparison)."""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.errors import ConfigurationError
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, rnn_shakespeare, vgg16
from repro.workloads.dl.checkpoint import CheckpointTrainer

SCALE = 1 / 32
NETWORK = vgg16().scaled(SCALE)
#: Uniform per-layer activations: the architecture checkpointing suits.
UNIFORM = rnn_shakespeare().scaled(SCALE)
GPU = rtx_3080ti().scaled(SCALE)


def run_checkpoint(batch, segment=4, discard_mode="eager"):
    trainer = CheckpointTrainer(
        NETWORK, TrainerConfig(batch_size=batch), segment=segment,
        discard_mode=discard_mode,
    )
    return trainer, trainer.run(GPU, pcie_gen4())


class TestConfiguration:
    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointTrainer(NETWORK, TrainerConfig(batch_size=8), segment=1)

    def test_footprint_smaller_than_full_storage(self):
        trainer = CheckpointTrainer(
            UNIFORM, TrainerConfig(batch_size=300), segment=5
        )
        assert trainer.app_bytes < 0.7 * UNIFORM.total_bytes(300)


class TestBehaviour:
    def test_runs_and_recomputes(self):
        trainer, result = run_checkpoint(batch=60)
        assert result.metric > 0
        # Recomputation: clearly more kernel launches than the plain
        # trainer's 3 per layer (fwd + bwd + update).
        assert result.counters.get("discarded_blocks", 0) > 0

    def test_slower_than_plain_when_memory_ample(self):
        """When everything fits, recomputation is pure overhead."""
        _, checkpointed = run_checkpoint(batch=30)
        plain = DarknetTrainer(
            NETWORK, TrainerConfig(batch_size=30), System.UVM_DISCARD
        ).run(GPU, pcie_gen4())
        assert checkpointed.metric < plain.metric

    def test_moves_less_data_when_memory_tight(self):
        """The [41] trade: less live data, so fewer required transfers —
        at the price of recompute."""
        batch = 170  # well past the crossover at this scale
        _, checkpointed = run_checkpoint(batch=batch)
        plain = DarknetTrainer(
            NETWORK, TrainerConfig(batch_size=batch), System.UVM_DISCARD
        ).run(GPU, pcie_gen4())
        assert checkpointed.traffic_gb < plain.traffic_gb

    def test_no_corruption_either_mode(self):
        for mode in ("eager", "lazy"):
            trainer, result = run_checkpoint(batch=100, discard_mode=mode)
            assert result.counters.get("lazy_misuses", 0) == 0

    def test_front_heavy_networks_gain_little(self):
        """A real architectural property: VGG's first conv layers hold
        most of the activation bytes, so any checkpoint scheme that keeps
        layer 0 plus a live first segment saves almost nothing — while
        the uniform RNN saves a lot."""
        vgg_trainer = CheckpointTrainer(
            NETWORK, TrainerConfig(batch_size=64), segment=4
        )
        rnn_trainer = CheckpointTrainer(
            UNIFORM, TrainerConfig(batch_size=300), segment=5
        )
        vgg_saving = 1 - vgg_trainer.app_bytes / NETWORK.total_bytes(64)
        rnn_saving = 1 - rnn_trainer.app_bytes / UNIFORM.total_bytes(300)
        assert rnn_saving > vgg_saving + 0.2
