"""Fast-model acceptance: tolerance, cache non-aliasing, speedup.

- At calibration anchors the analytical model must reproduce the
  simulator's result exactly (it *is* the recorded run).
- Between anchors, predictions for every fig5 DL workload and multiple
  micro oversubscription ratios must stay inside the model's declared
  per-field tolerance, checked differentially against fresh simulator
  runs.
- Fast and exact results must never alias each other in the sweep
  cache, in either direction: ``mode`` is part of the serialized point
  and hence of the content-addressed key.
- A fast answer must beat a cached-cold simulation by >= 100x.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.errors import ConfigurationError
from repro.fastmodel import (
    FastModel,
    UncalibratedPointError,
    default_model,
)
from repro.fastmodel.validate import default_probe_points, validate
from repro.harness.sweep import (
    DL_BATCH_GRID,
    ResultCache,
    SweepPoint,
    execute_point,
    prefix_key,
    run_sweep,
)


def _fast(point: SweepPoint) -> SweepPoint:
    return dataclasses.replace(point, mode="fast")


# ---------------------------------------------------------------------------
# prediction accuracy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("network", sorted(DL_BATCH_GRID))
def test_anchor_prediction_is_exact_for_every_fig5_workload(network):
    """At an anchor batch size the fast answer is the simulator's,
    bit-for-bit, for each fig5 network."""
    batch = DL_BATCH_GRID[network][0]
    point = SweepPoint(
        workload=f"dl:{network}", system="UvmDiscard", batch_size=batch
    )
    exact = execute_point(point)
    fast = execute_point(_fast(point))
    assert exact is not None and fast is not None
    assert fast.to_dict() == exact.to_dict()


def test_anchor_prediction_is_exact_at_multiple_ratios():
    """Micro anchors at two oversubscription ratios reproduce exactly."""
    for ratio in (2.0, 4.0):
        point = SweepPoint(workload="radix", system="UvmDiscard", ratio=ratio)
        exact = execute_point(point)
        fast = execute_point(_fast(point))
        assert fast.to_dict() == exact.to_dict()


@pytest.mark.slow
def test_interpolated_predictions_within_declared_tolerance():
    """The full differential probe set — every fig5 workload plus the
    micro workloads at off-anchor oversubscription ratios — stays
    inside the model's declared tolerance."""
    report = validate(default_model(), default_probe_points(), jobs=2)
    assert report.ok, report.summary() + "".join(
        f"\n{d}" for d in report.failures
    ) + "".join(f"\n{m}" for m in report.oom_mismatches)


def test_interpolated_prediction_smoke():
    """One off-anchor DL batch and one off-anchor ratio, checked
    differentially (the fast tier-1 stand-in for the slow full sweep)."""
    model = default_model()
    probes = [
        SweepPoint(workload="dl:vgg16", system="UvmDiscard", batch_size=60),
        SweepPoint(workload="fir", system="UvmDiscardLazy", ratio=2.25),
        SweepPoint(workload="fir", system="UvmDiscardLazy", ratio=3.75),
    ]
    report = validate(model, probes)
    assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# mode plumbing and validation
# ---------------------------------------------------------------------------


def test_mode_is_validated():
    with pytest.raises(ConfigurationError, match="mode"):
        SweepPoint(workload="fir", system="UvmDiscard", mode="wrong")


def test_chaos_rejects_fast_mode():
    with pytest.raises(ConfigurationError, match="chaos"):
        SweepPoint(
            workload="fir",
            system="UvmDiscard",
            mode="fast",
            chaos=(("transfer_fault_interval", 10),),
        )


def test_uncalibrated_point_raises_with_guidance():
    point = SweepPoint(
        workload="fir", system="UvmDiscard", scale=0.017, mode="fast"
    )
    with pytest.raises(UncalibratedPointError, match="calibrate"):
        execute_point(point)


def test_out_of_range_axis_refuses_to_extrapolate():
    point = SweepPoint(
        workload="fir", system="UvmDiscard", ratio=9.5, mode="fast"
    )
    with pytest.raises(UncalibratedPointError, match="outside"):
        execute_point(point)


def test_serialization_round_trips_mode():
    exact = SweepPoint(workload="fir", system="UvmDiscard")
    fast = _fast(exact)
    assert "mode" not in exact.to_dict()  # legacy keys unchanged
    assert fast.to_dict()["mode"] == "fast"
    assert SweepPoint.from_dict(fast.to_dict()) == fast
    assert fast.label.endswith("+fast")
    assert prefix_key(fast) is None  # never grouped into a sim prefix


def test_fast_model_calibration_round_trips(tmp_path):
    model = default_model()
    path = tmp_path / "calibration.json"
    model.save(path)
    clone = FastModel.load(path)
    assert clone.to_json() == model.to_json()
    point = SweepPoint(
        workload="dl:rnn", system="UVM-opt", batch_size=150, mode="fast"
    )
    assert clone.predict(point).to_dict() == model.predict(point).to_dict()


# ---------------------------------------------------------------------------
# cache non-aliasing (both directions)
# ---------------------------------------------------------------------------


def test_fast_and_exact_cache_keys_are_disjoint():
    exact = SweepPoint(workload="fir", system="UvmDiscard", ratio=2.0)
    assert _fast(exact).cache_key() != exact.cache_key()


def test_exact_cache_entry_never_serves_fast_point(tmp_path):
    cache = ResultCache(tmp_path)
    exact = SweepPoint(workload="fir", system="UvmDiscard", ratio=2.0)
    cache.put(exact, {"status": "oom"})
    assert cache.get(exact) == {"status": "oom"}
    assert cache.get(_fast(exact)) is None


def test_fast_cache_entry_never_serves_exact_point(tmp_path):
    cache = ResultCache(tmp_path)
    fast = _fast(SweepPoint(workload="fir", system="UvmDiscard", ratio=2.0))
    cache.put(fast, {"status": "oom"})
    assert cache.get(fast) == {"status": "oom"}
    assert cache.get(dataclasses.replace(fast, mode="exact")) is None


def test_sweep_cache_separation_end_to_end(tmp_path):
    """A fast sweep warms only the fast namespace: the exact sweep over
    the same grid still simulates, and vice versa."""
    cache = ResultCache(tmp_path)
    exact_points = [
        SweepPoint(workload="fir", system="UvmDiscard", ratio=r)
        for r in (2.0, 3.0)
    ]
    fast_points = [_fast(p) for p in exact_points]

    first = run_sweep(fast_points, cache=cache)
    assert first.provenance == ["run", "run"]
    again = run_sweep(fast_points, cache=cache)
    assert again.provenance == ["cache", "cache"]

    exact = run_sweep(exact_points, cache=cache)
    assert exact.provenance == ["run", "run"]  # no aliasing fast -> exact
    warm = run_sweep(exact_points, cache=cache)
    assert warm.provenance == ["cache", "cache"]

    # Anchored fast predictions equal the exact runs, via disjoint keys.
    for fast_result, exact_result in zip(again.results, warm.results):
        assert fast_result.to_dict() == exact_result.to_dict()


# ---------------------------------------------------------------------------
# speed
# ---------------------------------------------------------------------------


def test_fast_model_beats_cold_simulation_100x():
    """One cached-cold sweep point: the analytical answer must be at
    least 100x faster than the discrete-event simulation."""
    point = SweepPoint(workload="dl:vgg16", system="UvmDiscard", batch_size=125)
    default_model()  # load once; the model is process-wide state

    started = time.perf_counter()
    exact = execute_point(point)
    exact_seconds = time.perf_counter() - started
    assert exact is not None

    fast_point = _fast(point)
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        fast = execute_point(fast_point)
        best = min(best, time.perf_counter() - started)
    assert fast is not None
    assert exact_seconds / best >= 100, (
        f"fast model only {exact_seconds / best:.0f}x faster "
        f"({exact_seconds:.4f}s vs {best * 1e6:.0f}us)"
    )
