"""Tests for the simulation-as-a-service stack (:mod:`repro.serve`).

Four layers, bottom up:

- unit — :class:`~repro.engine.snapshot.SnapshotPool` admit/fork/evict
  accounting, token-bucket rate limiting, latency-histogram quantiles,
- worker — :func:`~repro.serve.worker.execute_point_pooled` must return
  byte-identical outcomes warm (fork), cold and unpooled, including OOM
  and chaos points,
- server — a real asyncio server on an ephemeral port, driven by the
  sync client from worker threads: dedup (disk cache + in-flight
  coalescing), backpressure 429s, per-client rate-limit 429s, the
  ``/sweep``/``/status`` job flow, malformed-request errors, metrics,
  and graceful drain,
- determinism — every served outcome equals a local
  :func:`~repro.harness.sweep.execute_point` run byte-for-byte (that
  function is exactly what ``python -m repro run`` executes).

The heavier concurrent-load battery lives in
``benchmarks/perf/test_serve_load.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.engine.core import Environment
from repro.engine.snapshot import EngineSnapshot, SnapshotPool
from repro.harness.sweep import (
    ResultCache,
    SweepPoint,
    _outcome_to_dict,
    execute_point,
    prefix_key,
)
from repro.instrument.metrics import Histogram
from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import RateLimited, RateLimiter, TokenBucket
from repro.serve.server import ExperimentServer, ServeConfig
from repro.serve.worker import execute_point_pooled

SCALE = 0.03125


def fir_point(system="UvmDiscard", ratio=2.0, **kwargs):
    return SweepPoint(
        workload="fir", system=system, ratio=ratio, scale=SCALE, **kwargs
    )


def canonical(outcome):
    return json.dumps(outcome, sort_keys=True)


# ----------------------------------------------------------------------
# snapshot pool
# ----------------------------------------------------------------------


class _Payload:
    """A tiny quiescent stand-in for a runtime (deep-copyable)."""

    def __init__(self, tag):
        self.tag = tag

    def snapshot_precheck(self):
        pass


class TestSnapshotPool:
    def test_admit_fork_and_lru_eviction(self):
        pool = SnapshotPool(max_bytes=100)
        assert pool.admit(("a",), _Payload("a"), nbytes=40)
        assert pool.admit(("b",), _Payload("b"), nbytes=40)
        assert pool.fork(("a",)).tag == "a"  # touches a: b becomes LRU
        assert pool.admit(("c",), _Payload("c"), nbytes=40)  # evicts b
        assert pool.fork(("b",)) is None
        assert pool.fork(("a",)).tag == "a"
        assert pool.fork(("c",)).tag == "c"
        stats = pool.stats()
        assert stats["evicted"] == 1
        assert stats["entries"] == 2
        assert stats["bytes"] == 80 <= pool.max_bytes

    def test_forks_are_independent_copies(self):
        pool = SnapshotPool(max_bytes=100)
        pool.admit(("k",), _Payload("orig"), nbytes=10)
        first, second = pool.fork(("k",)), pool.fork(("k",))
        first.tag = "mutated"
        assert second.tag == "orig"
        assert pool.fork(("k",)).tag == "orig"

    def test_oversize_entry_is_refused(self):
        pool = SnapshotPool(max_bytes=10)
        assert not pool.admit(("big",), _Payload("big"), nbytes=11)
        assert pool.stats()["rejected_oversize"] == 1
        assert len(pool) == 0

    def test_live_simulation_is_refused_not_raised(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        pool = SnapshotPool(max_bytes=1 << 20)
        assert not pool.admit(("live",), env)
        assert pool.stats()["rejected_live"] == 1
        assert pool.fork(("live",)) is None

    def test_readmit_replaces_and_reaccounts(self):
        pool = SnapshotPool(max_bytes=100)
        pool.admit(("k",), _Payload("v1"), nbytes=60)
        pool.admit(("k",), _Payload("v2"), nbytes=30)
        assert pool.nbytes == 30
        assert pool.fork(("k",)).tag == "v2"

    def test_explicit_evict_and_clear(self):
        pool = SnapshotPool(max_bytes=100)
        pool.admit(("k",), _Payload("k"), nbytes=10)
        assert pool.evict(("k",))
        assert not pool.evict(("k",))
        pool.admit(("j",), _Payload("j"), nbytes=10)
        pool.clear()
        assert len(pool) == 0 and pool.nbytes == 0

    def test_accepts_prebuilt_snapshot_and_estimates_bytes(self):
        pool = SnapshotPool(max_bytes=1 << 20)
        snapshot = EngineSnapshot(_Payload("x"))
        assert pool.admit(("k",), snapshot)
        assert 0 < pool.nbytes <= pool.max_bytes

    def test_zero_budget_pool_admits_nothing(self):
        pool = SnapshotPool(max_bytes=0)
        assert not pool.admit(("k",), _Payload("k"), nbytes=1)


# ----------------------------------------------------------------------
# rate limiting and latency quantiles
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: clock[0])
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        retry = bucket.try_take()
        assert retry == pytest.approx(0.5)
        clock[0] += 0.5
        assert bucket.try_take() is None

    def test_limiter_is_per_client(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        limiter.check("alice")
        with pytest.raises(RateLimited):
            limiter.check("alice")
        limiter.check("bob")  # separate bucket

    def test_disabled_limiter_never_fires(self):
        limiter = RateLimiter(rate=0.0, burst=1)
        for _ in range(100):
            limiter.check("anyone")


class TestHistogramQuantile:
    def test_quantiles_bracket_observations(self):
        histogram = Histogram("latency", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.02, 0.05, 0.5, 0.9):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(0.005)
        assert histogram.quantile(1.0) == pytest.approx(0.9)
        assert 0.005 <= histogram.quantile(0.5) <= 0.9
        assert histogram.quantile(0.5) <= histogram.quantile(0.99)

    def test_empty_and_bad_inputs(self):
        histogram = Histogram("empty", bounds=(1.0,))
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


# ----------------------------------------------------------------------
# pooled worker execution
# ----------------------------------------------------------------------


class TestExecutePointPooled:
    def test_cold_then_fork_byte_identical_to_execute_point(self):
        pool = SnapshotPool(max_bytes=1 << 30)
        point = fir_point()
        reference = canonical(_outcome_to_dict(execute_point(point)))
        cold, cold_source = execute_point_pooled(point, pool)
        warm, warm_source = execute_point_pooled(point, pool)
        assert (cold_source, warm_source) == ("cold", "fork")
        assert canonical(cold) == reference
        assert canonical(warm) == reference

    def test_sibling_point_forks_shared_prefix(self):
        pool = SnapshotPool(max_bytes=1 << 30)
        first = fir_point(system="UVM-opt", ratio=1.5)
        sibling = fir_point(system="UvmDiscard", ratio=3.0)
        assert prefix_key(first) == prefix_key(sibling)
        _, source_first = execute_point_pooled(first, pool)
        outcome, source_sibling = execute_point_pooled(sibling, pool)
        assert (source_first, source_sibling) == ("cold", "fork")
        assert canonical(outcome) == canonical(
            _outcome_to_dict(execute_point(sibling))
        )

    def test_unpooled_paths(self):
        point = fir_point()
        outcome, source = execute_point_pooled(point, None)
        assert source == "unpooled"
        assert canonical(outcome) == canonical(
            _outcome_to_dict(execute_point(point))
        )
        no_uvm = SweepPoint("fir", "No-UVM", ratio=0.9, scale=SCALE)
        _, source = execute_point_pooled(no_uvm, SnapshotPool(1 << 30))
        assert source == "unpooled"

    def test_oom_point_reports_oom(self):
        pool = SnapshotPool(max_bytes=1 << 30)
        point = SweepPoint(
            "dl:vgg16", "No-UVM", batch_size=150, scale=SCALE
        )
        outcome, source = execute_point_pooled(point, pool)
        assert outcome == {"status": "oom"}
        assert source == "unpooled"  # No-UVM has no split-phase plan

    def test_chaos_point_through_the_pool(self):
        pool = SnapshotPool(max_bytes=1 << 30)
        chaos = {"seed": 3, "transfer_fault_interval": 40}
        point = fir_point(chaos=tuple(sorted(chaos.items())))
        reference = canonical(_outcome_to_dict(execute_point(point)))
        cold, _ = execute_point_pooled(point, pool)
        warm, source = execute_point_pooled(point, pool)
        assert source == "fork"
        assert canonical(cold) == reference
        assert canonical(warm) == reference


# ----------------------------------------------------------------------
# the server, end to end
# ----------------------------------------------------------------------


class RunningServer:
    """Run an :class:`ExperimentServer` on a background event loop."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 2)
        overrides.setdefault("executor", "thread")
        overrides.setdefault("cache_dir", None)
        self.config = ServeConfig(**overrides)
        self.server = None
        self.exit_code = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(20), "server failed to start"
        return self

    def __exit__(self, *_exc):
        self.stop()

    def stop(self):
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive()

    def _main(self):
        asyncio.run(self._amain())

    async def _amain(self):
        self.server = ExperimentServer(self.config)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        self.exit_code = await self.server.run_until_stopped(
            install_signals=False
        )

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.port}"


class TestServerEndToEnd:
    def test_run_sweep_status_metrics_and_identity(self, tmp_path):
        with RunningServer(cache_dir=tmp_path / "cache") as running:
            client = ServeClient(running.url, client_id="e2e")
            assert client.health()["ok"] is True

            point = fir_point()
            first = client.run_point(point)
            assert (first["provenance"], first["source"]) == ("run", "cold")
            # Byte-identity: execute_point is what `repro run` executes.
            assert canonical(first["outcome"]) == canonical(
                _outcome_to_dict(execute_point(point))
            )

            # The duplicate is served from the content-hash cache.
            duplicate = client.run_point(point)
            assert duplicate["provenance"] == "cache"
            assert canonical(duplicate["outcome"]) == canonical(first["outcome"])

            # A sibling system forks the warm fir prefix.
            sibling = client.run_point(fir_point(system="UVM-opt"))
            assert (sibling["provenance"], sibling["source"]) == ("run", "fork")

            # Sweep -> job -> status.
            batch = [fir_point(ratio=r) for r in (1.5, 2.0, 3.0)]
            submitted = client.submit_sweep(points=batch)
            assert submitted["points"] == 3
            job = client.wait_job(submitted["id"])
            assert job["state"] == "done"
            assert len(job["outcomes"]) == 3
            # ratio 2.0 was already cached; the rest simulated.
            assert job["provenance"].count("cache") >= 1
            for spec, outcome in zip(job["points"], job["outcomes"]):
                local = _outcome_to_dict(
                    execute_point(SweepPoint.from_dict(spec))
                )
                assert canonical(outcome) == canonical(local)

            metrics = client.metrics()
            counters = metrics["counters"]
            assert counters["serve/cache_hits"] >= 1
            assert counters["serve/pool_cold"] >= 1
            assert counters["serve/pool_fork"] >= 1
            assert metrics["pool_hit_rate"] > 0
            assert metrics["histograms"]["serve/request_seconds"]["count"] >= 4
            assert "p50" in metrics["histograms"]["serve/request_seconds"]
            assert "p99" in metrics["histograms"]["serve/request_seconds"]
        assert running.exit_code == 0

    def test_grid_sweep_and_deferred_run(self):
        with RunningServer() as running:
            client = ServeClient(running.url)
            submitted = client.submit_sweep(
                grid={
                    "workloads": ["fir"],
                    "systems": ["UVM-opt", "UvmDiscard"],
                    "ratios": [2.0],
                    "scale": SCALE,
                }
            )
            assert submitted["points"] == 2
            job = client.wait_job(submitted["id"])
            assert job["provenance"].count("run") == 2

            deferred = client.run_point(fir_point(ratio=1.5), wait=False)
            status = client.wait_job(deferred["id"])
            assert status["total"] == 1
            assert status["outcomes"][0]["status"] == "ok"

    def test_concurrent_duplicates_coalesce(self):
        with RunningServer(workers=2) as running:
            # ~0.3s of simulation: long enough that the staggered
            # duplicate reliably arrives while the first is in flight.
            point = SweepPoint("radix", "UvmDiscard", ratio=2.0, scale=0.125)
            responses, lock = [], threading.Lock()

            def fire():
                response = ServeClient(running.url).run_point(point)
                with lock:
                    responses.append(response)

            first = threading.Thread(target=fire)
            first.start()
            time.sleep(0.1)  # let the first request enter the executor
            second = threading.Thread(target=fire)
            second.start()
            first.join()
            second.join()
            provenances = sorted(r["provenance"] for r in responses)
            assert provenances == ["coalesced", "run"]
            assert canonical(responses[0]["outcome"]) == canonical(
                responses[1]["outcome"]
            )
            # Only one simulation happened for the two requests.
            metrics = ServeClient(running.url).metrics()
            assert metrics["counters"]["serve/simulated"] == 1

    def test_queue_backpressure_answers_429_with_retry_after(self):
        with RunningServer(workers=1, queue_limit=1) as running:
            statuses, lock = [], threading.Lock()

            def fire(ratio):
                client = ServeClient(running.url, max_retries=0)
                point = SweepPoint("radix", "UvmDiscard", ratio=ratio, scale=0.125)
                status = 200
                try:
                    client.run_point(point)
                except ServeError as exc:
                    status = exc.status
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=fire, args=(ratio,))
                for ratio in (1.5, 2.0, 3.0, 4.0)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(200) >= 1
            assert statuses.count(429) >= 1
            raw_status, headers, _ = ServeClient(
                running.url, max_retries=0
            )._once("POST", "/run", None)
            # (also: a bare POST with no body is a 400, not a crash)
            assert raw_status == 400
            metrics = ServeClient(running.url).metrics()
            assert metrics["counters"]["serve/rejected_busy"] >= 1

    def test_prometheus_exposition_and_run_attribution(self):
        import urllib.request

        with RunningServer() as running:
            client = ServeClient(running.url, client_id="prom")
            # A run that retains transfer records carries the byte-
            # attribution summary in its /run outcome.
            explained = client.run_point(
                fir_point(driver=(("keep_transfer_records", True),))
            )
            attribution = explained["outcome"]["result"]["attribution"]
            assert attribution["complete"] is True
            assert attribution["waste"]["useful_bytes"] > 0
            # The hot path stays lean: no records, no attribution key
            # (omitted so pre-attribution caches stay byte-identical).
            bare = client.run_point(fir_point())
            assert "attribution" not in bare["outcome"]["result"]

            response = urllib.request.urlopen(
                running.url + "/metrics?format=prometheus"
            )
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
            assert "# TYPE repro_serve_requests_total counter" in text
            assert "# TYPE repro_serve_request_seconds summary" in text
            assert 'repro_serve_request_seconds{quantile="0.5"}' in text
            assert "repro_serve_queue_limit 256" in text
            # Scrapes are parseable: every sample line is "name value".
            for line in text.strip().split("\n"):
                if line.startswith("#"):
                    continue
                name, value = line.rsplit(" ", 1)
                float(value)
                assert name
            # The JSON document stays the default.
            metrics = client.metrics()
            assert "counters" in metrics and "histograms" in metrics

    def test_rate_limited_client_gets_429_and_retry_succeeds(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = fir_point()
        cache.put(point, _outcome_to_dict(execute_point(point)))
        with RunningServer(
            cache_dir=tmp_path / "cache", rate=2.0, burst=1.0
        ) as running:
            impatient = ServeClient(running.url, client_id="hot", max_retries=0)
            assert impatient.run_point(point)["provenance"] == "cache"
            with pytest.raises(ServeError) as excinfo:
                impatient.run_point(point)
            assert excinfo.value.status == 429
            # A different client has its own bucket.
            other = ServeClient(running.url, client_id="cool", max_retries=0)
            assert other.run_point(point)["provenance"] == "cache"
            # The retrying client absorbs the 429 by honoring Retry-After.
            patient = ServeClient(running.url, client_id="hot", max_retries=10)
            assert patient.run_point(point)["provenance"] == "cache"
            assert patient.retries >= 1
            metrics = ServeClient(running.url).metrics()
            assert metrics["counters"]["serve/rejected_rate"] >= 1

    def test_malformed_requests(self):
        with RunningServer() as running:
            client = ServeClient(running.url, max_retries=0)

            def status_of(method, path, payload=None):
                try:
                    client._request(method, path, payload)
                except ServeError as exc:
                    return exc.status
                return 200

            assert status_of("POST", "/run", {"client": "x"}) == 400  # no point
            assert status_of("POST", "/run", {"point": {"workload": "nope"}}) == 400
            assert status_of("POST", "/run", {"point": 7}) == 400
            assert (
                status_of("POST", "/run", {"point": fir_point().to_dict(),
                                           "wait": "yes"})
                == 400
            )
            assert status_of("POST", "/sweep", {"client": "x"}) == 400
            assert status_of("POST", "/sweep", {"points": []}) == 400
            assert (
                status_of("POST", "/sweep", {"grid": {"workloads": []}}) == 400
            )
            assert status_of("GET", "/status/job-999") == 404
            assert status_of("GET", "/nope") == 404
            assert status_of("GET", "/run") == 405
            assert status_of("POST", "/metrics") == 405
            # Invalid JSON body.
            connection_status, _, payload = client._once(
                "POST", "/run", None
            )
            assert connection_status == 400
            assert "error" in payload

    def test_graceful_drain_finishes_inflight_work(self):
        with RunningServer(workers=1, drain_seconds=60.0) as running:
            responses, lock = [], threading.Lock()

            def fire():
                point = SweepPoint("radix", "UvmDiscard", ratio=2.0, scale=0.125)
                response = ServeClient(running.url).run_point(point)
                with lock:
                    responses.append(response)

            worker_thread = threading.Thread(target=fire)
            worker_thread.start()
            time.sleep(0.1)  # request is in flight
            running.stop()  # graceful shutdown while simulating
            worker_thread.join(timeout=60)
            assert running.exit_code == 0
            assert len(responses) == 1
            assert responses[0]["outcome"]["status"] == "ok"


class TestServeConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": 0},
            {"executor": "fibers"},
            {"queue_limit": 0},
            {"pool_bytes": -1},
            {"rate": 5.0, "burst": 0.5},
            {"port": 70000},
        ],
    )
    def test_bad_configs_rejected(self, overrides):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServeConfig(**overrides).validate()
