"""Hypothesis fuzzing at the runtime level: random contract-correct
programs over multiple streams never corrupt data or break invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.harness.validation import check_driver_invariants
from repro.units import MIB

NUM_BUFFERS = 3

#: One program step: (operation, buffer index, stream index).
STEP = st.tuples(
    st.sampled_from(
        ["launch_read", "launch_write", "prefetch", "discard_eager",
         "discard_lazy", "prefetch_cpu"]
    ),
    st.integers(min_value=0, max_value=NUM_BUFFERS - 1),
    st.integers(min_value=0, max_value=1),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(STEP, min_size=1, max_size=25))
def test_random_programs_stay_consistent(steps):
    runtime = CudaRuntime(gpu=tiny_gpu(16))  # small: constant eviction
    buffers = [
        runtime.malloc_managed(6 * MIB, f"buf{i}") for i in range(NUM_BUFFERS)
    ]

    def program(cuda):
        streams = [cuda.create_stream("s0"), cuda.create_stream("s1")]
        # Track, per buffer, whether the contract requires a prefetch
        # before the next write (a lazy discard is outstanding).
        needs_notify = [False] * NUM_BUFFERS
        for op, index, stream_index in steps:
            buffer = buffers[index]
            stream = streams[stream_index]
            if op == "launch_read":
                # Reading discarded data is legal (§4.1) but serialize
                # with the other stream to keep the program well ordered.
                yield from cuda.synchronize()
                cuda.launch(
                    KernelSpec(
                        "read", [BufferAccess(buffer, AccessMode.READ)],
                        flops=1e5,
                    ),
                    stream=stream,
                )
            elif op == "launch_write":
                yield from cuda.synchronize()
                if needs_notify[index]:
                    cuda.prefetch_async(buffer, stream=stream)
                    needs_notify[index] = False
                cuda.launch(
                    KernelSpec(
                        "write", [BufferAccess(buffer, AccessMode.WRITE)],
                        flops=1e5,
                    ),
                    stream=stream,
                )
            elif op == "prefetch":
                yield from cuda.synchronize()
                cuda.prefetch_async(buffer, stream=stream)
                needs_notify[index] = False
            elif op == "prefetch_cpu":
                yield from cuda.synchronize()
                cuda.prefetch_async(buffer, destination="cpu", stream=stream)
            elif op == "discard_eager":
                yield from cuda.synchronize()
                cuda.discard_async(buffer, mode="eager", stream=stream)
            elif op == "discard_lazy":
                yield from cuda.synchronize()
                cuda.discard_async(buffer, mode="lazy", stream=stream)
                needs_notify[index] = True
        yield from cuda.synchronize()

    runtime.run(program)
    check_driver_invariants(runtime.driver)
    assert runtime.driver.counters["lazy_misuses"] == 0
    assert runtime.driver.oracle.corruption_count == 0
