"""UVMBench-style workload battery (PR 9).

Three layers of proof for the five new categories (BFS, k-means, kNN,
stencil, tree reduction):

- **Functional correctness**: each category's functional variant runs
  real NumPy compute under the simulated memory system, and its output
  is byte-for-byte equal to a plain NumPy reference — under no discard,
  eager discard and lazy discard alike, with the data-integrity oracle
  reporting zero corruption.
- **Chaos oracle**: BFS and k-means run through the differential chaos
  suite under multiple seeds with the :class:`OnlineValidator` checking
  driver invariants at cadence; outputs must still match the fault-free
  reference and no invariant may trip.
- **Harness wiring**: every category resolves through
  ``execute_point`` under all three UVM systems, discard saves traffic
  against UVM-opt where the workload has discardable working set, and
  the analytical fast model refuses the (uncalibrated) new categories
  instead of guessing.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import tiny_gpu

from repro.cuda.runtime import CudaRuntime
from repro.fastmodel import UncalibratedPointError
from repro.harness.sweep import (
    PAPER_MICRO_WORKLOADS,
    UVMBENCH_WORKLOADS,
    SweepPoint,
    execute_point,
)
from repro.workloads.functional import (
    functional_bfs,
    functional_kmeans,
    functional_knn,
    functional_reduction,
    functional_stencil,
)

DISCARD_MODES = [None, "eager", "lazy"]


def run_with(factory, memory_mib=64):
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib))
    out = {}

    def program(cuda):
        out["result"] = yield from factory(cuda)

    runtime.run(program)
    assert runtime.driver.oracle.corruption_count == 0
    return runtime, out["result"]


def random_csr(rng, num_nodes=256, degree=4):
    """A seeded random adjacency structure in CSR form."""
    counts = rng.integers(0, degree + 1, size=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = rng.integers(0, num_nodes, size=int(indptr[-1]), dtype=np.int64)
    return indptr, indices


def reference_bfs(indptr, indices, source=0):
    num_nodes = indptr.size - 1
    levels = np.full(num_nodes, -1, dtype=np.int32)
    levels[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = set()
        for node in frontier:
            for neighbor in indices[indptr[node] : indptr[node + 1]]:
                if levels[neighbor] == -1:
                    nxt.add(int(neighbor))
        for node in nxt:
            levels[node] = level + 1
        frontier = sorted(nxt)
        level += 1
    return levels


def reference_kmeans(points, centroids, iterations):
    pts = points.astype(np.float64)
    cent = centroids.astype(np.float64).copy()
    assign = np.zeros(pts.shape[0], dtype=np.int64)
    for _ in range(iterations):
        dist2 = ((pts[:, None, :] - cent[None, :, :]) ** 2).sum(axis=2)
        assign = np.argmin(dist2, axis=1)
        sums = np.zeros((cent.shape[0], pts.shape[1] + 1), dtype=np.float64)
        np.add.at(sums[:, :-1], assign, pts)
        np.add.at(sums[:, -1], assign, 1.0)
        mask = sums[:, -1] > 0
        cent[mask] = sums[mask, :-1] / sums[mask, -1, None]
    return cent, assign


def reference_knn(refs, queries, k):
    dist2 = ((queries[:, None, :] - refs[None, :, :]) ** 2).sum(axis=2)
    return np.argsort(dist2, axis=1, kind="stable")[:, :k]


def reference_stencil(grid, iterations):
    current = grid.astype(np.float64).copy()
    for _ in range(iterations):
        nxt = current.copy()
        nxt[1:-1, 1:-1] = (
            current[1:-1, 1:-1]
            + current[:-2, 1:-1]
            + current[2:, 1:-1]
            + current[1:-1, :-2]
            + current[1:-1, 2:]
        ) / 5.0
        current = nxt
    return current


def reference_reduction(values, fanin):
    data = values.astype(np.float64).ravel().copy()
    while data.size > 1:
        out_len = -(-data.size // fanin)
        pad = out_len * fanin - data.size
        if pad:
            data = np.concatenate([data, np.zeros(pad, dtype=np.float64)])
        data = data.reshape(out_len, fanin).sum(axis=1)
    return data


class TestFunctionalBfs:
    @pytest.mark.parametrize("discard", DISCARD_MODES)
    def test_matches_reference(self, discard, rng):
        indptr, indices = random_csr(rng, num_nodes=512, degree=6)
        _, levels = run_with(
            lambda cuda: functional_bfs(cuda, indptr, indices, discard=discard)
        )
        assert np.array_equal(levels, reference_bfs(indptr, indices))

    def test_disconnected_nodes_stay_unreached(self):
        # Node 3 has no in-edges and no out-edges.
        indptr = np.array([0, 2, 3, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 2], dtype=np.int64)
        _, levels = run_with(lambda cuda: functional_bfs(cuda, indptr, indices))
        assert levels.tolist() == [0, 1, 1, -1]

    def test_rejects_bad_source(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(ValueError, match="source"):

            def program(cuda):
                yield from functional_bfs(
                    cuda,
                    np.array([0, 1], dtype=np.int64),
                    np.array([0], dtype=np.int64),
                    source=7,
                )

            runtime.run(program)

    def test_oversubscribed_traversal_still_correct(self, rng):
        """Eviction churn during the traversal never corrupts levels."""
        indptr, indices = random_csr(rng, num_nodes=1 << 15, degree=16)
        _, levels = run_with(
            lambda cuda: functional_bfs(cuda, indptr, indices), memory_mib=8
        )
        assert np.array_equal(levels, reference_bfs(indptr, indices))


class TestFunctionalKMeans:
    @pytest.mark.parametrize("discard", DISCARD_MODES)
    def test_matches_reference(self, discard, rng):
        points = rng.normal(size=(512, 3))
        centroids = points[:5].copy()
        _, (cent, assign) = run_with(
            lambda cuda: functional_kmeans(
                cuda, points, centroids, iterations=3, discard=discard
            )
        )
        ref_cent, ref_assign = reference_kmeans(points, centroids, 3)
        assert np.array_equal(cent, ref_cent)
        assert np.array_equal(assign, ref_assign)

    def test_single_iteration_keeps_assignments_undiscarded(self, rng):
        """With one iteration the assignment vector is the output and
        must never be discarded (it is host-read at the end)."""
        points = rng.normal(size=(64, 2))
        _, (_, assign) = run_with(
            lambda cuda: functional_kmeans(
                cuda, points, points[:3].copy(), iterations=1
            )
        )
        _, ref_assign = reference_kmeans(points, points[:3], 1)
        assert np.array_equal(assign, ref_assign)

    def test_rejects_dim_mismatch(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(ValueError, match="dims"):

            def program(cuda):
                yield from functional_kmeans(
                    cuda, np.zeros((4, 3)), np.zeros((2, 2))
                )

            runtime.run(program)


class TestFunctionalKnn:
    @pytest.mark.parametrize("discard", DISCARD_MODES)
    def test_matches_reference(self, discard, rng):
        refs = rng.normal(size=(128, 4))
        queries = rng.normal(size=(64, 4))
        _, result = run_with(
            lambda cuda: functional_knn(
                cuda, refs, queries, k=5, batches=4, discard=discard
            )
        )
        assert np.array_equal(result, reference_knn(refs, queries, 5))

    def test_duplicate_distances_break_ties_stably(self):
        # Three identical reference points: stable argsort keeps index order.
        refs = np.zeros((3, 2))
        queries = np.zeros((2, 2))
        _, result = run_with(
            lambda cuda: functional_knn(cuda, refs, queries, k=3, batches=1)
        )
        assert result.tolist() == [[0, 1, 2], [0, 1, 2]]

    def test_rejects_uneven_batches(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(ValueError, match="batches"):

            def program(cuda):
                yield from functional_knn(
                    cuda, np.zeros((4, 2)), np.zeros((5, 2)), k=1, batches=2
                )

            runtime.run(program)


class TestFunctionalStencil:
    @pytest.mark.parametrize("discard", DISCARD_MODES)
    def test_matches_reference(self, discard, rng):
        grid = rng.normal(size=(33, 17))
        _, result = run_with(
            lambda cuda: functional_stencil(
                cuda, grid, iterations=4, discard=discard
            )
        )
        assert np.array_equal(result, reference_stencil(grid, 4))

    def test_boundary_copies_through(self, rng):
        grid = rng.normal(size=(8, 8))
        _, result = run_with(lambda cuda: functional_stencil(cuda, grid, 3))
        assert np.array_equal(result[0], grid[0])
        assert np.array_equal(result[-1], grid[-1])
        assert np.array_equal(result[:, 0], grid[:, 0])
        assert np.array_equal(result[:, -1], grid[:, -1])

    def test_rejects_non_2d(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(ValueError, match="2-D"):

            def program(cuda):
                yield from functional_stencil(cuda, np.zeros(16))

            runtime.run(program)


class TestFunctionalReduction:
    @pytest.mark.parametrize("discard", DISCARD_MODES)
    @pytest.mark.parametrize("size", [1, 7, 64, 1000])
    def test_matches_reference(self, discard, size, rng):
        values = rng.normal(size=size)
        _, result = run_with(
            lambda cuda: functional_reduction(
                cuda, values, fanin=8, discard=discard
            )
        )
        assert np.array_equal(result, reference_reduction(values, 8))

    @pytest.mark.parametrize("fanin", [2, 3, 16])
    def test_odd_fanins(self, fanin, rng):
        values = rng.normal(size=100)
        _, result = run_with(
            lambda cuda: functional_reduction(cuda, values, fanin=fanin)
        )
        assert np.array_equal(result, reference_reduction(values, fanin))

    def test_rejects_tiny_fanin(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        with pytest.raises(ValueError, match="fanin"):

            def program(cuda):
                yield from functional_reduction(cuda, np.ones(4), fanin=1)

            runtime.run(program)


class TestChaosOracle:
    """Satellite 3: validator-at-cadence chaos runs on BFS and k-means."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_bfs_kmeans_survive_chaos(self, seed):
        from repro.chaos import run_chaos_suite

        report = run_chaos_suite(
            seed=seed, workloads=["bfs", "kmeans"], cadence=64
        )
        assert report.ok, "\n".join(report.summary_lines())
        for result in report.results:
            assert result.outputs_match, (
                f"{result.workload} (seed {seed}): chaos output diverged "
                "from the fault-free reference"
            )
            assert result.trace_reproducible, (
                f"{result.workload} (seed {seed}): chaos repeat not "
                "byte-identical"
            )
            assert result.violations == 0
            assert result.checks > 0, "validator never ran"
            assert result.injected_actions > 0, "chaos injected nothing"


class TestHarnessWiring:
    @pytest.mark.parametrize("workload", UVMBENCH_WORKLOADS)
    @pytest.mark.parametrize(
        "system", ["UVM-opt", "UvmDiscard", "UvmDiscardLazy"]
    )
    def test_resolves_under_every_uvm_system(self, workload, system):
        point = SweepPoint(
            workload=workload, system=system, ratio=2.0, scale=0.01
        )
        result = execute_point(point)
        assert result is not None
        assert result.traffic_gb > 0

    @pytest.mark.parametrize("workload", UVMBENCH_WORKLOADS)
    def test_discard_saves_traffic_at_oversubscription(self, workload):
        base = SweepPoint(
            workload=workload, system="UVM-opt", ratio=2.0, scale=0.01
        )
        uvm = execute_point(base)
        discard = execute_point(
            SweepPoint(workload=workload, system="UvmDiscard", ratio=2.0, scale=0.01)
        )
        assert uvm is not None and discard is not None
        assert discard.traffic_gb <= uvm.traffic_gb, (
            f"{workload}: discard moved more data than UVM-opt "
            f"({discard.traffic_gb} > {uvm.traffic_gb} GB)"
        )

    @pytest.mark.parametrize("workload", UVMBENCH_WORKLOADS)
    def test_fast_model_refuses_uncalibrated_categories(self, workload):
        point = SweepPoint(
            workload=workload,
            system="UvmDiscard",
            ratio=2.0,
            scale=0.125,
            mode="fast",
        )
        with pytest.raises(UncalibratedPointError, match=workload):
            execute_point(point)

    def test_registry_split_is_consistent(self):
        from repro.harness.sweep import MICRO_WORKLOADS

        assert set(PAPER_MICRO_WORKLOADS).isdisjoint(UVMBENCH_WORKLOADS)
        assert tuple(MICRO_WORKLOADS) == (
            tuple(PAPER_MICRO_WORKLOADS) + tuple(UVMBENCH_WORKLOADS)
        )

    def test_chaos_catalog_covers_new_categories(self):
        from repro.chaos.catalog import CHAOS_WORKLOADS

        assert set(UVMBENCH_WORKLOADS) <= set(CHAOS_WORKLOADS)
