"""Behavioural tests of the UVM driver state machine.

These drive the driver directly (no CUDA runtime on top) so every
transition of Figures 1/2 and §5.3-§5.7 is observable in isolation.
"""

import pytest

from repro.access import AccessMode
from repro.driver import DiscardKind, UvmDriver, UvmDriverConfig, VaBlock
from repro.driver.va_block import CPU
from repro.engine import Environment
from repro.errors import (
    ConfigurationError,
    DiscardSemanticsError,
    OutOfMemoryError,
    SimulationError,
)
from repro.instrument.traffic import TransferReason
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE, MIB


def make_driver(capacity_mib=8, **config_kwargs):
    env = Environment()
    driver = UvmDriver(env, pcie_gen4(), UvmDriverConfig(**config_kwargs))
    driver.register_gpu("gpu0", capacity_mib * MIB)
    return env, driver


def make_blocks(driver, count, start_index=1000):
    blocks = [VaBlock(start_index + i, BIG_PAGE) for i in range(count)]
    driver.register_blocks(blocks)
    return blocks


def run(env, generator):
    return env.run(until=env.process(generator))


def populate_cpu(env, driver, blocks):
    """Host first-touch + write, making the blocks live CPU data."""
    run(env, driver.make_resident_cpu(blocks, TransferReason.FAULT_MIGRATION, True))
    for block in blocks:
        driver.note_access(block, AccessMode.WRITE)


class TestRegistration:
    def test_duplicate_gpu_rejected(self):
        env, driver = make_driver()
        with pytest.raises(ConfigurationError):
            driver.register_gpu("gpu0", MIB)

    def test_cpu_name_reserved(self):
        env, driver = make_driver()
        with pytest.raises(ConfigurationError):
            driver.register_gpu(CPU, MIB)

    def test_unknown_gpu_rejected(self):
        env, driver = make_driver()
        with pytest.raises(ConfigurationError):
            driver.gpu_queues("gpu9")

    def test_block_double_registration_rejected(self):
        env, driver = make_driver()
        blocks = make_blocks(driver, 1)
        with pytest.raises(SimulationError):
            driver.register_blocks(blocks)

    def test_unregistered_block_lookup_rejected(self):
        env, driver = make_driver()
        with pytest.raises(SimulationError):
            driver.block(42)


class TestResidency:
    def test_first_touch_gpu_zero_fills_without_traffic(self):
        """Figure 1 ② via prefetch of never-touched memory."""
        env, driver = make_driver()
        blocks = make_blocks(driver, 2)
        run(env, driver.prefetch(blocks, "gpu0"))
        for block in blocks:
            assert block.residency == "gpu0"
            assert block.populated  # defined zeros
            assert driver.gpu_page_table("gpu0").is_mapped(block.index)
        assert driver.traffic.total_bytes == 0
        assert driver.counters["zeroed_blocks"] == 2

    def test_cpu_to_gpu_migration_moves_data(self):
        env, driver = make_driver()
        blocks = make_blocks(driver, 3)
        populate_cpu(env, driver, blocks)
        run(env, driver.prefetch(blocks, "gpu0"))
        assert driver.traffic.bytes_h2d == 3 * BIG_PAGE
        for block in blocks:
            assert block.residency == "gpu0"
            # Exclusive mapping (§2.2): the CPU PTE is gone.
            assert not driver.cpu_page_table.is_mapped(block.index)

    def test_gpu_to_cpu_fault_migration(self):
        env, driver = make_driver()
        blocks = make_blocks(driver, 2)
        run(env, driver.prefetch(blocks, "gpu0"))
        for block in blocks:
            driver.note_access(block, AccessMode.WRITE)
        run(
            env,
            driver.make_resident_cpu(
                blocks, TransferReason.FAULT_MIGRATION, charge_faults=True
            ),
        )
        assert driver.traffic.bytes_d2h == 2 * BIG_PAGE
        for block in blocks:
            assert block.on_cpu
            assert driver.cpu_page_table.is_mapped(block.index)
            assert not driver.gpu_page_table("gpu0").is_mapped(block.index)
        assert driver.counters["cpu_faulted_blocks"] == 2

    def test_fault_handler_costs_time(self):
        env, driver = make_driver()
        blocks = make_blocks(driver, 4)
        before = env.now
        run(env, driver.handle_gpu_faults("gpu0", blocks))
        assert env.now > before
        assert driver.counters["gpu_fault_batches"] == 1
        assert driver.counters["gpu_faulted_blocks"] == 4

    def test_empty_fault_batch_is_free(self):
        env, driver = make_driver()
        run(env, driver.handle_gpu_faults("gpu0", []))
        assert driver.counters["gpu_fault_batches"] == 0

    def test_prefetch_of_resident_blocks_updates_recency_only(self):
        """§7.5.1: the pure-overhead prefetch."""
        env, driver = make_driver()
        blocks = make_blocks(driver, 2)
        run(env, driver.prefetch(blocks, "gpu0"))
        zeroed = driver.counters["zeroed_blocks"]
        run(env, driver.prefetch(blocks, "gpu0"))
        assert driver.counters["prefetch_recency_only"] == 2
        assert driver.counters["zeroed_blocks"] == zeroed
        assert driver.traffic.total_bytes == 0

    def test_gpu_needs_fault(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        assert driver.gpu_needs_fault("gpu0", block)
        run(env, driver.prefetch([block], "gpu0"))
        assert not driver.gpu_needs_fault("gpu0", block)


class TestEviction:
    def test_lru_block_evicted_under_pressure(self):
        env, driver = make_driver(capacity_mib=4)  # 2 frames
        blocks = make_blocks(driver, 3)
        for block in blocks:
            run(env, driver.prefetch([block], "gpu0"))
            driver.note_access(block, AccessMode.WRITE)
        # The first block was LRU and got swapped to the host.
        assert blocks[0].on_cpu
        assert blocks[1].residency == "gpu0"
        assert blocks[2].residency == "gpu0"
        assert driver.traffic.bytes_d2h == BIG_PAGE
        assert driver.counters["evicted_blocks"] == 1

    def test_eviction_prefers_unused_frames(self):
        env, driver = make_driver(capacity_mib=4)
        first = make_blocks(driver, 2, start_index=100)
        run(env, driver.prefetch(first, "gpu0"))
        driver.release_blocks(first)  # frames go to the unused queue
        second = make_blocks(driver, 2, start_index=200)
        run(env, driver.prefetch(second, "gpu0"))
        assert driver.counters["evicted_blocks"] == 0
        assert driver.traffic.total_bytes == 0

    def test_discarded_reclaimed_before_used(self):
        """§5.5: eviction order unused -> discarded -> LRU."""
        env, driver = make_driver(capacity_mib=4)
        keep, dead = make_blocks(driver, 2)
        run(env, driver.prefetch([keep, dead], "gpu0"))
        driver.note_access(keep, AccessMode.WRITE)
        driver.note_access(dead, AccessMode.WRITE)
        driver.discard_block_eager(dead)
        (newcomer,) = make_blocks(driver, 1, start_index=500)
        run(env, driver.prefetch([newcomer], "gpu0"))
        # 'keep' is older in LRU terms but survives: the discarded block
        # was reclaimed instead, with no transfer.
        assert keep.residency == "gpu0"
        assert dead.residency is None
        assert driver.traffic.total_bytes == 0
        assert driver.counters["evicted_discarded_blocks"] == 1

    def test_oversubscribing_prefetch_streams_through(self):
        """A prefetch larger than the GPU never OOMs: the range streams
        through one chunk at a time (UVM's defining property)."""
        env, driver = make_driver(capacity_mib=2)  # a single frame
        blocks = make_blocks(driver, 3)
        run(env, driver.prefetch(blocks, "gpu0"))
        # Only the last block is still resident; earlier ones were
        # evicted to make room as the range streamed through.
        assert blocks[-1].residency == "gpu0"
        assert blocks[0].on_cpu
        assert driver.counters["evicted_blocks"] == 2

    def test_device_side_allocation_exhaustion_raises(self):
        """Explicit reservations (cudaMalloc) still fail hard."""
        env, driver = make_driver(capacity_mib=2)
        with pytest.raises(OutOfMemoryError):
            driver.reserve_gpu_memory("gpu0", 4 * MIB)

    def test_reserve_and_release_gpu_memory(self):
        env, driver = make_driver(capacity_mib=8)
        driver.reserve_gpu_memory("gpu0", 4 * MIB)
        assert driver.gpu_free_bytes("gpu0") == 4 * MIB
        driver.release_gpu_memory("gpu0", 4 * MIB)
        assert driver.gpu_free_bytes("gpu0") == 8 * MIB


class TestEagerDiscard:
    def test_unmaps_and_queues(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        cost = driver.discard_block_eager(block)
        assert cost > 0
        assert block.discarded and block.discard_kind is DiscardKind.EAGER
        assert not driver.gpu_page_table("gpu0").is_mapped(block.index)
        assert block in driver.gpu_queues("gpu0").discarded
        assert driver.gpu_needs_fault("gpu0", block)

    def test_revival_on_refault(self):
        """§5.7: access-after-discard revives the frame, no zeroing."""
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        driver.discard_block_eager(block)
        zeroed = driver.counters["zeroed_blocks"]
        run(env, driver.handle_gpu_faults("gpu0", [block]))
        assert not block.discarded
        assert block.residency == "gpu0"
        assert block in driver.gpu_queues("gpu0").used
        assert driver.counters["discard_revivals"] == 1
        assert driver.counters["zeroed_blocks"] == zeroed  # frame prepared

    def test_revival_zeroes_unprepared_frame(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        driver.discard_block_eager(block)
        block.frame.prepared = False  # partial-population case (§5.7)
        zeroed = driver.counters["zeroed_blocks"]
        run(env, driver.handle_gpu_faults("gpu0", [block]))
        assert driver.counters["zeroed_blocks"] == zeroed + 1
        assert block.frame.prepared

    def test_discard_on_cpu_resident_skips_future_transfer(self):
        """§5.3 second scenario: no H2D transfer when re-populated."""
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        populate_cpu(env, driver, [block])
        driver.discard_block_eager(block)
        run(env, driver.prefetch([block], "gpu0"))
        assert driver.traffic.total_bytes == 0  # zero-filled, not migrated
        assert block.residency == "gpu0"
        assert not block.discarded

    def test_discard_never_touched_block(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        cost = driver.discard_block_eager(block)
        assert block.discarded
        assert cost >= 0

    def test_immediate_reclaim_ablation(self):
        env, driver = make_driver(discarded_queue_enabled=False)
        (block,) = make_blocks(driver, 1)
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        driver.discard_block_eager(block)
        assert block.residency is None
        assert block.frame is None
        assert len(driver.gpu_queues("gpu0").discarded) == 0


class TestLazyDiscard:
    def _discarded_block(self, env, driver):
        (block,) = make_blocks(driver, 1)
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        driver.discard_block_lazy(block)
        return block

    def test_keeps_mapping(self):
        """§5.2: no eager unmapping — the key cost difference."""
        env, driver = make_driver()
        block = self._discarded_block(env, driver)
        assert block.discarded and block.discard_kind is DiscardKind.LAZY
        assert not block.sw_dirty
        assert driver.gpu_page_table("gpu0").is_mapped(block.index)
        assert not driver.gpu_needs_fault("gpu0", block)
        assert block in driver.gpu_queues("gpu0").discarded

    def test_cheaper_than_eager(self):
        env, driver = make_driver()
        a, b = make_blocks(driver, 2)
        run(env, driver.prefetch([a, b], "gpu0"))
        driver.note_access(a, AccessMode.WRITE)
        driver.note_access(b, AccessMode.WRITE)
        assert driver.discard_block_lazy(a) < driver.discard_block_eager(b)

    def test_prefetch_sets_dirty_bit_and_revives(self):
        """§5.2: the mandatory prefetch notification."""
        env, driver = make_driver()
        block = self._discarded_block(env, driver)
        run(env, driver.prefetch([block], "gpu0"))
        assert not block.discarded
        assert block.sw_dirty
        assert block in driver.gpu_queues("gpu0").used
        assert driver.counters["discard_revivals"] == 1
        assert driver.traffic.total_bytes == 0

    def test_reclaim_pays_deferred_unmap(self):
        """§5.6: reclamation of a lazy block sends the unmap request."""
        env, driver = make_driver(capacity_mib=4)
        block = self._discarded_block(env, driver)
        unmaps_before = driver.gpu_page_table("gpu0").unmap_count
        fillers = make_blocks(driver, 2, start_index=600)
        run(env, driver.prefetch(fillers, "gpu0"))
        assert block.residency is None
        assert driver.gpu_page_table("gpu0").unmap_count == unmaps_before + 1
        assert driver.counters["evicted_discarded_blocks"] == 1

    def test_misuse_detected_on_reclaim(self):
        """§5.2: re-purposing without the prefetch loses the new data."""
        env, driver = make_driver(capacity_mib=4)
        block = self._discarded_block(env, driver)
        # Program writes again WITHOUT the prefetch: the driver can't see.
        driver.note_access(block, AccessMode.WRITE)
        fillers = make_blocks(driver, 2, start_index=700)
        run(env, driver.prefetch(fillers, "gpu0"))
        assert driver.counters["lazy_misuses"] == 1
        assert driver.oracle.corruption_count == 1

    def test_strict_mode_raises_on_misuse(self):
        env, driver = make_driver(capacity_mib=4, strict_lazy=True)
        block = self._discarded_block(env, driver)
        driver.note_access(block, AccessMode.WRITE)
        fillers = make_blocks(driver, 2, start_index=800)
        with pytest.raises(DiscardSemanticsError):
            run(env, driver.prefetch(fillers, "gpu0"))

    def test_correct_use_never_misuses(self):
        env, driver = make_driver(capacity_mib=4)
        block = self._discarded_block(env, driver)
        run(env, driver.prefetch([block], "gpu0"))  # mandatory notification
        driver.note_access(block, AccessMode.WRITE)
        fillers = make_blocks(driver, 2, start_index=900)
        run(env, driver.prefetch(fillers, "gpu0"))
        assert driver.counters["lazy_misuses"] == 0
        # The block held live data, so eviction transferred it out.
        assert block.on_cpu
        assert driver.traffic.bytes_d2h == BIG_PAGE


class TestReleaseBlocks:
    def test_release_resolves_rmt_and_recycles_frames(self):
        env, driver = make_driver()
        blocks = make_blocks(driver, 2)
        populate_cpu(env, driver, blocks)
        run(env, driver.prefetch(blocks, "gpu0"))
        driver.release_blocks(blocks)
        driver.finalize()
        # The migrated data was never read: transfers were redundant.
        assert driver.rmt.redundant_bytes == 2 * BIG_PAGE
        assert len(driver.gpu_queues("gpu0").unused) == 2
        for block in blocks:
            assert block.residency is None


class TestNoteAccess:
    def test_read_marks_useful(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        populate_cpu(env, driver, [block])
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.READ)
        assert driver.rmt.useful_bytes == BIG_PAGE

    def test_overwrite_marks_redundant(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        populate_cpu(env, driver, [block])
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.WRITE)
        assert driver.rmt.redundant_bytes == BIG_PAGE

    def test_readwrite_marks_useful(self):
        env, driver = make_driver()
        (block,) = make_blocks(driver, 1)
        populate_cpu(env, driver, [block])
        run(env, driver.prefetch([block], "gpu0"))
        driver.note_access(block, AccessMode.READWRITE)
        assert driver.rmt.useful_bytes == BIG_PAGE
        assert block.version == 2  # host write + RMW
