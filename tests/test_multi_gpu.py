"""Tests for multi-GPU support: peer migration, D2D links, exclusivity."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.errors import ConfigurationError
from repro.interconnect import nvlink_gen3
from repro.units import MIB


def two_gpu_runtime(p2p=False):
    return CudaRuntime(
        gpus=[tiny_gpu(64, "gpu0"), tiny_gpu(64, "gpu1")],
        p2p_link=nvlink_gen3() if p2p else None,
    )


def consume_kernel(buffer, device_mode=AccessMode.READ):
    return KernelSpec("consume", [BufferAccess(buffer, device_mode)], flops=1e6)


class TestConfiguration:
    def test_gpu_and_gpus_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            CudaRuntime(gpu=tiny_gpu(), gpus=[tiny_gpu()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CudaRuntime(gpus=[tiny_gpu(64, "gpu0"), tiny_gpu(64, "gpu0")])

    def test_launch_on_unknown_device_rejected(self):
        runtime = two_gpu_runtime()
        buffer = runtime.malloc_managed(2 * MIB)
        with pytest.raises(ConfigurationError):
            runtime.launch(consume_kernel(buffer), device="gpu9")

    def test_default_gpu_is_first(self):
        runtime = two_gpu_runtime()
        assert runtime.gpu.name == "gpu0"
        assert set(runtime.executors) == {"gpu0", "gpu1"}


class TestPeerMigration:
    def _migrate_between_gpus(self, p2p):
        runtime = two_gpu_runtime(p2p=p2p)
        buffer = runtime.malloc_managed(8 * MIB, "shared")

        def program(cuda):
            # Produce on gpu0, consume on gpu1 — pointers are valid
            # everywhere (§2.1), the driver migrates on fault.
            cuda.launch(
                KernelSpec(
                    "produce", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e6
                ),
                device="gpu0",
            )
            yield from cuda.synchronize()
            cuda.launch(consume_kernel(buffer), device="gpu1")
            yield from cuda.synchronize()

        runtime.run(program)
        return runtime, buffer

    def test_exclusive_residency_moves_to_consumer(self):
        runtime, buffer = self._migrate_between_gpus(p2p=False)
        for block in buffer.blocks:
            assert block.residency == "gpu1"
            assert not runtime.driver.gpu_page_table("gpu0").is_mapped(block.index)
            assert runtime.driver.gpu_page_table("gpu1").is_mapped(block.index)
        # Source frames were returned to gpu0's pool.
        assert runtime.driver.gpu_free_bytes("gpu0") == runtime.gpu.memory_bytes

    def test_without_p2p_data_bounces_through_host(self):
        runtime, buffer = self._migrate_between_gpus(p2p=False)
        traffic = runtime.driver.traffic
        assert traffic.bytes_d2h == 8 * MIB
        assert traffic.bytes_h2d == 8 * MIB
        assert traffic.bytes_d2d == 0

    def test_with_p2p_single_d2d_hop(self):
        runtime, buffer = self._migrate_between_gpus(p2p=True)
        traffic = runtime.driver.traffic
        assert traffic.bytes_d2d == 8 * MIB
        assert traffic.bytes_d2h == 0
        assert traffic.bytes_h2d == 0

    def test_p2p_faster_than_host_bounce(self):
        slow, _ = self._migrate_between_gpus(p2p=False)
        fast, _ = self._migrate_between_gpus(p2p=True)
        assert fast.elapsed < slow.elapsed

    def test_peer_read_is_useful_traffic(self):
        runtime, _ = self._migrate_between_gpus(p2p=True)
        runtime.driver.finalize()
        assert runtime.driver.rmt.useful_bytes >= 8 * MIB


class TestDiscardAcrossGpus:
    def test_discarded_peer_block_is_not_transferred(self):
        """§5.3 generalizes to peers: dead data never crosses any link."""
        runtime = two_gpu_runtime(p2p=True)
        buffer = runtime.malloc_managed(8 * MIB, "scratch")

        def program(cuda):
            cuda.launch(
                KernelSpec(
                    "produce", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e6
                ),
                device="gpu0",
            )
            cuda.discard_async(buffer, mode="eager")
            yield from cuda.synchronize()
            # gpu1 overwrites the (dead) buffer: zero-fill, no migration.
            cuda.prefetch_async(buffer, destination="gpu1")
            cuda.launch(
                KernelSpec(
                    "reuse", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e6
                ),
                device="gpu1",
            )
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.driver.traffic.total_bytes == 0
        for block in buffer.blocks:
            assert block.residency == "gpu1"
        # gpu0's frames were reclaimed without any transfer.
        assert runtime.driver.gpu_free_bytes("gpu0") == runtime.gpu.memory_bytes

    def test_two_gpus_compute_concurrently(self):
        runtime = two_gpu_runtime()
        a = runtime.malloc_managed(2 * MIB, "a")
        b = runtime.malloc_managed(2 * MIB, "b")
        s0 = runtime.create_stream("s0")
        s1 = runtime.create_stream("s1")

        def program(cuda):
            cuda.launch(
                KernelSpec("k0", [BufferAccess(a, AccessMode.WRITE)], duration=1.0),
                stream=s0,
                device="gpu0",
            )
            cuda.launch(
                KernelSpec("k1", [BufferAccess(b, AccessMode.WRITE)], duration=1.0),
                stream=s1,
                device="gpu1",
            )
            yield from cuda.synchronize()

        runtime.run(program)
        # Separate SM engines: the two kernels overlapped.
        assert runtime.elapsed < 1.5
