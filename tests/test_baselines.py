"""Tests for the baselines: caching allocator, LMS, manual swap."""

import pytest

from conftest import tiny_gpu

from repro.baselines import CachingAllocator, LmsTrainer, ManualSwapTrainer
from repro.cuda.runtime import CudaRuntime
from repro.errors import OutOfMemoryError, SimulationError
from repro.harness.systems import System
from repro.interconnect import pcie_gen3
from repro.units import BIG_PAGE, MIB
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16

SCALE = 1 / 32
NETWORK = vgg16().scaled(SCALE)
GPU = tiny_gpu(memory_mib=512)


class TestCachingAllocator:
    def _run(self, body):
        runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=64))
        runtime.run(body)
        return runtime

    def test_size_class_rounds_to_blocks(self):
        assert CachingAllocator.size_class(1) == BIG_PAGE
        assert CachingAllocator.size_class(BIG_PAGE) == BIG_PAGE
        assert CachingAllocator.size_class(BIG_PAGE + 1) == 2 * BIG_PAGE

    def test_reuse_is_free(self):
        timings = {}

        def program(cuda):
            allocator = CachingAllocator(cuda)
            start = cuda.env.now
            buffer = yield from allocator.alloc(4 * MIB)
            timings["miss"] = cuda.env.now - start
            allocator.free(buffer)
            start = cuda.env.now
            again = yield from allocator.alloc(4 * MIB)
            timings["hit"] = cuda.env.now - start
            assert again is buffer
            assert allocator.hits == 1 and allocator.misses == 1

        self._run(program)
        assert timings["miss"] > 0
        assert timings["hit"] == 0

    def test_distinct_size_classes_not_shared(self):
        def program(cuda):
            allocator = CachingAllocator(cuda)
            small = yield from allocator.alloc(2 * MIB)
            allocator.free(small)
            big = yield from allocator.alloc(8 * MIB)
            assert big is not small
            assert allocator.misses == 2

        self._run(program)

    def test_cache_released_on_oom(self):
        """PyTorch semantics: empty the cache and retry before failing."""

        def program(cuda):
            allocator = CachingAllocator(cuda)
            hog = yield from allocator.alloc(48 * MIB)
            allocator.free(hog)
            assert allocator.cached_bytes == 48 * MIB
            # Doesn't fit beside the cached 48 MiB on a 64 MiB device.
            other = yield from allocator.alloc(32 * MIB)
            assert other.nbytes == 32 * MIB
            assert allocator.cached_bytes == 0
            allocator.free(other)
            yield from allocator.release_all()

        runtime = self._run(program)
        assert runtime.driver.gpu_free_bytes("gpu0") == runtime.gpu.memory_bytes

    def test_true_oom_propagates(self):
        def program(cuda):
            allocator = CachingAllocator(cuda)
            yield from allocator.alloc(128 * MIB)  # > 64 MiB device

        with pytest.raises(OutOfMemoryError):
            self._run(program)

    def test_double_cache_free_rejected(self):
        def program(cuda):
            allocator = CachingAllocator(cuda)
            buffer = yield from allocator.alloc(2 * MIB)
            yield from cuda.free_device(buffer)
            allocator.free(buffer)

        with pytest.raises(SimulationError):
            self._run(program)


class TestLmsTrainer:
    def test_runs_at_any_batch_size(self):
        for batch in (40, 150):
            result = LmsTrainer(NETWORK, TrainerConfig(batch_size=batch)).run(
                GPU, pcie_gen3()
            )
            assert result.metric > 0
            assert result.system == "PyTorch-LMS"

    def test_traffic_scales_with_batch_not_capacity(self):
        """Table 1: LMS swaps everything every batch, fit or not."""
        small = LmsTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        large = LmsTrainer(NETWORK, TrainerConfig(batch_size=80)).run(
            GPU, pcie_gen3()
        )
        assert large.traffic_gb > 1.6 * small.traffic_gb

    def test_swap_traffic_reason(self):
        result = LmsTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        # All LMS traffic is explicit swapping, no UVM machinery involved.
        assert result.counters.get("gpu_fault_batches", 0) == 0
        assert result.counters.get("evicted_blocks", 0) == 0

    def test_slower_than_uvm_when_fits(self):
        lms = LmsTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        uvm = DarknetTrainer(
            NETWORK, TrainerConfig(batch_size=40), System.UVM_OPT
        ).run(GPU, pcie_gen3())
        assert uvm.metric > 1.1 * lms.metric


class TestManualSwapTrainer:
    def test_runs_and_pays_api_costs(self):
        result = ManualSwapTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        assert result.metric > 0

    def test_slower_than_cached_lms(self):
        """§6: the caching allocator exists because Table-2 costs hurt."""
        raw = ManualSwapTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        cached = LmsTrainer(NETWORK, TrainerConfig(batch_size=40)).run(
            GPU, pcie_gen3()
        )
        assert cached.metric > raw.metric

    def test_survives_oversubscribing_batch(self):
        result = ManualSwapTrainer(NETWORK, TrainerConfig(batch_size=150)).run(
            GPU, pcie_gen3()
        )
        assert result.metric > 0
