"""Workload internals: program structure details not covered elsewhere."""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload

SCALE = 1 / 32
GPU = rtx_3080ti().scaled(SCALE)


class TestFirInternals:
    def test_windows_discarded_exactly_once(self):
        workload = FirWorkload(FirConfig().scaled(SCALE))
        result = workload.run(System.UVM_DISCARD, 2.0, GPU, pcie_gen4())
        window_blocks = workload.config.window_bytes // (2 * 1024 * 1024)
        expected = window_blocks * workload.config.num_windows
        assert result.counters["discarded_blocks"] == expected

    def test_uvm_opt_never_discards(self):
        workload = FirWorkload(FirConfig().scaled(SCALE))
        result = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        assert result.counters.get("discarded_blocks", 0) == 0

    def test_prefetch_overlaps_compute(self):
        """The two-stream structure overlaps kernels with the next
        window's H2D prefetch — visible on the timeline."""
        from repro.cuda.runtime import CudaRuntime
        from repro.instrument.timeline import TRACK_H2D, Timeline

        workload = FirWorkload(FirConfig().scaled(SCALE))
        runtime = CudaRuntime(gpu=GPU, link=pcie_gen4())
        timeline = Timeline.attach(runtime)
        runtime.run(workload.program(System.UVM_OPT))
        compute_track = f"{GPU.name}:compute"
        compute_busy = timeline.busy_seconds(compute_track)
        overlap = timeline.overlap_seconds(compute_track, TRACK_H2D)
        assert compute_busy > 0
        # Most of the compute ran while a transfer was in flight.
        assert overlap > 0.5 * compute_busy

    def test_no_gpu_faults_with_proper_gating(self):
        """Kernels wait for their window's prefetch: no fault batches at
        <100%."""
        workload = FirWorkload(FirConfig().scaled(SCALE))
        result = workload.run(System.UVM_OPT, 0.99, GPU, pcie_gen4())
        assert result.counters.get("gpu_fault_batches", 0) == 0


class TestRadixInternals:
    def test_prefetch_policy_follows_oversubscription(self):
        workload = RadixSortWorkload(RadixSortConfig().scaled(SCALE))
        fits = workload.run(System.UVM_OPT, 0.99, GPU, pcie_gen4())
        oversub = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        # §7.3: prefetches only when not oversubscribed.
        assert fits.counters.get("prefetched_blocks", 0) > 0
        assert oversub.counters.get("prefetched_blocks", 0) == 0

    def test_forced_prefetch_override(self):
        workload = RadixSortWorkload(RadixSortConfig().scaled(SCALE))
        forced = workload.run(
            System.UVM_OPT, 2.0, GPU, pcie_gen4(), prefetch=True
        )
        assert forced.counters.get("prefetched_blocks", 0) > 0

    def test_lazy_system_identical_when_no_prefetch(self):
        """At >=200% no prefetches exist to pair with, so the lazy system
        degenerates to eager — byte- and time-identical (§7.1)."""
        workload = RadixSortWorkload(RadixSortConfig().scaled(SCALE))
        eager = workload.run(System.UVM_DISCARD, 2.0, GPU, pcie_gen4())
        lazy = workload.run(System.UVM_DISCARD_LAZY, 2.0, GPU, pcie_gen4())
        assert eager.traffic_gb == lazy.traffic_gb
        assert eager.elapsed_seconds == pytest.approx(
            lazy.elapsed_seconds, rel=1e-9
        )

    def test_iterations_scale_work(self):
        short = RadixSortWorkload(
            RadixSortConfig(iterations=2).scaled(SCALE)
        ).run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        long = RadixSortWorkload(
            RadixSortConfig(iterations=8).scaled(SCALE)
        ).run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        assert long.traffic_gb > 2.5 * short.traffic_gb
