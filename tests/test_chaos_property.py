"""Property-based chaos tests: the three chaos guarantees under random
schedules.

Hypothesis draws arbitrary :class:`~repro.chaos.ChaosConfig` instances
(any mix of mechanisms, any seed) and asserts, on a small oversubscribed
FIR workload:

1. every online invariant check passes (strict validator never fires),
2. the functional output is byte-identical to the fault-free oracle,
3. the same seed reproduces the same event trace and injection log.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import tiny_gpu

from repro.chaos import ChaosConfig, ChaosInjector, OnlineValidator, trace_digest
from repro.chaos.workloads import functional_fir
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.units import MIB

#: Input data for the workload under test: fixed across the whole module
#: so hypothesis shrinks over the chaos schedule, not the data.
_DATA_RNG = np.random.default_rng(20220821)
SIGNAL = _DATA_RNG.standard_normal(1 << 19)  # 4 MiB on an 8 MiB GPU
TAPS = _DATA_RNG.standard_normal(15)


def run_fir(config):
    """One validated run; returns (output bytes, digest, actions)."""
    runtime = CudaRuntime(
        gpu=tiny_gpu(8),
        driver_config=UvmDriverConfig(
            keep_transfer_records=True,
            event_log_enabled=True,
            event_log_capacity=None,
        ),
    )
    validator = OnlineValidator(runtime.driver, cadence=16, strict=True)
    validator.install(runtime.env)
    injector = None
    if config is not None:
        injector = ChaosInjector(config).install(runtime)
    out = {}

    def program(cuda):
        out["result"] = yield from functional_fir(cuda, SIGNAL, TAPS)

    try:
        runtime.run(program)
        if injector is not None:
            injector.uninstall()  # quiesces leftover injected processes
        validator.check_now(allow_inflight=False)
    finally:
        validator.uninstall()
        if injector is not None:
            injector.uninstall()
    actions = list(injector.actions) if injector is not None else []
    return out["result"].tobytes(), trace_digest(runtime), actions


#: The fault-free oracle, computed once.
FAULT_FREE_BYTES, FAULT_FREE_DIGEST, _ = run_fir(None)

intervals = st.sampled_from([0, 5, 12, 25, 60])
probabilities = st.sampled_from([0.0, 0.1, 0.4])

chaos_configs = st.builds(
    ChaosConfig,
    seed=st.integers(min_value=0, max_value=2**16),
    link_degrade_interval=intervals,
    link_degrade_duration=st.sampled_from([10, 40]),
    link_degrade_factor_min=st.just(0.25),
    link_degrade_factor_max=st.sampled_from([0.5, 0.9]),
    transfer_fault_interval=intervals,
    ecc_retire_interval=intervals,
    replay_storm_interval=intervals,
    replay_storm_factor=st.sampled_from([1, 3]),
    batch_reorder_probability=probabilities,
    kernel_abort_probability=probabilities,
    kernel_abort_limit=st.sampled_from([1, 2]),
    pressure_spike_interval=intervals,
    pressure_spike_frames=st.sampled_from([1, 2]),
    pressure_spike_duration=st.sampled_from([15, 50]),
)


@settings(max_examples=12, deadline=None)
@given(config=chaos_configs)
def test_random_chaos_schedule_preserves_invariants_and_results(config):
    config.validate()
    chaos_bytes, chaos_digest, actions = run_fir(config)
    # 1. strict validator raised nowhere (we got here), and
    # 2. outputs are byte-identical to the fault-free oracle.
    assert chaos_bytes == FAULT_FREE_BYTES
    # 3. the same seed reproduces the same trace and injection log.
    repeat_bytes, repeat_digest, repeat_actions = run_fir(config)
    assert repeat_bytes == chaos_bytes
    assert repeat_digest == chaos_digest
    assert repeat_actions == actions


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_default_storm_is_deterministic_per_seed(seed):
    config = ChaosConfig.default_storm(seed=seed)
    first = run_fir(config)
    second = run_fir(config)
    assert first == second
    assert first[0] == FAULT_FREE_BYTES


def test_chaos_changes_the_trace_but_not_the_data():
    """A schedule with every mechanism on perturbs timing, not results."""
    config = ChaosConfig.default_storm(seed=5)
    chaos_bytes, chaos_digest, actions = run_fir(config)
    assert actions, "storm preset injected nothing on this workload"
    assert chaos_bytes == FAULT_FREE_BYTES
    assert chaos_digest != FAULT_FREE_DIGEST
