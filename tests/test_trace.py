"""The simulated-time tracer: determinism, schema, non-perturbation.

The contracts under test (docs/OBSERVABILITY.md):

- a cold traced run and a snapshot-fork traced run of the same point
  produce **byte-identical** trace JSON (stable span ids, equal
  ``trace_digest``) and identical metrics time series;
- two chaos runs of one seed produce equal trace digests, different
  seeds produce different timelines;
- the exported JSON is valid Chrome trace-event format and carries the
  expected categories and per-device/link tracks;
- tracing never perturbs simulation results, and a disabled config
  attaches nothing;
- the record cap converts overflow into a dropped-record count.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.sweep import SweepPoint, execute_point
from repro.harness.tracerun import trace_point
from repro.instrument.trace import (
    NULL_TRACER,
    TraceConfig,
    Tracer,
    merge_chrome_traces,
    validate_chrome_trace,
)

POINT = SweepPoint(
    workload="radix", system="UvmDiscard", ratio=2.0, scale=0.03125
)


@pytest.fixture(scope="module")
def cold():
    return trace_point(POINT)


@pytest.fixture(scope="module")
def forked():
    return trace_point(POINT, via_fork=True)


class TestForkDeterminism:
    def test_cold_and_forked_traces_are_byte_identical(self, cold, forked):
        _, cold_tracer = cold
        _, fork_tracer = forked
        assert cold_tracer.to_json() == fork_tracer.to_json()

    def test_digests_equal(self, cold, forked):
        assert cold[1].digest() == forked[1].digest()

    def test_metrics_series_identical(self, cold, forked):
        assert cold[1].metrics.to_csv() == forked[1].metrics.to_csv()

    def test_results_equal(self, cold, forked):
        assert cold[0] == forked[0]


class TestMetricsCsvFormat:
    """Pin the ``--metrics-csv`` export shape: dashboards parse it."""

    def test_header_row_and_column_order(self, cold):
        lines = cold[1].metrics.to_csv().splitlines()
        assert lines[0] == "series,time,value"
        assert len(lines) > 1, "traced run must record samples"
        for line in lines[1:]:
            series, time, value = line.split(",")
            assert series
            float(time), float(value)

    def test_series_grouped_and_name_sorted(self, cold):
        lines = cold[1].metrics.to_csv().splitlines()[1:]
        names = [line.split(",", 1)[0] for line in lines]
        # All samples of one series are contiguous and the groups appear
        # in sorted order — a re-run must produce a byte-identical file.
        groups = []
        for name in names:
            if not groups or groups[-1] != name:
                groups.append(name)
        assert groups == sorted(set(names))

    def test_export_is_stable_across_identical_runs(self, cold):
        repeat = trace_point(POINT)
        assert repeat[1].metrics.to_csv() == cold[1].metrics.to_csv()


class TestNonPerturbation:
    def test_traced_result_matches_untraced(self, cold):
        untraced = execute_point(POINT)
        assert untraced == cold[0]

    def test_disabled_config_attaches_nothing(self):
        result, tracer = trace_point(POINT, TraceConfig(enabled=False))
        assert tracer.events == []
        assert tracer.metrics.to_csv().strip() == "series,time,value"
        assert result == execute_point(POINT)

    def test_no_uvm_point_is_rejected(self):
        point = SweepPoint(
            workload="fir", system="No-UVM", ratio=0.99, scale=0.03125
        )
        with pytest.raises(ConfigurationError):
            trace_point(point)


class TestChromeExport:
    def test_schema_valid(self, cold):
        data = json.loads(cold[1].to_json())
        assert validate_chrome_trace(data) == []

    def test_expected_categories_present(self, cold):
        categories = {r[3] for r in cold[1].events}
        for expected in ("fault", "migration", "eviction", "kernel", "discard"):
            assert expected in categories, expected

    def test_expected_tracks_present(self, cold):
        tracks = {r[1] for r in cold[1].events}
        for expected in ("gpu0/faults", "link/h2d", "gpu0/compute"):
            assert expected in tracks, expected

    def test_span_ids_are_record_positions(self, cold):
        data = json.loads(cold[1].to_json())
        ids = [
            e["args"]["id"]
            for e in data["traceEvents"]
            if e["ph"] in ("X", "i")
        ]
        assert ids == sorted(ids) == list(range(len(ids)))

    def test_digest_embedded_in_export(self, cold):
        data = json.loads(cold[1].to_json())
        assert data["otherData"]["trace_digest"] == cold[1].digest()
        assert data["otherData"]["clock"] == "simulated"

    def test_phase_seconds_nonnegative(self, cold):
        phases = cold[1].phase_seconds()
        assert phases
        assert all(v >= 0 for v in phases.values())

    def test_merge_assigns_one_pid_per_label(self, cold, forked):
        merged = merge_chrome_traces(
            [("cold", cold[1]), ("forked", forked[1])]
        )
        assert validate_chrome_trace(merged) == []
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {1, 2}
        assert set(merged["otherData"]["trace_digests"]) == {"cold", "forked"}


class TestChaosRepeatDeterminism:
    CHAOS = (
        ("seed", 7),
        ("transfer_fault_interval", 400),
        ("link_degrade_interval", 900),
        ("pressure_spike_interval", 1100),
    )

    def _traced(self, seed: int):
        import dataclasses

        chaos = tuple(
            (k, seed if k == "seed" else v) for k, v in self.CHAOS
        )
        point = dataclasses.replace(POINT, chaos=chaos)
        return trace_point(point)

    def test_same_seed_same_timeline(self):
        first = self._traced(7)
        second = self._traced(7)
        assert first[1].to_json() == second[1].to_json()
        assert first[1].digest() == second[1].digest()

    def test_chaos_instants_recorded(self):
        _, tracer = self._traced(7)
        chaos_records = [r for r in tracer.events if r[1] == "chaos"]
        assert chaos_records, "expected injected-action instants"
        assert all(r[0] == "i" for r in chaos_records)

    def test_different_seed_different_timeline(self):
        assert self._traced(7)[1].digest() != self._traced(8)[1].digest()


class TestRecordCap:
    def test_overflow_counts_dropped(self):
        _, tracer = trace_point(
            POINT, TraceConfig(max_records=10, metrics_cadence=0)
        )
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        data = json.loads(tracer.to_json())
        assert data["otherData"]["dropped_records"] == tracer.dropped

    def test_dropped_count_feeds_digest(self):
        a = Tracer(TraceConfig())
        b = Tracer(TraceConfig())
        assert a.digest() == b.digest()
        b.dropped = 5
        assert a.digest() != b.digest()


class TestInstallLifecycle:
    def test_double_install_rejected(self, cold):
        from repro.cuda.runtime import CudaRuntime

        runtime = CudaRuntime()
        tracer = Tracer(TraceConfig())
        tracer.install(runtime)
        with pytest.raises(RuntimeError):
            tracer.install(runtime)
        tracer.uninstall()
        assert runtime.driver.tracer is NULL_TRACER

    def test_uninstall_restores_null_tracer(self):
        from repro.cuda.runtime import CudaRuntime

        runtime = CudaRuntime()
        tracer = Tracer(TraceConfig())
        tracer.install(runtime)
        assert runtime.driver.tracer is tracer
        assert runtime.driver.migration.tracer is tracer
        tracer.uninstall()
        assert runtime.driver.tracer is NULL_TRACER
        assert runtime.driver.migration.tracer is NULL_TRACER
        tracer.uninstall()  # idempotent

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(metrics_cadence=-1)
        with pytest.raises(ValueError):
            TraceConfig(max_records=0)


class TestEventLogSurfacing:
    def test_inspection_reports_ring_buffer_drops(self):
        from repro.driver.config import UvmDriverConfig
        from repro.driver.driver import UvmDriver
        from repro.driver.va_block import VaBlock
        from repro.engine.core import Environment
        from repro.interconnect import pcie_gen4
        from repro.units import BIG_PAGE

        env = Environment()
        driver = UvmDriver(
            env,
            pcie_gen4(),
            config=UvmDriverConfig(
                event_log_enabled=True, event_log_capacity=4
            ),
        )
        driver.register_gpu("gpu0", 8 * BIG_PAGE)
        blocks = [VaBlock(i, BIG_PAGE) for i in range(16)]
        driver.register_blocks(blocks)

        def storm():
            for _ in range(3):
                for start in range(0, 16, 4):
                    yield from driver.handle_gpu_faults(
                        "gpu0", blocks[start : start + 4]
                    )

        env.process(storm())
        env.run()
        inspection = driver.inspect()
        assert inspection.event_log_entries <= 4
        assert inspection.event_log_dropped == driver.log.dropped
        assert inspection.event_log_dropped > 0


class TestCli:
    def test_trace_round_trip_and_validate(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        csv = tmp_path / "metrics.csv"
        assert main(
            [
                "trace", "fir", "--scale", "0.03125",
                "--out", str(out), "--metrics-csv", str(csv),
            ]
        ) == 0
        stdout = capsys.readouterr().out
        assert "trace_digest:" in stdout
        assert "phase breakdown" in stdout
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        assert csv.read_text().startswith("series,time,value")
        assert main(["trace", "--validate", str(out)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_trace_fig_alias_and_unknown(self, capsys):
        from repro.cli import TRACE_ALIASES, main

        assert TRACE_ALIASES["fig5-vgg16"] == "dl:vgg16"
        assert main(["trace", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_run_with_trace_merges_points(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "merged.json"
        assert main(
            ["run", "fir", "--scale", "0.03125", "--trace", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        # 4 ratios x 3 systems = 12 traced points, one pid each.
        assert len(data["otherData"]["trace_digests"]) == 12
