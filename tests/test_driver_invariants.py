"""Property-style driver invariant tests over seeded random host programs.

No external property-testing framework: each test drives the runtime
with a reproducible ``random.Random(seed)`` stream of CUDA-style
operations (host writes, prefetches, kernel launches, eager and lazy
discards, frees) against a deliberately tiny GPU so eviction fires
constantly, and re-checks three structural invariants of the UVM driver
at every quiescent point:

1. **Exclusive residency** — every va_block is mapped on at most one
   processor, and only on the processor it is resident on (§2.2).
2. **Queue partition** — the free/unused/used/discarded queues of each
   GPU partition its physical frames: used and discarded are disjoint,
   their union plus the unused FIFO accounts for every allocated frame,
   and free + allocated equals capacity (§5.5).
3. **Discarded pages are never transferred** — from the moment a discard
   completes until the program writes the block again, no interconnect
   transfer may touch the block: eviction reclaims it silently and
   re-access zero-fills instead of migrating dead data (§5.3).
"""

from __future__ import annotations

import random

import pytest

from conftest import tiny_gpu

from repro.access import AccessMode
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.harness.validation import check_driver_invariants
from repro.units import MIB

CPU = "cpu"
BLOCK_MIB = 2


class InvariantChecker:
    """Re-checks the driver invariants; call at quiescent points only."""

    def __init__(self, runtime: CudaRuntime) -> None:
        self.runtime = runtime
        self.driver = runtime.driver
        #: Block indices whose data is dead (discarded, not yet rewritten).
        self.quarantined = set()
        self._records_seen = 0

    # -- quarantine bookkeeping ----------------------------------------

    def quarantine(self, blocks) -> None:
        self.quarantined.update(b.index for b in blocks)

    def release(self, blocks) -> None:
        self.quarantined.difference_update(b.index for b in blocks)

    # -- the three properties ------------------------------------------

    def check(self) -> None:
        check_driver_invariants(self.driver)
        self._check_exclusive_residency()
        self._check_queue_partition()
        self._check_no_dead_transfers()

    def _page_tables(self):
        yield CPU, self.driver.cpu_page_table
        for name in self.driver.gpu_names():
            yield name, self.driver.gpu_page_table(name)

    def _check_exclusive_residency(self) -> None:
        frames_seen = set()
        for index, block in self.driver._blocks.items():
            mapped_on = [
                proc
                for proc, table in self._page_tables()
                if table.is_mapped(index)
            ]
            assert len(mapped_on) <= 1, (
                f"block {index} mapped on {mapped_on}: residency must be "
                "exclusive"
            )
            if mapped_on:
                assert mapped_on[0] == block.residency, (
                    f"block {index} mapped on {mapped_on[0]} but resident "
                    f"on {block.residency}"
                )
            if block.frame is not None:
                assert id(block.frame) not in frames_seen, (
                    f"block {index} shares frame {block.frame!r} with "
                    "another block"
                )
                frames_seen.add(id(block.frame))

    def _check_queue_partition(self) -> None:
        for name in self.driver.gpu_names():
            state = self.driver._gpu(name)
            queues = state.queues
            allocator = state.allocator
            used = {b.index for b in queues.used}
            discarded = {b.index for b in queues.discarded}
            assert used.isdisjoint(discarded), (
                f"{name}: blocks {sorted(used & discarded)} in both the "
                "used and discarded queues"
            )
            accounted = len(used) + len(discarded) + len(queues.unused)
            assert accounted == allocator.used_frames, (
                f"{name}: queues account for {accounted} frames but the "
                f"allocator has {allocator.used_frames} in use"
            )
            assert (
                allocator.free_frames + allocator.used_frames
                == allocator.capacity_frames
            ), f"{name}: free + used != capacity"
            # The frames backing queued blocks are pairwise distinct and
            # distinct from the unused FIFO's detached frames.
            backing = [b.frame for b in queues.used] + [
                b.frame for b in queues.discarded
            ]
            assert all(f is not None for f in backing)
            identities = {id(f) for f in backing} | {id(f) for f in queues.unused}
            assert len(identities) == accounted, (
                f"{name}: queue frames are not pairwise distinct"
            )

    def _check_no_dead_transfers(self) -> None:
        records = self.driver.traffic.records
        fresh, self._records_seen = (
            records[self._records_seen :],
            len(records),
        )
        for rec in fresh:
            if rec.first_block is None or rec.num_blocks <= 0:
                continue
            span = set(range(rec.first_block, rec.first_block + rec.num_blocks))
            dead = sorted(span & self.quarantined)
            assert not dead, (
                f"{rec.nbytes} B {rec.reason.short} transfer at t={rec.time} "
                f"touched discarded blocks {dead}: discarded data must "
                "never cross the link"
            )


def _kernel(name, buffer, mode):
    return KernelSpec(
        name=name,
        accesses=[BufferAccess(buffer=buffer, mode=mode)],
        duration=1e-6,
    )


def random_program(rng: random.Random, steps: int):
    """A reproducible host program exercising every driver path.

    Two 12 MiB buffers against a 16 MiB GPU (8 frames) keeps the
    eviction path hot; op weights favour the discard interactions the
    invariants are about.
    """

    def program(cuda: CudaRuntime):
        checker = InvariantChecker(cuda)
        buffers = [
            cuda.malloc_managed(6 * BLOCK_MIB * MIB, f"buf{i}")
            for i in range(2)
        ]

        def settle():
            yield from cuda.synchronize()
            checker.check()

        for step in range(steps):
            buf = rng.choice(buffers)
            op = rng.choice(
                (
                    "host_write",
                    "host_write_part",
                    "host_read",
                    "prefetch",
                    "kernel_read",
                    "kernel_write",
                    "discard_eager",
                    "discard_lazy",
                    "free_realloc",
                )
            )
            # Every re-access of a discarded block *revives* it (§5.7):
            # the driver zero-fills or remaps, marks it populated, and
            # from then on may legitimately transfer it again.  So each
            # access op below settles with the quarantine still active
            # (catching a revival that moved dead data) and releases the
            # touched blocks afterwards.
            if op == "host_write":
                yield from cuda.host_write(buf)
                yield from settle()
                checker.release(buf.blocks)
            elif op == "host_write_part":
                offset = rng.randrange(0, buf.nbytes - MIB)
                length = rng.randrange(MIB, buf.nbytes - offset + 1)
                rng_ = buf.subrange(offset, length)
                yield from cuda.host_write(buf, rng_)
                yield from settle()
                checker.release(buf.blocks_in(rng_))
            elif op == "host_read":
                # Reads of dead data are legal with a non-strict oracle
                # and must be serviced by zero-fill, not a transfer.
                yield from cuda.host_read(buf)
                yield from settle()
                checker.release(buf.blocks)
            elif op == "prefetch":
                cuda.prefetch_async(buf)
                yield from settle()
                checker.release(buf.blocks)
            elif op == "kernel_read":
                cuda.launch(_kernel(f"read{step}", buf, AccessMode.READ))
                yield from settle()
                checker.release(buf.blocks)
            elif op == "kernel_write":
                cuda.launch(_kernel(f"write{step}", buf, AccessMode.WRITE))
                yield from settle()
                checker.release(buf.blocks)
            elif op == "discard_eager":
                # Streams are quiescent here, so everything recorded
                # between now and the next check comes from the discard
                # itself — which must never move data.  The quarantine
                # then persists until the next access revives the blocks.
                cuda.discard_async(buf, mode="eager")
                checker.quarantine(buf.blocks)
                yield from settle()
            elif op == "discard_lazy":
                # §5.2 contract: lazy discard, then the mandatory
                # prefetch, then the overwrite — checking after each.
                # The prefetch ends the dead window: it re-arms sw_dirty,
                # announcing reuse, so the driver may transfer again.
                cuda.discard_async(buf, mode="lazy")
                checker.quarantine(buf.blocks)
                yield from settle()
                checker.release(buf.blocks)
                cuda.prefetch_async(buf)
                yield from settle()
                cuda.launch(_kernel(f"refill{step}", buf, AccessMode.WRITE))
                yield from settle()
            elif op == "free_realloc":
                # Freeing dead blocks must not move them either; check
                # before dropping them from quarantine.  VA (and hence
                # block indices) may be reused by the next allocation.
                cuda.free(buf)
                checker.check()
                checker.release(buf.blocks)
                nblocks = rng.randrange(3, 7)
                replacement = cuda.malloc_managed(
                    nblocks * BLOCK_MIB * MIB, f"buf{step}"
                )
                buffers[buffers.index(buf)] = replacement
                yield from settle()

        yield from cuda.synchronize()
        checker.check()

    return program


CONFIGS = {
    "default": {},
    "no-discard-queue": {"discarded_queue_enabled": False},
    "fifo-eviction": {"eviction_policy": "fifo"},
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", range(6))
def test_random_programs_preserve_invariants(seed, config_name):
    config = UvmDriverConfig(
        strict_lazy=False,
        keep_transfer_records=True,
        **CONFIGS[config_name],
    )
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=16), driver_config=config)
    runtime.run(random_program(random.Random(seed), steps=40))


def test_discarded_block_revived_without_transfer():
    """Directed: discard, evict pressure, re-access — zero new traffic
    for the discarded buffer until it is rewritten."""
    config = UvmDriverConfig(strict_lazy=False, keep_transfer_records=True)
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=16), driver_config=config)

    def program(cuda: CudaRuntime):
        checker = InvariantChecker(cuda)
        dead = cuda.malloc_managed(6 * BLOCK_MIB * MIB, "dead")
        live = cuda.malloc_managed(6 * BLOCK_MIB * MIB, "live")
        yield from cuda.host_write(dead)
        cuda.prefetch_async(dead)
        yield from cuda.synchronize()
        cuda.discard_async(dead, mode="eager")
        yield from cuda.synchronize()
        checker.check()
        checker.quarantine(dead.blocks)
        # Pressure the GPU so the discarded frames must be reclaimed...
        yield from cuda.host_write(live)
        cuda.prefetch_async(live)
        yield from cuda.synchronize()
        checker.check()
        # ...and re-read the dead buffer: zero-fill, never a migration.
        cuda.launch(_kernel("reread", dead, AccessMode.READ))
        yield from cuda.synchronize()
        checker.check()
        assert checker.quarantined  # still dead: nothing rewrote it

    runtime.run(program)
