"""Tests for the virtual-memory substrate: VA layout and page tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidAddressError, MappingError
from repro.units import BIG_PAGE, MIB
from repro.vm import AddressSpace, PageTable, PteState, VaRange
from repro.vm.page_table import MappingCosts


class TestVaRange:
    def test_basic_geometry(self):
        rng = VaRange(0x1000, 0x2000)
        assert rng.end == 0x3000
        assert 0x1000 in rng
        assert 0x2fff in rng
        assert 0x3000 not in rng

    def test_validation(self):
        with pytest.raises(InvalidAddressError):
            VaRange(-1, 10)
        with pytest.raises(InvalidAddressError):
            VaRange(0, -1)

    def test_contains_and_overlaps(self):
        outer = VaRange(0, 100)
        inner = VaRange(10, 20)
        disjoint = VaRange(200, 10)
        assert outer.contains_range(inner)
        assert not inner.contains_range(outer)
        assert outer.overlaps(inner)
        assert not outer.overlaps(disjoint)

    def test_intersection(self):
        a = VaRange(0, 100)
        b = VaRange(50, 100)
        inter = a.intersection(b)
        assert inter.start == 50 and inter.length == 50
        assert a.intersection(VaRange(500, 10)).length == 0

    def test_subrange(self):
        rng = VaRange(1000, 100)
        sub = rng.subrange(10, 20)
        assert sub.start == 1010 and sub.length == 20
        with pytest.raises(InvalidAddressError):
            rng.subrange(90, 20)

    def test_block_span_partial(self):
        rng = VaRange(BIG_PAGE // 2, BIG_PAGE)
        first, last = rng.block_span()
        assert (first, last) == (0, 2)
        assert list(rng.blocks()) == [0, 1]

    def test_full_blocks_ignores_partials(self):
        """§5.4's alignment filter."""
        rng = VaRange(BIG_PAGE // 2, 3 * BIG_PAGE)
        assert list(rng.full_blocks()) == [1, 2]
        aligned = VaRange(BIG_PAGE, 2 * BIG_PAGE)
        assert list(aligned.full_blocks()) == [1, 2]

    def test_empty_range(self):
        rng = VaRange(BIG_PAGE, 0)
        assert rng.num_blocks() == 0
        assert list(rng.blocks()) == []

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=1, max_value=2**32),
    )
    def test_full_blocks_subset_of_blocks(self, start, length):
        rng = VaRange(start, length)
        full = set(rng.full_blocks())
        touched = set(rng.blocks())
        assert full <= touched
        # Every full block is entirely inside the range.
        for index in full:
            assert rng.contains_range(VaRange(index * BIG_PAGE, BIG_PAGE))


class TestAddressSpace:
    def test_allocations_are_block_aligned_and_disjoint(self):
        space = AddressSpace()
        a = space.allocate(3 * MIB)
        b = space.allocate(1 * MIB)
        assert a.start % BIG_PAGE == 0
        assert b.start % BIG_PAGE == 0
        assert not a.overlaps(b)
        # Distinct allocations never share a 2 MiB block.
        assert set(a.blocks()).isdisjoint(set(b.blocks()))

    def test_find(self):
        space = AddressSpace()
        rng = space.allocate(MIB)
        assert space.find(rng.start) == rng
        with pytest.raises(InvalidAddressError):
            space.find(rng.start - 1)

    def test_free_removes_range(self):
        space = AddressSpace()
        rng = space.allocate(MIB)
        space.free(rng)
        assert rng not in space.live_ranges
        with pytest.raises(InvalidAddressError):
            space.free(rng)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidAddressError):
            AddressSpace().allocate(0)

    @given(st.lists(st.integers(min_value=1, max_value=64 * MIB), min_size=1, max_size=40))
    def test_no_allocation_overlap(self, sizes):
        space = AddressSpace()
        ranges = [space.allocate(s) for s in sizes]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1 :]:
                assert not a.overlaps(b)


class TestPageTable:
    def test_map_unmap_cycle(self):
        table = PageTable("gpu0")
        assert table.state(5) is PteState.UNMAPPED
        cost = table.map_block(5)
        assert cost > 0
        assert table.is_mapped(5)
        assert table.mapped_blocks == 1
        cost = table.unmap_block(5)
        assert cost > 0
        assert not table.is_mapped(5)

    def test_double_map_rejected(self):
        table = PageTable("gpu0")
        table.map_block(1)
        with pytest.raises(MappingError):
            table.map_block(1)

    def test_unmap_unmapped_rejected(self):
        with pytest.raises(MappingError):
            PageTable("gpu0").unmap_block(1)

    def test_counters(self):
        table = PageTable("gpu0")
        table.map_block(1)
        table.map_block(2)
        table.unmap_block(1)
        assert table.map_count == 2
        assert table.unmap_count == 1
        assert table.tlb_invalidations == 1
        table.reset_counters()
        assert table.map_count == 0

    def test_unmap_without_tlb_is_cheaper(self):
        """The batched-shootdown path eager discard uses (§5.1)."""
        table = PageTable("gpu0")
        table.map_block(1)
        table.map_block(2)
        with_tlb = table.unmap_block(1, invalidate_tlb=True)
        without = table.unmap_block(2, invalidate_tlb=False)
        assert without < with_tlb
        assert table.tlb_invalidations == 1

    def test_custom_costs(self):
        costs = MappingCosts(
            map_block=1.0, unmap_block=2.0, tlb_invalidate=3.0, batch_overhead=0.5
        )
        table = PageTable("gpu0", costs)
        assert table.map_block(1) == pytest.approx(1.5)
        assert table.unmap_block(1, invalidate_tlb=False) == pytest.approx(2.0)
        assert table.tlb_invalidate() == pytest.approx(3.0)
