"""Tests for the interconnect bandwidth models (Figure 4's substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect import (
    Link,
    TransferDirection,
    nvlink_gen3,
    pcie_gen3,
    pcie_gen4,
)
from repro.units import BIG_PAGE, GB, KIB, MIB


class TestLink:
    def test_effective_bandwidth_half_saturation(self):
        link = Link("test", peak_bandwidth=10 * GB, half_size=128 * KIB)
        assert link.effective_bandwidth(128 * KIB) == pytest.approx(5 * GB)

    def test_effective_bandwidth_approaches_peak(self):
        link = Link("test", peak_bandwidth=10 * GB, half_size=128 * KIB)
        assert link.effective_bandwidth(1 * GB) > 0.99 * 10 * GB

    def test_transfer_time_includes_latency(self):
        link = Link("test", peak_bandwidth=10 * GB, latency=5e-6)
        assert link.transfer_time(0) == 0.0
        tiny = link.transfer_time(1)
        assert tiny > 5e-6

    def test_transfer_time_monotone_in_size(self):
        link = pcie_gen4()
        sizes = [4 * KIB, 64 * KIB, MIB, 16 * MIB, 256 * MIB]
        times = [link.transfer_time(s) for s in sizes]
        assert times == sorted(times)

    def test_default_chunk_capped_at_big_page(self):
        link = pcie_gen4()
        # A 1 GiB transfer coalesced at 2 MiB chunks matches explicit.
        assert link.transfer_time(512 * BIG_PAGE) == pytest.approx(
            link.transfer_time(512 * BIG_PAGE, chunk=BIG_PAGE)
        )

    def test_measured_throughput_below_peak(self):
        link = pcie_gen4()
        assert link.measured_throughput(GB) < link.peak_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("bad", peak_bandwidth=0)
        with pytest.raises(ValueError):
            Link("bad", peak_bandwidth=1, half_size=0)
        with pytest.raises(ValueError):
            Link("bad", peak_bandwidth=1, latency=-1)
        link = pcie_gen4()
        with pytest.raises(ValueError):
            link.transfer_time(-1)
        with pytest.raises(ValueError):
            link.effective_bandwidth(0)

    @given(st.integers(min_value=1, max_value=2**34))
    def test_throughput_never_exceeds_peak(self, nbytes):
        link = pcie_gen4()
        assert link.measured_throughput(nbytes) < link.peak_bandwidth

    @given(
        st.integers(min_value=4 * KIB, max_value=2**30),
        st.integers(min_value=4 * KIB, max_value=2**30),
    )
    def test_bigger_chunks_never_slower(self, a, b):
        link = pcie_gen3()
        small, big = sorted((a, b))
        assert link.effective_bandwidth(big) >= link.effective_bandwidth(small)


class TestPresets:
    def test_pcie4_doubles_pcie3(self):
        assert pcie_gen4().peak_bandwidth == pytest.approx(
            2 * pcie_gen3().peak_bandwidth, rel=0.01
        )

    def test_pcie4_peak_is_paper_value(self):
        """§7.1: 'PCIe-4 throughput is bottlenecked at 25GB/s'."""
        assert pcie_gen4().peak_bandwidth == 25 * GB

    def test_nvlink_faster_than_pcie(self):
        assert nvlink_gen3().peak_bandwidth > pcie_gen4().peak_bandwidth
        assert nvlink_gen3().latency < pcie_gen4().latency


class TestTransferDirection:
    def test_shorthand(self):
        assert TransferDirection.HOST_TO_DEVICE.short == "h2d"
        assert TransferDirection.DEVICE_TO_HOST.short == "d2h"
