"""Tests for CUDA streams and events: ordering, overlap, synchronization."""

import pytest

from repro.cuda.stream import CudaEvent, CudaStream, synchronize_all
from repro.engine import Environment


def make_env_stream():
    env = Environment()
    return env, CudaStream(env, "s0")


def op(env, duration, trace, tag):
    def body():
        yield env.timeout(duration)
        trace.append((tag, env.now))
        return tag

    return body


class TestStreamOrdering:
    def test_fifo_execution(self):
        env, stream = make_env_stream()
        trace = []
        for i in range(3):
            stream.enqueue(op(env, 1.0, trace, i))
        env.run()
        assert trace == [(0, 1.0), (1, 2.0), (2, 3.0)]
        assert stream.ops_enqueued == 3

    def test_enqueue_returns_process_with_value(self):
        env, stream = make_env_stream()
        trace = []
        process = stream.enqueue(op(env, 1.0, trace, "result"))
        env.run()
        assert process.value == "result"

    def test_two_streams_overlap(self):
        env = Environment()
        a = CudaStream(env, "a")
        b = CudaStream(env, "b")
        trace = []
        a.enqueue(op(env, 2.0, trace, "a0"))
        b.enqueue(op(env, 2.0, trace, "b0"))
        env.run()
        assert env.now == pytest.approx(2.0)  # parallel, not 4.0
        assert {t for t, _ in trace} == {"a0", "b0"}

    def test_wait_for_cross_stream_dependency(self):
        env = Environment()
        producer = CudaStream(env, "producer")
        consumer = CudaStream(env, "consumer")
        trace = []
        produced = producer.enqueue(op(env, 3.0, trace, "produce"))
        consumer.wait_for(produced)
        consumer.enqueue(op(env, 1.0, trace, "consume"))
        env.run()
        assert trace == [("produce", 3.0), ("consume", 4.0)]

    def test_synchronize_waits_for_tail(self):
        env, stream = make_env_stream()
        trace = []
        stream.enqueue(op(env, 2.0, trace, "x"))

        def host():
            yield from stream.synchronize()
            trace.append(("host", env.now))

        env.process(host())
        env.run()
        assert trace[-1] == ("host", 2.0)

    def test_synchronize_empty_stream(self):
        env, stream = make_env_stream()

        def host():
            yield from stream.synchronize()
            yield env.timeout(0)

        env.process(host())
        env.run()
        assert stream.idle


class TestCudaEvent:
    def test_record_and_wait(self):
        env = Environment()
        a = CudaStream(env, "a")
        b = CudaStream(env, "b")
        trace = []
        a.enqueue(op(env, 2.0, trace, "a0"))
        event = CudaEvent(env, "checkpoint")
        a.record_event(event)
        b.wait_event(event)
        b.enqueue(op(env, 1.0, trace, "b0"))
        env.run()
        assert trace == [("a0", 2.0), ("b0", 3.0)]
        assert event.recorded

    def test_wait_on_unrecorded_event_is_noop(self):
        env = Environment()
        stream = CudaStream(env, "s")
        trace = []
        stream.wait_event(CudaEvent(env))
        stream.enqueue(op(env, 1.0, trace, "x"))
        env.run()
        assert trace == [("x", 1.0)]

    def test_record_on_empty_stream_fires_immediately(self):
        env = Environment()
        stream = CudaStream(env, "s")
        event = CudaEvent(env)
        stream.record_event(event)
        other = CudaStream(env, "o")
        trace = []
        other.wait_event(event)
        other.enqueue(op(env, 1.0, trace, "y"))
        env.run()
        assert trace == [("y", 1.0)]


class TestDeviceSynchronize:
    def test_waits_for_all_streams(self):
        env = Environment()
        streams = [CudaStream(env, f"s{i}") for i in range(3)]
        trace = []
        for i, stream in enumerate(streams):
            stream.enqueue(op(env, float(i + 1), trace, i))

        def host():
            yield from synchronize_all(env, streams)
            trace.append(("synced", env.now))

        env.process(host())
        env.run()
        assert trace[-1] == ("synced", 3.0)

    def test_no_streams(self):
        env = Environment()

        def host():
            yield from synchronize_all(env, [])
            yield env.timeout(1.0)

        env.process(host())
        env.run()
        assert env.now == pytest.approx(1.0)


class TestErrorPropagation:
    def test_failed_op_poisons_later_ops(self):
        env, stream = make_env_stream()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("kernel fault")

        def innocent():
            yield env.timeout(1.0)

        stream.enqueue(failing)
        stream.enqueue(innocent)
        with pytest.raises(ValueError, match="kernel fault"):
            env.run()
