"""Functional tests for the VectorAdd workload (Listings 1/2/3)."""

import numpy as np
import pytest

from conftest import tiny_gpu

from repro.cuda.runtime import CudaRuntime
from repro.workloads.vector_add import explicit_vector_add, uvm_vector_add

N = 256 * 1024  # 1 MiB per vector


def run_program(factory):
    runtime = CudaRuntime(gpu=tiny_gpu())
    result = {}

    def program(cuda):
        result["out"] = yield from factory(cuda)

    runtime.run(program)
    return runtime, result["out"]


class TestExplicit:
    def test_computes_sum(self):
        runtime, out = run_program(lambda cuda: explicit_vector_add(cuda, N))
        expected = np.arange(N, dtype=np.float32) + 2.0
        assert np.allclose(out, expected)

    def test_traffic_is_three_vectors(self):
        runtime, _ = run_program(lambda cuda: explicit_vector_add(cuda, N))
        nbytes = N * 4
        assert runtime.driver.traffic.bytes_h2d == 2 * nbytes
        assert runtime.driver.traffic.bytes_d2h == nbytes

    def test_device_memory_returned(self):
        runtime, _ = run_program(lambda cuda: explicit_vector_add(cuda, N))
        assert runtime.driver.gpu_free_bytes("gpu0") == runtime.gpu.memory_bytes


class TestUvm:
    @pytest.mark.parametrize("prefetch", [True, False])
    def test_computes_sum(self, prefetch):
        runtime, out = run_program(
            lambda cuda: uvm_vector_add(cuda, N, prefetch=prefetch)
        )
        expected = np.arange(N, dtype=np.float32) + 2.0
        assert np.allclose(out, expected)

    def test_prefetch_avoids_gpu_faults(self):
        runtime, _ = run_program(lambda cuda: uvm_vector_add(cuda, N, prefetch=True))
        assert runtime.driver.counters["gpu_fault_batches"] == 0

    def test_no_prefetch_faults_instead(self):
        runtime, _ = run_program(lambda cuda: uvm_vector_add(cuda, N, prefetch=False))
        assert runtime.driver.counters["gpu_fault_batches"] > 0

    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_listing3_reuse_with_discard(self, mode):
        runtime, out = run_program(
            lambda cuda: uvm_vector_add(cuda, N, reuse_with_discard=mode)
        )
        # Second kernel computed A = B + C = 2 + (A0 + 2).
        expected = np.arange(N, dtype=np.float32) + 4.0
        assert np.allclose(out, expected)
        assert runtime.driver.counters["discarded_blocks"] > 0
        # Correct usage: no misuse, no corruption.
        assert runtime.driver.counters["lazy_misuses"] == 0
        assert runtime.driver.oracle.corruption_count == 0
