"""Tests for the §2.3 cache-coherent remote-access mode."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.instrument.traffic import TransferReason
from repro.units import MIB


def run_kernel(remote, reads=2, buffer_mib=16, memory_mib=64):
    runtime = CudaRuntime(gpu=tiny_gpu(memory_mib), remote_access=remote)
    buffer = runtime.malloc_managed(buffer_mib * MIB, "data")

    def program(cuda):
        yield from cuda.host_write(buffer)
        for i in range(reads):
            cuda.launch(
                KernelSpec(
                    f"read_{i}",
                    [BufferAccess(buffer, AccessMode.READ)],
                    flops=1e6,
                )
            )
        yield from cuda.synchronize()

    runtime.run(program)
    return runtime, buffer


class TestRemoteAccessMode:
    def test_no_migration_no_faults(self):
        runtime, buffer = run_kernel(remote=True)
        assert runtime.driver.counters["gpu_fault_batches"] == 0
        # Data never moved: still CPU-resident.
        assert all(b.on_cpu for b in buffer.blocks)

    def test_remote_traffic_recorded_per_access(self):
        runtime, _ = run_kernel(remote=True, reads=3, buffer_mib=8)
        remote = runtime.driver.traffic.bytes_for(TransferReason.REMOTE_ACCESS)
        # Every pass re-reads the whole buffer over the link.
        assert remote == 3 * 8 * MIB
        assert runtime.executor.remote_bytes == remote

    def test_migration_mode_pays_once(self):
        runtime, buffer = run_kernel(remote=False, reads=3)
        fault = runtime.driver.traffic.bytes_for(TransferReason.FAULT_MIGRATION)
        assert fault == buffer.nbytes  # one migration, then local re-use

    def test_reuse_favours_migration(self):
        """§2.3: remote access loses once data is re-used locally."""
        remote, _ = run_kernel(remote=True, reads=6)
        migrate, _ = run_kernel(remote=False, reads=6)
        assert migrate.elapsed < remote.elapsed

    def test_single_touch_streams_compete(self):
        """For single-touch streaming, the two modes are comparable."""
        remote, _ = run_kernel(remote=True, reads=1)
        migrate, _ = run_kernel(remote=False, reads=1)
        assert remote.elapsed < 2.5 * migrate.elapsed

    def test_untouched_blocks_populated_as_host_zeros(self):
        runtime = CudaRuntime(gpu=tiny_gpu(), remote_access=True)
        buffer = runtime.malloc_managed(4 * MIB, "fresh")

        def program(cuda):
            cuda.launch(
                KernelSpec(
                    "write", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e6
                )
            )
            yield from cuda.synchronize()

        runtime.run(program)
        assert all(b.on_cpu and b.populated for b in buffer.blocks)

    def test_discard_still_valuable_with_coherent_link(self):
        """§3.2: 'a UVM system that supports cache-coherent remote memory
        accesses still needs a discard directive'.

        Here migration is used for locality (prefetch), and the dead
        buffer's eviction RMTs exist regardless of the coherent link —
        discard removes them.
        """

        def cycle(discard):
            runtime = CudaRuntime(gpu=tiny_gpu(32), remote_access=True)
            scratch = runtime.malloc_managed(24 * MIB, "scratch")
            other = runtime.malloc_managed(24 * MIB, "other")

            def program(cuda):
                cuda.prefetch_async(scratch)  # placed locally for re-use
                cuda.launch(
                    KernelSpec(
                        "produce",
                        [BufferAccess(scratch, AccessMode.WRITE)],
                        flops=1e6,
                    )
                )
                if discard:
                    cuda.discard_async(scratch, mode="eager")
                cuda.prefetch_async(other)
                cuda.launch(
                    KernelSpec(
                        "pressure",
                        [BufferAccess(other, AccessMode.WRITE)],
                        flops=1e6,
                    )
                )
                yield from cuda.synchronize()

            runtime.run(program)
            return runtime.driver.traffic.bytes_for(TransferReason.EVICTION)

        assert cycle(discard=False) > 0
        assert cycle(discard=True) == 0
