"""Tests for managed/device buffers and the CUDA API cost model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cuda.costs import ApiCostModel
from repro.cuda.memory import DeviceBuffer, ManagedBuffer
from repro.errors import InvalidAddressError, SimulationError
from repro.units import BIG_PAGE, MB, MIB, us
from repro.vm.layout import AddressSpace


def make_buffer(nbytes, name="buf"):
    space = AddressSpace()
    return ManagedBuffer(name, space.allocate(nbytes))


class TestManagedBuffer:
    def test_block_decomposition(self):
        buffer = make_buffer(5 * MIB)  # 2.5 blocks
        assert len(buffer.blocks) == 3
        assert [b.used_bytes for b in buffer.blocks] == [BIG_PAGE, BIG_PAGE, MIB]
        assert buffer.nbytes == 5 * MIB
        assert len(buffer) == 5 * MIB

    def test_small_buffer_single_block(self):
        buffer = make_buffer(4096)
        assert len(buffer.blocks) == 1
        assert buffer.blocks[0].used_bytes == 4096

    def test_blocks_backref_buffer(self):
        buffer = make_buffer(4 * MIB)
        assert all(b.buffer is buffer for b in buffer.blocks)

    def test_blocks_in_subrange(self):
        buffer = make_buffer(8 * MIB)
        rng = buffer.subrange(2 * MIB, 2 * MIB)
        selected = buffer.blocks_in(rng)
        assert selected == buffer.blocks[1:2]

    def test_blocks_in_partial_overlap(self):
        buffer = make_buffer(8 * MIB)
        rng = buffer.subrange(MIB, 2 * MIB)  # straddles blocks 0 and 1
        assert buffer.blocks_in(rng) == buffer.blocks[0:2]

    def test_blocks_in_foreign_range_rejected(self):
        buffer = make_buffer(2 * MIB)
        from repro.vm.layout import VaRange

        with pytest.raises(InvalidAddressError):
            buffer.blocks_in(VaRange(0, 100))

    def test_use_after_free_rejected(self):
        buffer = make_buffer(2 * MIB)
        buffer.freed = True
        with pytest.raises(SimulationError):
            buffer.blocks_in()
        with pytest.raises(SimulationError):
            buffer.subrange()

    def test_resident_bytes_on(self):
        buffer = make_buffer(4 * MIB)
        assert buffer.resident_bytes_on("gpu0") == 0
        buffer.blocks[0].residency = "gpu0"
        assert buffer.resident_bytes_on("gpu0") == BIG_PAGE

    def test_backing_array(self):
        array = np.zeros(1024, dtype=np.float32)
        space = AddressSpace()
        buffer = ManagedBuffer("a", space.allocate(array.nbytes), array=array)
        assert buffer.array is array

    @given(st.integers(min_value=1, max_value=64 * MIB))
    def test_block_bytes_sum_to_buffer_size(self, nbytes):
        buffer = make_buffer(nbytes)
        assert sum(b.used_bytes for b in buffer.blocks) == nbytes
        indices = [b.index for b in buffer.blocks]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


class TestDeviceBuffer:
    def test_basic(self):
        buffer = DeviceBuffer("d", 1024, "gpu0")
        assert len(buffer) == 1024
        assert not buffer.freed

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidAddressError):
            DeviceBuffer("d", 0, "gpu0")


class TestApiCostModel:
    def test_table2_calibration_points(self):
        costs = ApiCostModel()
        assert costs.malloc_device(2 * MB) == pytest.approx(us(48))
        assert costs.malloc_device(128 * MB) == pytest.approx(us(939))
        assert costs.free_device(2 * MB) == pytest.approx(us(32))
        assert costs.free_device(128 * MB) == pytest.approx(us(1184))

    def test_interpolation_between_points(self):
        costs = ApiCostModel()
        mid = costs.malloc_device(16 * MB)
        assert us(184) < mid < us(726)

    def test_below_first_point_clamped(self):
        costs = ApiCostModel()
        assert costs.malloc_device(1024) == pytest.approx(us(48))

    def test_extrapolation_beyond_last_point(self):
        costs = ApiCostModel()
        assert costs.malloc_device(512 * MB) >= costs.malloc_device(128 * MB)

    def test_malloc_managed_is_cheap_and_size_independent(self):
        costs = ApiCostModel()
        assert costs.malloc_managed(2 * MB) == costs.malloc_managed(2048 * MB)
        assert costs.malloc_managed(2 * MB) < costs.malloc_device(2 * MB)

    def test_validation(self):
        costs = ApiCostModel()
        with pytest.raises(ValueError):
            costs.malloc_device(0)
        with pytest.raises(ValueError):
            costs.malloc_managed(-1)

    @given(st.integers(min_value=1, max_value=2 * 1024 * MB))
    def test_costs_positive_and_monotone_sampling(self, nbytes):
        costs = ApiCostModel()
        assert costs.malloc_device(nbytes) > 0
        assert costs.free_device(nbytes) > 0
