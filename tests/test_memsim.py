"""Tests for the physical-memory substrate (frames, zero-fill model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError, SimulationError
from repro.memsim import Frame, FrameAllocator, ZeroFillModel
from repro.units import BIG_PAGE, GB, MIB


class TestFrameAllocator:
    def test_capacity_in_frames(self):
        allocator = FrameAllocator("gpu0", 64 * MIB)
        assert allocator.capacity_frames == 32
        assert allocator.free_frames == 32
        assert allocator.used_frames == 0

    def test_allocate_and_free_round_trip(self):
        allocator = FrameAllocator("gpu0", 8 * MIB)
        frames = [allocator.allocate() for _ in range(4)]
        assert allocator.free_frames == 0
        assert allocator.used_bytes == 8 * MIB
        for frame in frames:
            allocator.free(frame)
        assert allocator.free_frames == 4

    def test_exhaustion_raises(self):
        allocator = FrameAllocator("gpu0", 2 * MIB)
        allocator.allocate()
        with pytest.raises(OutOfMemoryError):
            allocator.allocate()

    def test_double_free_rejected(self):
        allocator = FrameAllocator("gpu0", 4 * MIB)
        frame = allocator.allocate()
        allocator.free(frame)
        with pytest.raises(SimulationError):
            allocator.free(frame)

    def test_cross_owner_free_rejected(self):
        a = FrameAllocator("gpu0", 4 * MIB)
        b = FrameAllocator("gpu1", 4 * MIB)
        frame = a.allocate()
        with pytest.raises(SimulationError):
            b.free(frame)

    def test_frame_indices_unique(self):
        allocator = FrameAllocator("gpu0", 16 * MIB)
        frames = [allocator.allocate() for _ in range(8)]
        assert len({f.index for f in frames}) == 8

    def test_freed_frame_resets_prepared(self):
        allocator = FrameAllocator("gpu0", 4 * MIB)
        frame = allocator.allocate()
        frame.prepared = True
        allocator.free(frame)
        assert not frame.prepared
        assert not frame.allocated

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator("gpu0", -1)

    def test_reserve_shrinks_capacity(self):
        allocator = FrameAllocator("gpu0", 16 * MIB)
        allocator.reserve(4)
        assert allocator.capacity_frames == 4
        assert allocator.free_frames == 4
        with pytest.raises(OutOfMemoryError):
            allocator.reserve(5)

    def test_unreserve_restores_capacity(self):
        allocator = FrameAllocator("gpu0", 16 * MIB)
        allocator.reserve(6)
        allocator.unreserve(6)
        assert allocator.capacity_frames == 8
        assert allocator.free_frames == 8

    def test_reserve_validation(self):
        allocator = FrameAllocator("gpu0", 4 * MIB)
        with pytest.raises(ValueError):
            allocator.reserve(-1)
        with pytest.raises(ValueError):
            allocator.unreserve(-1)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_free_count_invariant(self, actions):
        """free + used == capacity after any alloc/free sequence."""
        allocator = FrameAllocator("gpu0", 32 * MIB)
        live = []
        for do_alloc in actions:
            if do_alloc:
                try:
                    live.append(allocator.allocate())
                except OutOfMemoryError:
                    assert allocator.free_frames == 0
            elif live:
                allocator.free(live.pop())
            assert allocator.free_frames + allocator.used_frames == (
                allocator.capacity_frames
            )
            assert allocator.used_frames == len(live)


class TestFrame:
    def test_initial_state(self):
        frame = Frame("gpu0", 7)
        assert frame.owner == "gpu0"
        assert frame.index == 7
        assert frame.allocated
        assert not frame.prepared


class TestZeroFillModel:
    def test_zero_time_scales_with_bytes(self):
        model = ZeroFillModel(bandwidth=100 * GB, command_overhead=0.0)
        assert model.zero_time(100 * GB) == pytest.approx(1.0)

    def test_command_overhead_per_chunk(self):
        model = ZeroFillModel(bandwidth=1e30, command_overhead=1e-6)
        # 8 MiB in 2 MiB chunks = 4 commands.
        assert model.zero_time(8 * MIB) == pytest.approx(4e-6)

    def test_zero_bytes_is_free(self):
        assert ZeroFillModel().zero_time(0) == 0.0

    def test_block_zero_time_matches_zero_time(self):
        model = ZeroFillModel()
        assert model.block_zero_time() == pytest.approx(
            model.zero_time(BIG_PAGE, BIG_PAGE)
        )

    def test_bigger_chunks_are_cheaper(self):
        """The §5.4 motivation: large contiguous zeroing wins."""
        model = ZeroFillModel()
        coarse = model.zero_time(64 * MIB, chunk=BIG_PAGE)
        fine = model.zero_time(64 * MIB, chunk=4096)
        assert coarse < fine

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeroFillModel(bandwidth=0)
        with pytest.raises(ValueError):
            ZeroFillModel(command_overhead=-1)
        model = ZeroFillModel()
        with pytest.raises(ValueError):
            model.zero_time(-1)
        with pytest.raises(ValueError):
            model.zero_time(100, chunk=0)
