"""Tests for the §4.1 semantics oracle and the discard advisor."""

import pytest

from repro.access import AccessMode
from repro.core import DataOracle, DiscardAdvisor
from repro.core.advisor import DiscardSuggestion
from repro.driver.va_block import DiscardKind, VaBlock
from repro.errors import DataCorruptionError
from repro.units import BIG_PAGE


def make_block(index=0):
    return VaBlock(index, BIG_PAGE)


class TestDataOracle:
    def test_plain_write_read_is_clean(self):
        oracle = DataOracle()
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        oracle.validate_read(1.0, block)
        assert oracle.events == []

    def test_read_after_discard_is_legal_but_flagged(self):
        """§4.1: reads may return zeros or stale values — legal."""
        oracle = DataOracle()
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        block.mark_discarded(DiscardKind.EAGER)
        oracle.record_discard(1.0, block)
        oracle.validate_read(2.0, block)
        kinds = [e.kind for e in oracle.events]
        assert kinds == ["read_after_discard"]
        assert oracle.corruption_count == 0

    def test_lost_write_corrupts(self):
        oracle = DataOracle()
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        oracle.record_data_loss(1.0, block, "reclaimed after unnotified write")
        oracle.validate_read(2.0, block)
        assert oracle.corruption_count == 1
        assert oracle.corrupted_read_count == 1
        assert block.index in oracle.corrupted_blocks

    def test_data_loss_without_guarantee_is_noop(self):
        """Dropping never-guaranteed data (zeros, stale) is fine."""
        oracle = DataOracle()
        block = make_block()
        oracle.record_data_loss(0.0, block, "nothing was promised")
        assert oracle.corruption_count == 0

    def test_strict_mode_raises_on_corrupted_read(self):
        oracle = DataOracle(strict=True)
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        oracle.record_data_loss(1.0, block, "lost")
        with pytest.raises(DataCorruptionError):
            oracle.validate_read(2.0, block)

    def test_new_write_heals_corruption(self):
        oracle = DataOracle(strict=True)
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        oracle.record_data_loss(1.0, block, "lost")
        block.record_write()
        oracle.record_write(2.0, block)
        oracle.validate_read(3.0, block)  # must not raise
        assert oracle.corrupted_read_count == 0

    def test_discard_waives_pending_corruption(self):
        oracle = DataOracle(strict=True)
        block = make_block()
        block.record_write()
        oracle.record_write(0.0, block)
        oracle.record_data_loss(1.0, block, "lost")
        block.mark_discarded(DiscardKind.EAGER)
        oracle.record_discard(2.0, block)
        oracle.validate_read(3.0, block)  # legal: nothing guaranteed now
        assert oracle.corrupted_read_count == 0


class TestDiscardAdvisor:
    def test_dead_at_end_suggested(self):
        advisor = DiscardAdvisor()
        advisor.observe("k1", "a", AccessMode.WRITE)
        advisor.observe("k2", "a", AccessMode.READ)
        suggestions = advisor.suggestions()
        # After k2, 'a' is never used again.
        assert any(
            s.buffer == "a" and s.after_kernel == "k2" and s.reuse_distance is None
            for s in suggestions
        )

    def test_overwrite_before_read_suggested(self):
        advisor = DiscardAdvisor()
        advisor.observe("produce", "buf", AccessMode.WRITE)
        advisor.observe("consume", "buf", AccessMode.READ)
        advisor.observe("other", "x", AccessMode.WRITE)
        advisor.observe("produce2", "buf", AccessMode.WRITE)
        suggestions = advisor.suggestions()
        consume = [s for s in suggestions if s.after_kernel == "consume"]
        assert len(consume) == 1
        assert consume[0].buffer == "buf"
        assert consume[0].reuse_distance == 1  # one intervening access

    def test_read_before_next_use_not_suggested(self):
        advisor = DiscardAdvisor()
        advisor.observe("k1", "buf", AccessMode.WRITE)
        advisor.observe("k2", "buf", AccessMode.READ)
        advisor.observe("k3", "buf", AccessMode.READ)  # still live after k2
        suggestions = [s for s in advisor.suggestions() if s.after_kernel == "k2"]
        assert suggestions == []

    def test_readwrite_successor_blocks_suggestion(self):
        """RMW reads old contents: discarding before it would corrupt."""
        advisor = DiscardAdvisor()
        advisor.observe("k1", "buf", AccessMode.WRITE)
        advisor.observe("k2", "buf", AccessMode.READWRITE)
        k1_suggestions = [s for s in advisor.suggestions() if s.after_kernel == "k1"]
        assert k1_suggestions == []

    def test_suggested_after_conservative_over_occurrences(self):
        """A repeated kernel gets a buffer only if safe at EVERY occurrence."""
        advisor = DiscardAdvisor()
        # Round 1: after 'stage' buf is overwritten next -> safe.
        advisor.observe("stage", "buf", AccessMode.READ)
        advisor.observe("writer", "buf", AccessMode.WRITE)
        # Round 2: after 'stage' buf is READ next -> unsafe.
        advisor.observe("stage", "buf", AccessMode.READ)
        advisor.observe("reader", "buf", AccessMode.READ)
        assert advisor.suggested_after("stage") == []

    def test_suggested_after_consistent_pattern(self):
        advisor = DiscardAdvisor()
        for _ in range(3):
            advisor.observe("consume", "temp", AccessMode.READ)
            advisor.observe("refill", "temp", AccessMode.WRITE)
        assert advisor.suggested_after("consume") == ["temp"]

    def test_trace_is_copied(self):
        advisor = DiscardAdvisor()
        advisor.observe("k", "b", AccessMode.READ)
        trace = advisor.trace
        trace.clear()
        assert len(advisor.trace) == 1

    def test_empty_trace(self):
        advisor = DiscardAdvisor()
        assert advisor.suggestions() == []
        assert advisor.suggested_after("anything") == []

    def test_suggestion_is_frozen_record(self):
        suggestion = DiscardSuggestion("b", "k", 0, None)
        with pytest.raises(AttributeError):
            suggestion.buffer = "c"  # type: ignore[misc]
