"""Serialize-once snapshot transport: blobs, stores, single-flight.

Four layers, mirroring ``tests/test_snapshot_fork.py``:

- **pickle parity** — the engine invariants ``__deepcopy__`` enforces
  must hold for pickling too: the ``_PENDING`` sentinel and
  ``NULL_TRACER`` unpickle to their module singletons, finished
  processes shed generators, live processes refuse loudly,
- **differential identity** — a blob-forked run must be byte-identical
  (``ExperimentResult`` and :func:`~repro.chaos.trace_digest`) to a
  deepcopy-forked run and a cold run, across the fig5 networks, a
  chaos schedule, and the vectorized-bitmap driver paths,
- **stores** — :class:`~repro.engine.snapshot.BlobStore` honours its
  byte budget with LRU eviction, refuses oversize blobs, counts every
  published build in ``builds.log``, and keeps builds single-flight
  across claimants; :class:`~repro.engine.snapshot.SnapshotPool`
  misses are single-flight across threads,
- **end to end** — two worker pools sharing one store directory build
  a prefix once and serve identical bytes; a multi-job
  :func:`~repro.harness.sweep.run_sweep` stays byte-identical to a
  serial one while building each distinct prefix exactly once.

As in ``test_snapshot_fork.py`` there is deliberately no tolerance
anywhere: the blob transport is advertised as a pure wall-clock
optimization, so a single diverging bit is a semantics bug.
"""

from __future__ import annotations

import copy
import pickle
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import trace_digest
from repro.driver.config import UvmDriverConfig
from repro.engine.core import Environment, _PENDING
from repro.engine.snapshot import (
    BlobStore,
    EngineSnapshot,
    SnapshotPool,
    resolve_prefix_snapshot,
)
from repro.errors import SnapshotError
from repro.harness.runner import run_uvm_body, run_uvm_prefix
from repro.harness.sweep import (
    SweepPoint,
    _driver_config,
    _gpu_spec,
    _install_chaos,
    _link,
    _point_plan,
    execute_point,
    prefix_key,
    run_sweep,
)
from repro.instrument.trace import NULL_TRACER

UVM_SYSTEMS = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")
FIG5_NETWORKS = ("vgg16", "darknet19", "resnet53", "rnn")

CHAOS_ITEMS = (
    ("seed", 7),
    ("link_degrade_interval", 5),
    ("transfer_fault_interval", 9),
    ("batch_reorder_probability", 0.3),
)


# ----------------------------------------------------------------------
# pickle parity with __deepcopy__
# ----------------------------------------------------------------------


class TestPickleParity:
    def test_pending_sentinel_identity_survives_pickle(self):
        blob = pickle.dumps(_PENDING, protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(blob) is _PENDING
        boxed = pickle.loads(pickle.dumps({"k": _PENDING}))
        assert boxed["k"] is _PENDING

    def test_null_tracer_identity_survives_pickle(self):
        assert pickle.loads(pickle.dumps(NULL_TRACER)) is NULL_TRACER
        boxed = pickle.loads(pickle.dumps([NULL_TRACER, NULL_TRACER]))
        assert boxed[0] is NULL_TRACER and boxed[1] is NULL_TRACER

    def test_live_process_refuses_pickle(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        with pytest.raises(SnapshotError):
            pickle.dumps(process)

    def test_finished_process_pickles_without_generator(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        process = env.process(proc())
        env.run()
        clone = pickle.loads(pickle.dumps(process))
        assert clone.value == "done"
        assert clone._generator is None

    def test_snapshot_blob_roundtrip(self):
        env = Environment()

        def proc():
            yield env.timeout(2.5)

        env.process(proc())
        env.run()
        snapshot = EngineSnapshot(env)
        clone = EngineSnapshot.from_blob(snapshot.to_blob())
        assert clone.to_blob() == snapshot.to_blob()
        assert clone.payload_nbytes() == len(snapshot.to_blob())
        forked = clone.fork()
        assert forked.now == env.now
        assert forked is not env

    def test_snapshot_refuses_unpicklable_quiescent_graph(self):
        class Opaque:
            def snapshot_precheck(self):
                return None

            def __reduce__(self):
                raise TypeError("cannot pickle Opaque")

        with pytest.raises(SnapshotError):
            EngineSnapshot(Opaque())


# ----------------------------------------------------------------------
# differential identity: blob fork == deepcopy fork == cold
# ----------------------------------------------------------------------


def _body_on(runtime, point):
    """Run ``point``'s measured body on ``runtime`` (a fork); return
    the result dict and the full observable trace digest."""
    plan = _point_plan(point)
    runtime.driver.reconfigure(_driver_config(point) or UvmDriverConfig())
    injector = _install_chaos(runtime, point)
    try:
        result = run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
    finally:
        if injector is not None:
            injector.uninstall()
    return result.to_dict(), trace_digest(runtime)


def _assert_blob_matches_deepcopy_and_cold(point):
    plan = _point_plan(point)
    assert plan is not None
    prefix = run_uvm_prefix(
        plan.setup, _gpu_spec(point), _link(point),
        driver_config=_driver_config(point),
    )
    snapshot = EngineSnapshot(prefix)
    deep_result, deep_digest = _body_on(copy.deepcopy(prefix), point)
    blob_result, blob_digest = _body_on(snapshot.fork(), point)
    assert blob_result == deep_result
    assert blob_digest == deep_digest
    if not point.chaos:
        # The cold monolithic path (execute_point) has no split-phase
        # chaos hook, so the cold cross-check is for fault-free points;
        # chaos identity is covered fork-vs-fork above and by
        # tests/test_chaos_subsystem.py's determinism suite.
        cold = execute_point(point)
        assert cold is not None
        assert blob_result == cold.to_dict()


class TestDifferentialIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        network=st.sampled_from(FIG5_NETWORKS),
        system=st.sampled_from(UVM_SYSTEMS),
    )
    def test_fig5_networks(self, network, system):
        _assert_blob_matches_deepcopy_and_cold(
            SweepPoint(
                workload=f"dl:{network}",
                system=system,
                batch_size=8,
                scale=0.03125,
                batches=4,
            )
        )

    @settings(max_examples=6, deadline=None)
    @given(
        workload=st.sampled_from(("fir", "radix", "hashjoin")),
        system=st.sampled_from(UVM_SYSTEMS),
        ratio=st.sampled_from((1.0, 2.0)),
    )
    def test_micro_vectorized_bitmap_driver(self, workload, system, ratio):
        # vectorized=True is the bitmap fast path; pin it explicitly so
        # the differential keeps covering it if the default ever flips.
        _assert_blob_matches_deepcopy_and_cold(
            SweepPoint(
                workload,
                system,
                ratio=ratio,
                scale=0.01,
                driver={"vectorized": True},
            )
        )

    def test_chaos_schedule(self):
        _assert_blob_matches_deepcopy_and_cold(
            SweepPoint(
                workload="fir",
                system="UvmDiscard",
                ratio=2.0,
                scale=0.01,
                chaos=CHAOS_ITEMS,
            )
        )

    def test_chaos_fork_matches_cold_chaos_run(self):
        # Cold chaos runs go through the split-phase _execute_chaos_point,
        # which *does* install the injector at the same boundary — so
        # here the cold cross-check applies too.
        point = SweepPoint(
            workload="fir",
            system="UvmDiscard",
            ratio=2.0,
            scale=0.01,
            chaos=CHAOS_ITEMS,
        )
        plan = _point_plan(point)
        prefix = run_uvm_prefix(
            plan.setup, _gpu_spec(point), _link(point),
            driver_config=_driver_config(point),
        )
        blob_result, _ = _body_on(EngineSnapshot(prefix).fork(), point)
        cold = execute_point(point)
        assert cold is not None
        assert blob_result == cold.to_dict()


# ----------------------------------------------------------------------
# BlobStore: budget, eviction, single-flight, build accounting
# ----------------------------------------------------------------------


class TestBlobStore:
    def test_fetch_or_claim_then_publish_then_hit(self, tmp_path):
        store = BlobStore(tmp_path)
        key = ("fir", "gen4", 0.01)
        blob, claim = store.fetch_or_claim(key)
        assert blob is None and claim is not None
        assert claim.publish(b"payload")
        other = BlobStore(tmp_path)
        got, claim2 = other.fetch_or_claim(key)
        assert got == b"payload" and claim2 is None
        assert store.get(key) == b"payload"
        assert not (tmp_path / f"{BlobStore.key_id(key)}.lock").exists()

    def test_abandon_releases_the_lock(self, tmp_path):
        store = BlobStore(tmp_path)
        key = ("radix",)
        _, claim = store.fetch_or_claim(key)
        claim.abandon()
        assert store.get(key) is None
        # The next claimant can build.
        blob, claim2 = store.fetch_or_claim(key)
        assert blob is None and claim2 is not None
        claim2.publish(b"x")
        assert store.get(key) == b"x"

    def test_lru_eviction_under_budget(self, tmp_path):
        store = BlobStore(tmp_path, max_bytes=100)
        keys = [("k", i) for i in range(3)]
        now = time.time()
        for i, key in enumerate(keys):
            _, claim = store.fetch_or_claim(key)
            claim.publish(b"x" * 40)
            # Deterministic recency without sleeping between publishes.
            path = store._blob_path(store.key_id(key))
            import os

            os.utime(path, (now + i, now + i))
        store._evict_over_budget()
        assert store.get(keys[0]) is None  # oldest evicted
        assert store.get(keys[1]) == b"x" * 40
        assert store.get(keys[2]) == b"x" * 40
        assert store.evicted >= 1
        stats = store.stats()
        assert stats["bytes"] <= 100

    def test_hit_refreshes_recency(self, tmp_path):
        import os

        store = BlobStore(tmp_path, max_bytes=100)
        a, b, c = ("a",), ("b",), ("c",)
        now = time.time()
        for i, key in enumerate((a, b)):
            _, claim = store.fetch_or_claim(key)
            claim.publish(b"x" * 40)
            path = store._blob_path(store.key_id(key))
            os.utime(path, (now - 100 + i, now - 100 + i))
        assert store.get(a) == b"x" * 40  # touch: a is now newest
        _, claim = store.fetch_or_claim(c)
        claim.publish(b"x" * 40)  # evicts to fit: b goes, a stays
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_oversize_blob_refused(self, tmp_path):
        store = BlobStore(tmp_path, max_bytes=10)
        _, claim = store.fetch_or_claim(("big",))
        assert not claim.publish(b"x" * 11)
        assert store.rejected_oversize == 1
        assert store.get(("big",)) is None
        # The lock was still released.
        assert not (tmp_path / f"{BlobStore.key_id(('big',))}.lock").exists()

    def test_builds_log_counts_one_line_per_publish(self, tmp_path):
        store = BlobStore(tmp_path)
        for key in (("a",), ("b",)):
            _, claim = store.fetch_or_claim(key)
            claim.publish(b"x")
        counts = store.build_counts()
        assert counts == {
            BlobStore.key_id(("a",)): 1,
            BlobStore.key_id(("b",)): 1,
        }
        stats = store.stats()
        assert stats["builds_total"] == 2
        assert stats["builds_distinct"] == 2

    def test_waiter_times_out_to_private_build(self, tmp_path):
        store = BlobStore(tmp_path, wait_seconds=0.05, poll_seconds=0.005)
        key = ("held",)
        _, claim = store.fetch_or_claim(key)  # lock held, never published
        blob, fallback_claim = store.fetch_or_claim(key)
        assert blob is None and fallback_claim is None
        assert store.wait_timeouts == 1
        claim.abandon()

    def test_stale_lock_is_broken_and_stolen(self, tmp_path):
        import os

        store = BlobStore(
            tmp_path, wait_seconds=5.0, stale_lock_seconds=0.01
        )
        key = ("dead-owner",)
        lock = tmp_path / f"{BlobStore.key_id(key)}.lock"
        lock.write_text("99999\n")
        past = time.time() - 60
        os.utime(lock, (past, past))
        blob, claim = store.fetch_or_claim(key)
        assert blob is None and claim is not None
        assert store.lock_steals == 1
        claim.publish(b"rebuilt")
        assert store.get(key) == b"rebuilt"

    def test_waiter_sees_published_blob(self, tmp_path):
        store = BlobStore(tmp_path, wait_seconds=5.0, poll_seconds=0.001)
        key = ("pub",)
        _, claim = store.fetch_or_claim(key)
        got = []

        def waiter():
            got.append(BlobStore(tmp_path, poll_seconds=0.001).fetch_or_claim(key))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        claim.publish(b"shared")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got[0][0] == b"shared" and got[0][1] is None


# ----------------------------------------------------------------------
# SnapshotPool single-flight
# ----------------------------------------------------------------------


class _Quiescent:
    def __init__(self, tag):
        self.tag = tag

    def snapshot_precheck(self):
        return None


class TestPoolSingleFlight:
    def test_same_thread_re_miss_returns_none(self):
        # The historical fork() contract: a single-threaded caller that
        # never admits can re-miss forever without deadlocking (the
        # property suite in test_serve_pool_property.py relies on it).
        pool = SnapshotPool(1 << 20)
        assert pool.lookup(("k",)) is None
        assert pool.lookup(("k",)) is None
        assert pool.fork(("k",)) is None
        assert pool.misses == 3 and pool.coalesced == 0

    def test_concurrent_miss_is_single_flight(self):
        pool = SnapshotPool(1 << 20)
        key = ("k",)
        assert pool.lookup(key) is None  # this thread owns the build
        results = []

        def waiter():
            results.append(pool.lookup(key))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert not results  # parked on the in-flight build
        assert pool.admit(key, EngineSnapshot(_Quiescent("x")))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert isinstance(results[0], EngineSnapshot)
        assert pool.misses == 1 and pool.hits == 1 and pool.coalesced == 1

    def test_release_hands_claim_to_waiter(self):
        pool = SnapshotPool(1 << 20)
        key = ("k",)
        assert pool.lookup(key) is None
        results = []

        def waiter():
            results.append(pool.lookup(key))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        pool.release(key)  # build failed: the waiter becomes the builder
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]
        assert pool.misses == 2

    def test_wedged_builder_is_stolen_after_timeout(self):
        pool = SnapshotPool(1 << 20, build_wait_seconds=0.05)
        key = ("k",)
        assert pool.lookup(key) is None  # owner never admits/releases
        results = []

        def waiter():
            results.append(pool.lookup(key))

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]  # stole the build
        assert pool.steals == 1

    def test_admit_failure_still_releases_claim(self):
        class _Live:
            def snapshot_precheck(self):
                raise SnapshotError("live")

        pool = SnapshotPool(1 << 20)
        key = ("k",)
        assert pool.lookup(key) is None
        results = []

        def waiter():
            results.append(pool.lookup(key))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert not pool.admit(key, _Live())  # refused, but claim resolved
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]
        assert pool.rejected_live == 1


# ----------------------------------------------------------------------
# the resolve hierarchy + cross-worker sharing
# ----------------------------------------------------------------------


class TestResolveHierarchy:
    def test_pool_then_blob_then_build(self, tmp_path):
        store = BlobStore(tmp_path)
        pool = SnapshotPool(1 << 20)
        key = ("k",)
        built = []

        def build():
            built.append(True)
            return _Quiescent("x")

        snap1, origin1 = resolve_prefix_snapshot(key, build, pool, store)
        assert origin1 == "built" and len(built) == 1
        snap2, origin2 = resolve_prefix_snapshot(key, build, pool, store)
        assert origin2 == "pool" and len(built) == 1
        fresh_pool = SnapshotPool(1 << 20)
        snap3, origin3 = resolve_prefix_snapshot(key, build, fresh_pool, store)
        assert origin3 == "blob" and len(built) == 1
        assert snap1.to_blob() == snap2.to_blob() == snap3.to_blob()

    def test_build_failure_resolves_all_claims(self, tmp_path):
        store = BlobStore(tmp_path)
        pool = SnapshotPool(1 << 20)
        key = ("k",)
        snapshot, origin = resolve_prefix_snapshot(
            key, lambda: None, pool, store
        )
        assert snapshot is None and origin is None
        assert not list(tmp_path.glob("*.lock"))
        # Both layers accept a retry (no stranded claims).
        snapshot, origin = resolve_prefix_snapshot(
            key, lambda: _Quiescent("x"), pool, store
        )
        assert origin == "built"

    def test_two_worker_pools_share_one_build(self, tmp_path):
        from repro.serve.worker import execute_point_pooled

        point = SweepPoint(
            workload="dl:vgg16",
            system="UvmDiscard",
            batch_size=8,
            scale=0.03125,
            batches=4,
        )
        store = BlobStore(tmp_path)
        pool_a, pool_b = SnapshotPool(1 << 28), SnapshotPool(1 << 28)
        cold, source_a = execute_point_pooled(point, pool_a, store)
        assert source_a == "cold"
        warm, source_b = execute_point_pooled(point, pool_b, store)
        assert source_b == "blob"  # cross-"worker" hit, no second build
        again, source_a2 = execute_point_pooled(point, pool_a, store)
        assert source_a2 == "fork"
        assert cold == warm == again
        assert store.stats()["builds_total"] == 1

    def test_multi_job_sweep_builds_each_prefix_once(self, tmp_path):
        points = [
            SweepPoint(
                workload="dl:vgg16",
                system=system,
                batch_size=8,
                scale=0.03125,
                batches=4,
            )
            for system in UVM_SYSTEMS
        ]
        store_dir = tmp_path / "blobs"
        report = run_sweep(points, jobs=2, blob_store_dir=store_dir)
        serial = run_sweep(points, jobs=1)
        assert report.to_json() == serial.to_json()
        assert report.blob_stats is not None
        assert report.blob_stats["builds_total"] == 1
        assert report.blob_stats["builds_distinct"] == 1
        counts = BlobStore(store_dir).build_counts()
        assert list(counts.values()) == [1]
