"""Trace-replay round-trip and schema-validation battery (PR 9).

The headline acceptance criterion of the replay frontend: a ``repro
trace`` export, converted to a replay trace and re-simulated from
scratch, reproduces the original run's migration byte totals exactly —
including the per-buffer decomposition.  The serializers (JSON + CSV)
round-trip losslessly, and malformed input of either form fails with a
clean :class:`TraceFormatError` naming the offending row, never a bare
``KeyError``/``ValueError``.
"""

from __future__ import annotations

import copy
import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.harness.sweep import SweepPoint
from repro.harness.tracerun import trace_point
from repro.workloads.replay import (
    ReplayTrace,
    TraceFormatError,
    check_replay,
    chrome_trace_to_replay,
    load_replay_trace,
    per_buffer_transfer_totals,
    replay_trace_from_csv,
    replay_trace_to_csv,
    run_replay,
)

#: A spread of shapes: dense streaming (fir), irregular ping-pong
#: (bfs), lazy discard + prefetch pairing (stencil).
ROUND_TRIP_POINTS = {
    "fir": SweepPoint(workload="fir", system="UvmDiscard", ratio=2.0, scale=0.01),
    "bfs": SweepPoint(workload="bfs", system="UvmDiscard", ratio=2.0, scale=0.03125),
    "stencil": SweepPoint(
        workload="stencil", system="UvmDiscardLazy", ratio=2.0, scale=0.03125
    ),
}


@functools.lru_cache(maxsize=None)
def _traced(label):
    """Trace a point once per session; returns (chrome_dict, result)."""
    result, tracer = trace_point(ROUND_TRIP_POINTS[label])
    assert result is not None
    return tracer.to_chrome_trace(), result


def _strip_none(value):
    """Drop ``None``-valued keys recursively (CSV cannot spell None)."""
    if isinstance(value, dict):
        return {k: _strip_none(v) for k, v in value.items() if v is not None}
    if isinstance(value, list):
        return [_strip_none(v) for v in value]
    return value


# ----------------------------------------------------------------------
# the acceptance criterion: export -> convert -> replay -> same bytes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("label", sorted(ROUND_TRIP_POINTS))
def test_round_trip_reproduces_migration_totals(label):
    chrome, original = _traced(label)
    trace = chrome_trace_to_replay(chrome)
    assert trace.expected is not None, "export carried no totals record"

    replayed, runtime = run_replay(trace, keep_transfer_records=True)
    assert replayed is not None
    check = check_replay(trace, runtime)
    assert check["checked"]
    assert check["ok"], (
        f"{label}: replay diverged from the recorded run: "
        f"expected {check['expected']}, got {check['actual']}"
    )

    # The per-buffer decomposition is complete: every migrated byte is
    # attributed to a buffer and the buckets sum to the driver totals.
    totals = per_buffer_transfer_totals(runtime)
    traffic = runtime.driver.traffic
    assert sum(b["h2d"] for b in totals.values()) == traffic.bytes_h2d
    assert sum(b["d2h"] for b in totals.values()) == traffic.bytes_d2h
    assert "(unknown)" not in totals


@pytest.mark.parametrize("label", sorted(ROUND_TRIP_POINTS))
def test_replay_result_matches_original_traffic(label):
    """The replayed ExperimentResult carries the original's traffic."""
    chrome, original = _traced(label)
    replayed, _ = run_replay(chrome_trace_to_replay(chrome))
    assert replayed.traffic_gb == original.traffic_gb


# ----------------------------------------------------------------------
# serialization round-trips (property-tested; no simulation involved)
# ----------------------------------------------------------------------


@settings(max_examples=9, deadline=None)
@given(label=st.sampled_from(sorted(ROUND_TRIP_POINTS)))
def test_json_round_trip_is_lossless(label):
    chrome, _ = _traced(label)
    trace = chrome_trace_to_replay(chrome)
    reparsed = ReplayTrace(json.loads(trace.to_json()))
    assert reparsed.to_document() == trace.to_document()
    assert reparsed.expected == trace.expected


@settings(max_examples=9, deadline=None)
@given(label=st.sampled_from(sorted(ROUND_TRIP_POINTS)))
def test_csv_round_trip_is_lossless(label):
    chrome, _ = _traced(label)
    trace = chrome_trace_to_replay(chrome)
    reparsed = replay_trace_from_csv(replay_trace_to_csv(trace))
    assert reparsed.expected == trace.expected
    assert reparsed.buffers == trace.buffers
    assert _strip_none(reparsed.ops) == _strip_none(trace.ops)
    for key, value in trace.meta.items():
        if key != "expected" and value is not None and key != "config":
            assert reparsed.meta.get(key) == value, key


def test_load_replay_trace_sniffs_all_three_forms(tmp_path):
    chrome, _ = _traced("fir")
    trace = chrome_trace_to_replay(chrome)

    chrome_path = tmp_path / "export.json"
    chrome_path.write_text(json.dumps(chrome))
    replay_path = tmp_path / "replay.json"
    replay_path.write_text(trace.to_json())
    csv_path = tmp_path / "replay.csv"
    csv_path.write_text(replay_trace_to_csv(trace))

    for path in (chrome_path, replay_path, csv_path):
        loaded = load_replay_trace(str(path))
        assert loaded.expected == trace.expected
        assert len(loaded.ops) == len(trace.ops)
        assert [b[0] for b in loaded.buffers] == [b[0] for b in trace.buffers]


def test_load_replay_trace_rejects_garbage(tmp_path):
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{not json")
    with pytest.raises(TraceFormatError, match="bad JSON"):
        load_replay_trace(str(bad_json))
    bad_csv = tmp_path / "bad.csv"
    bad_csv.write_text("hello,world\n")
    with pytest.raises(TraceFormatError, match="first line"):
        load_replay_trace(str(bad_csv))


# ----------------------------------------------------------------------
# a hand-written trace is a valid workload (the schema is writable)
# ----------------------------------------------------------------------


def _document():
    """A minimal hand-written replay document per the module docstring."""
    return {
        "version": 1,
        "meta": {
            "workload": "unit",
            "system": "UvmDiscard",
            "gpu": "gtx1070",
            "link": "gen3",
            "scale": 0.05,
            "ratio": 1.0,
        },
        "buffers": [
            {"name": "a", "nbytes": 1 << 20, "spans": [[0, 1 << 20]]},
            {"name": "b", "nbytes": 1 << 20, "spans": []},
        ],
        "ops": [
            {"op": "measure", "t": 0.0},
            {
                "op": "kernel",
                "t": 0.0,
                "id": 1,
                "kernel": "copy",
                "waves": 1,
                "duration": 0.001,
                "accesses": [
                    {"buffer": "a", "mode": "read", "offset": 0,
                     "length": 1 << 20, "pattern": {"kind": "sequential"}},
                    {"buffer": "b", "mode": "write", "offset": 0,
                     "length": 1 << 20, "pattern": {"kind": "sequential"}},
                ],
            },
            {"op": "discard", "t": 0.1, "id": 2, "buffer": "a",
             "mode": "eager", "offset": 0, "length": 1 << 20},
            {"op": "sync", "t": 0.2},
        ],
    }


def test_hand_written_document_replays():
    trace = ReplayTrace(_document())
    result, runtime = run_replay(trace, keep_transfer_records=True)
    assert result is not None
    traffic = runtime.driver.traffic
    # Kernel faults migrate buffer a's populated megabyte to the GPU;
    # the eager discard drops a without any writeback.
    assert traffic.bytes_h2d >= 1 << 20
    assert per_buffer_transfer_totals(runtime)["a"]["d2h"] == 0
    # No expected totals on a hand-written trace: check is a no-op.
    check = check_replay(trace, runtime)
    assert check == {
        "checked": False, "ok": True, "expected": None,
        "actual": check["actual"],
    }


# ----------------------------------------------------------------------
# malformed input fails cleanly (deterministic cases + fuzz)
# ----------------------------------------------------------------------


def _mutate(path, value):
    """A mutator assigning ``value`` at ``path`` into a fresh document."""

    def apply(doc):
        target = doc
        for key in path[:-1]:
            target = target[key]
        target[path[-1]] = value
        return doc

    return apply


MALFORMED_CASES = {
    "bad_version": (_mutate(["version"], 99), "unsupported version"),
    "missing_system": (_mutate(["meta", "system"], None), "system"),
    "no_buffers": (_mutate(["buffers"], []), "at least one buffer"),
    "bad_va_span": (
        _mutate(["buffers", 0, "spans"], [[0, (1 << 20) + 4096]]),
        "bad VA",
    ),
    "overlapping_spans": (
        _mutate(["buffers", 0, "spans"], [[0, 4096], [4095, 4096]]),
        "sorted and non-overlapping",
    ),
    "negative_time": (_mutate(["ops", 3, "t"], -1.0), "negative time"),
    "out_of_order_time": (_mutate(["ops", 0, "t"], 5.0), "out-of-order"),
    "unknown_op": (_mutate(["ops", 3, "op"], "teleport"), "unknown op kind"),
    "unknown_buffer": (
        _mutate(["ops", 2, "buffer"], "ghost"), "unknown buffer"
    ),
    "bad_discard_mode": (
        _mutate(["ops", 2, "mode"], "sometime"), "unknown discard mode"
    ),
    "duplicate_id": (_mutate(["ops", 2, "id"], 1), "duplicate op id"),
    "negative_duration": (
        _mutate(["ops", 1, "duration"], -0.5), "negative duration"
    ),
    "bad_pattern": (
        _mutate(["ops", 1, "accesses", 0, "pattern"], {"kind": "psychic"}),
        "unknown pattern kind",
    ),
    "bad_access_mode": (
        _mutate(["ops", 1, "accesses", 0, "mode"], "peek"),
        "unknown access mode",
    ),
    "wait_on_unknown_id": (
        _mutate(["ops", 3], {"op": "wait", "t": 0.2, "stream": "s", "on": 77}),
        "not an earlier async op",
    ),
}


@pytest.mark.parametrize("case", sorted(MALFORMED_CASES))
def test_malformed_document_raises_trace_format_error(case):
    mutator, match = MALFORMED_CASES[case]
    with pytest.raises(TraceFormatError, match=match):
        ReplayTrace(mutator(_document()))


def test_trace_format_error_is_a_repro_error():
    assert issubclass(TraceFormatError, ReproError)


def test_converter_rejects_truncated_exports():
    chrome, _ = _traced("fir")
    truncated = copy.deepcopy(chrome)
    truncated["otherData"]["dropped_records"] = 3
    with pytest.raises(TraceFormatError, match="dropped"):
        chrome_trace_to_replay(truncated)


def test_converter_rejects_non_chrome_input():
    with pytest.raises(TraceFormatError, match="traceEvents"):
        chrome_trace_to_replay({"hello": 1})


_FIELD_POOL = [
    ["meta", "scale"],
    ["meta", "ratio"],
    ["meta", "gpu"],
    ["buffers", 0, "nbytes"],
    ["buffers", 0, "name"],
    ["buffers", 0, "spans"],
    ["ops", 1, "id"],
    ["ops", 1, "waves"],
    ["ops", 1, "duration"],
    ["ops", 1, "accesses"],
    ["ops", 2, "offset"],
    ["ops", 2, "length"],
    ["ops", 2, "t"],
]

_JUNK = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.lists(st.integers(), max_size=3),
)


@settings(max_examples=150, deadline=None)
@given(path=st.sampled_from(range(len(_FIELD_POOL))), junk=_JUNK)
def test_fuzzed_documents_fail_cleanly(path, junk):
    """Any single-field corruption either still validates or raises a
    TraceFormatError — never an unwrapped KeyError/TypeError."""
    doc = _mutate(_FIELD_POOL[path], junk)(_document())
    try:
        ReplayTrace(doc)
    except TraceFormatError:
        pass


_CSV_SAFE = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters='"'
    ),
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(row=_CSV_SAFE, position=st.integers(min_value=0, max_value=20))
def test_fuzzed_csv_rows_fail_cleanly(row, position):
    """Inserting an arbitrary row into a valid CSV either still parses
    or raises a TraceFormatError naming a line number."""
    base = replay_trace_to_csv(ReplayTrace(_document()))
    lines = base.splitlines()
    lines.insert(min(position, len(lines)), row)
    try:
        replay_trace_from_csv("\n".join(lines) + "\n")
    except TraceFormatError as exc:
        assert "replay trace" in str(exc)
