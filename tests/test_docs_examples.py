"""Keep the documentation honest: README/docstring snippets must run."""

import re
import pathlib
import subprocess
import sys

import pytest

import repro

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_readme_quickstart_snippet_runs(self):
        """Execute the first python code block of README.md verbatim."""
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart code block"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - docs must execute

    def test_package_docstring_example_runs(self):
        """The repro.__doc__ quickstart is the same program; run it."""
        doc = repro.__doc__
        lines = [
            line[4:]
            for line in doc.splitlines()
            if line.startswith("    ") and "EXPERIMENTS" not in line
        ]
        code = "\n".join(lines)
        assert "malloc_managed" in code
        namespace = {}
        exec(code, namespace)  # noqa: S102


class TestExamplesDocumented:
    def test_every_example_has_docstring_and_main(self):
        for path in sorted((REPO / "examples").glob("*.py")):
            source = path.read_text()
            assert source.startswith("#!"), path.name
            assert '"""' in source, path.name
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name

    def test_examples_listed_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for path in sorted((REPO / "examples").glob("*.py")):
            if path.name == "quickstart.py":
                continue  # referenced via the quickstart section itself
            assert path.name.replace(".py", "") in readme or path.name in readme, (
                f"README does not mention examples/{path.name}"
            )


class TestPublicApiDocumented:
    def test_all_exports_resolve_and_have_docs(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            doc = getattr(obj, "__doc__", None)
            assert doc and doc.strip(), f"repro.{name} lacks a docstring"

    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


@pytest.mark.parametrize(
    "example", ["quickstart.py"]
)
def test_quickstart_example_runs_as_script(example):
    result = subprocess.run(
        [sys.executable, str(REPO / "examples" / example)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert "verified" in result.stdout
