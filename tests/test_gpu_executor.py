"""Tests for access patterns and the kernel executor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.cuda.kernel import access, launch_bounds
from repro.driver.va_block import VaBlock
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern, StridedPattern
from repro.units import BIG_PAGE, MIB

from conftest import tiny_gpu


def blocks(n):
    return [VaBlock(i, BIG_PAGE) for i in range(n)]


class TestSequentialPattern:
    def test_chunks_cover_all_blocks_once(self):
        pattern = SequentialPattern()
        items = blocks(10)
        waves = pattern.waves(items, 3)
        assert len(waves) == 3
        flat = [b for wave in waves for b in wave]
        assert flat == items  # order preserved, each once

    def test_more_waves_than_blocks(self):
        waves = SequentialPattern().waves(blocks(2), 5)
        assert len(waves) == 5
        assert sum(len(w) for w in waves) == 2

    def test_empty_blocks(self):
        waves = SequentialPattern().waves([], 3)
        assert waves == [[], [], []]

    def test_invalid_wave_count(self):
        with pytest.raises(ConfigurationError):
            SequentialPattern().waves(blocks(2), 0)


class TestStridedPattern:
    def test_each_wave_spans_buffer(self):
        items = blocks(9)
        waves = StridedPattern().waves(items, 3)
        assert [b.index for b in waves[0]] == [0, 3, 6]
        assert [b.index for b in waves[1]] == [1, 4, 7]
        flat = sorted(b.index for wave in waves for b in wave)
        assert flat == list(range(9))


class TestIrregularPattern:
    def test_touches_each_block_per_pass(self):
        items = blocks(8)
        pattern = IrregularPattern(passes=3, seed=1)
        waves = pattern.waves(items, 4)
        flat = [b.index for wave in waves for b in wave]
        assert len(flat) == 24
        for index in range(8):
            assert flat.count(index) == 3

    def test_deterministic_for_seed(self):
        items = blocks(16)
        a = IrregularPattern(passes=2, seed=7).waves(items, 4)
        b = IrregularPattern(passes=2, seed=7).waves(items, 4)
        assert [[blk.index for blk in w] for w in a] == [
            [blk.index for blk in w] for w in b
        ]

    def test_different_seeds_differ(self):
        items = blocks(32)
        a = IrregularPattern(seed=1).waves(items, 1)
        b = IrregularPattern(seed=2).waves(items, 1)
        assert [x.index for x in a[0]] != [x.index for x in b[0]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IrregularPattern(passes=0)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_coverage_property(self, nblocks, waves, passes):
        items = blocks(nblocks)
        produced = IrregularPattern(passes=passes, seed=3).waves(items, waves)
        flat = [b.index for wave in produced for b in wave]
        assert sorted(set(flat)) == list(range(nblocks))
        assert len(flat) == nblocks * passes


class TestKernelSpec:
    def test_compute_seconds_from_flops(self):
        kernel = KernelSpec("k", [], flops=2e12)
        assert kernel.compute_seconds(1e12) == pytest.approx(2.0)

    def test_duration_overrides_flops(self):
        kernel = KernelSpec("k", [], flops=1e12, duration=0.5)
        assert kernel.compute_seconds(1e12) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KernelSpec("k", [], waves=0)
        with pytest.raises(ConfigurationError):
            KernelSpec("k", [], flops=-1)
        with pytest.raises(ConfigurationError):
            KernelSpec("k", [], flops=1).compute_seconds(0)

    def test_access_helper_and_launch_bounds(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        buffer = runtime.malloc_managed(4 * MIB)
        spec = KernelSpec("k", [access(buffer, AccessMode.READ)])
        assert launch_bounds(spec) == 4 * MIB
        partial = KernelSpec(
            "k2", [access(buffer, AccessMode.READ, buffer.subrange(0, MIB))]
        )
        assert launch_bounds(partial) == MIB


class TestExecutor:
    def test_kernel_serialization_on_sm_engine(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        a = runtime.create_stream("a")
        b = runtime.create_stream("b")
        buffer = runtime.malloc_managed(2 * MIB)
        kernel = KernelSpec(
            "k", [BufferAccess(buffer, AccessMode.WRITE)], duration=1.0
        )

        def program(cuda):
            cuda.launch(kernel, stream=a)
            cuda.launch(kernel, stream=b)
            yield from cuda.synchronize()

        runtime.run(program)
        # Two streams, but one SM engine: kernels serialized.
        assert runtime.elapsed >= 2.0

    def test_fault_stall_accounted(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        buffer = runtime.malloc_managed(16 * MIB)
        kernel = KernelSpec(
            "k", [BufferAccess(buffer, AccessMode.WRITE)], duration=0.001, waves=4
        )

        def program(cuda):
            cuda.launch(kernel)
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.executor.fault_stall_seconds > 0
        assert runtime.driver.counters["gpu_fault_batches"] == 4

    def test_prefetched_kernel_has_no_faults(self):
        runtime = CudaRuntime(gpu=tiny_gpu())
        buffer = runtime.malloc_managed(16 * MIB)
        kernel = KernelSpec(
            "k", [BufferAccess(buffer, AccessMode.WRITE)], duration=0.001, waves=4
        )

        def program(cuda):
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()
            cuda.launch(kernel)
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.driver.counters["gpu_fault_batches"] == 0
        assert runtime.executor.fault_stall_seconds == 0

    def test_functional_kernel_body_runs(self):
        import numpy as np

        runtime = CudaRuntime(gpu=tiny_gpu())
        array = np.zeros(1024, dtype=np.float32)
        buffer = runtime.malloc_managed(array.nbytes, array=array)

        def fill():
            buffer.array[:] = 7.0

        kernel = KernelSpec(
            "fill", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e3, fn=fill
        )

        def program(cuda):
            cuda.launch(kernel)
            yield from cuda.synchronize()

        runtime.run(program)
        assert (array == 7.0).all()

    def test_thrashing_emerges_when_working_set_exceeds_memory(self):
        runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=16))
        buffer = runtime.malloc_managed(32 * MIB)

        def program(cuda):
            yield from cuda.host_write(buffer)
            for i in range(2):
                cuda.launch(
                    KernelSpec(
                        f"k{i}",
                        [
                            BufferAccess(
                                buffer,
                                AccessMode.READWRITE,
                                pattern=IrregularPattern(passes=2, seed=i),
                            )
                        ],
                        duration=0.001,
                        waves=8,
                    )
                )
            yield from cuda.synchronize()

        runtime.run(program)
        # Far more bytes moved than the buffer holds: thrashing.
        assert runtime.driver.traffic.total_bytes > 2 * buffer.nbytes
