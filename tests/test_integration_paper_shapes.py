"""Integration tests: end-to-end reproductions of the paper's core claims
at test scale.

Each test is a miniature of one headline result; the full-size versions
live in benchmarks/.  These are the acceptance tests DESIGN.md §5 calls
out.
"""

import pytest

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.units import MIB
from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload

from conftest import tiny_gpu

SCALE = 1 / 32


class TestFigure2Lifecycle:
    """The RMT lifecycle of Figure 2, step by step."""

    def test_rmt_cycle_and_its_elimination(self):
        def make_runtime(discard):
            runtime = CudaRuntime(gpu=tiny_gpu(memory_mib=32))
            scratch = runtime.malloc_managed(24 * MIB, "scratch")
            other = runtime.malloc_managed(24 * MIB, "other")

            def program(cuda):
                # ① short-lived data written on the GPU
                cuda.launch(
                    KernelSpec("produce", [BufferAccess(scratch, AccessMode.WRITE)],
                               flops=1e6)
                )
                # ② data consumed; program knows it is dead
                if discard:
                    cuda.discard_async(scratch, mode="eager")
                # ③ memory pressure from another buffer
                cuda.launch(
                    KernelSpec("pressure", [BufferAccess(other, AccessMode.WRITE)],
                               flops=1e6)
                )
                if discard:
                    # 'other' is short-lived too: the informed program
                    # discards both dead buffers.
                    cuda.discard_async(other, mode="eager")
                # ④⑤ buffer re-used with entirely new data
                if discard:
                    cuda.prefetch_async(scratch)
                cuda.launch(
                    KernelSpec("reuse", [BufferAccess(scratch, AccessMode.WRITE)],
                               flops=1e6)
                )
                yield from cuda.synchronize()

            runtime.run(program)
            return runtime

        without = make_runtime(discard=False)
        with_discard = make_runtime(discard=True)
        # Without discard: the dead data was swapped out AND back in.
        assert without.driver.traffic.total_bytes > 0
        assert without.driver.rmt.redundant_bytes == without.driver.traffic.total_bytes
        # With discard: zero transfers; reclamation was free.
        assert with_discard.driver.traffic.total_bytes == 0
        assert with_discard.driver.counters["evicted_discarded_blocks"] > 0


class TestHeadlineClaims:
    def test_abstract_hash_join_claim(self):
        """'a 4.17 times speedup by eliminating 85.8% of memory transfers'
        — shape: >2x speedup, >60% eliminated at 200%."""
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        gpu = rtx_3080ti().scaled(SCALE)
        opt = workload.run(System.UVM_OPT, 2.0, gpu, pcie_gen4())
        eager = workload.run(System.UVM_DISCARD, 2.0, gpu, pcie_gen4())
        speedup = opt.elapsed_seconds / eager.elapsed_seconds
        eliminated = 1 - eager.traffic_gb / opt.traffic_gb
        assert speedup > 2.0
        assert eliminated > 0.6

    def test_fir_constant_savings_claim(self):
        """'consistently eliminate 5.56GB' — savings ~constant in ratio."""
        workload = FirWorkload(FirConfig().scaled(SCALE))
        gpu = rtx_3080ti().scaled(SCALE)
        savings = []
        for ratio in (2.0, 3.0, 4.0):
            opt = workload.run(System.UVM_OPT, ratio, gpu, pcie_gen4())
            eager = workload.run(System.UVM_DISCARD, ratio, gpu, pcie_gen4())
            savings.append(opt.traffic_gb - eager.traffic_gb)
        spread = max(savings) - min(savings)
        assert spread < 0.25 * max(savings)

    def test_pcie3_and_pcie4_same_story(self):
        """Normalized runtimes barely depend on the link generation."""
        workload = FirWorkload(FirConfig().scaled(SCALE))
        gpu = rtx_3080ti().scaled(SCALE)
        ratios = {}
        for name, link in (("gen3", pcie_gen3()), ("gen4", pcie_gen4())):
            opt = workload.run(System.UVM_OPT, 2.0, gpu, link)
            eager = workload.run(System.UVM_DISCARD, 2.0, gpu, link)
            ratios[name] = eager.elapsed_seconds / opt.elapsed_seconds
        assert ratios["gen3"] == pytest.approx(ratios["gen4"], abs=0.1)


class TestDriverInvariants:
    """Whole-run structural invariants checked after a stressy workload."""

    @pytest.fixture(scope="class")
    def stressed(self):
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        gpu = rtx_3080ti().scaled(SCALE)
        runtime = CudaRuntime(gpu=gpu)
        from repro.harness.oversubscribe import apply_oversubscription

        apply_oversubscription(runtime, workload.config.app_bytes, 2.0)
        runtime.run(workload.program(System.UVM_DISCARD_LAZY))
        return runtime

    def test_no_frame_leak(self, stressed):
        """Frames resident via queues equal frames the allocator handed out."""
        driver = stressed.driver
        state = driver._gpu("gpu0")
        queued = state.queues.resident_blocks() + len(state.queues.unused)
        assert queued == state.allocator.used_frames

    def test_residency_mapping_consistency(self, stressed):
        """Mapped-on-GPU implies GPU-resident; CPU-resident blocks are
        never GPU-mapped."""
        driver = stressed.driver
        table = driver.gpu_page_table("gpu0")
        for index, block in driver._blocks.items():
            if table.is_mapped(index):
                assert block.residency == "gpu0", block
            if block.on_cpu:
                assert not table.is_mapped(index)

    def test_no_corruption_in_correct_program(self, stressed):
        assert stressed.driver.oracle.corruption_count == 0
        assert stressed.driver.counters["lazy_misuses"] == 0

    def test_traffic_conservation(self, stressed):
        """Classified RMT bytes never exceed recorded traffic."""
        driver = stressed.driver
        driver.finalize()
        classified = driver.rmt.useful_bytes + driver.rmt.redundant_bytes
        assert classified <= driver.traffic.total_bytes
