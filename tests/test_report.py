"""Tests for the report renderers (markdown/CSV/summary)."""

import csv
import io

from repro.harness.results import ExperimentResult
from repro.instrument.report import (
    FIELDS,
    results_to_csv,
    results_to_markdown,
    speedup_summary,
)


def make_result(system, config, elapsed, traffic, metric=None):
    return ExperimentResult(
        system=system,
        config=config,
        elapsed_seconds=elapsed,
        traffic_gb=traffic,
        traffic_h2d_gb=traffic / 2,
        traffic_d2h_gb=traffic / 2,
        redundant_gb=0.5,
        useful_gb=traffic - 0.5,
        metric=metric,
    )


class TestCsv:
    def test_round_trip(self):
        rows = [
            make_result("UVM-opt", "200%", 2.0, 10.0),
            make_result("UvmDiscard", "200%", 1.0, 2.0, metric=5.0),
        ]
        text = results_to_csv(rows)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == list(FIELDS)
        assert len(parsed) == 3
        assert parsed[1][0] == "UVM-opt"
        assert float(parsed[2][3]) == 2.0

    def test_empty(self):
        text = results_to_csv([])
        assert text.strip() == ",".join(FIELDS)


class TestMarkdown:
    def test_table_structure(self):
        rows = [make_result("A", "c1", 1.0, 2.0)]
        text = results_to_markdown(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| system | config |")
        assert "| A | c1 |" in lines[-1]

    def test_none_metric_rendered_as_dash(self):
        text = results_to_markdown([make_result("A", "c", 1.0, 2.0, metric=None)])
        assert "| - |" in text.splitlines()[-1]


class TestSpeedupSummary:
    def test_speedup_and_cut(self):
        rows = [
            make_result("base", "200%", 4.0, 10.0),
            make_result("fast", "200%", 1.0, 2.5),
        ]
        summary = speedup_summary(rows, "base")
        assert "4.00x speedup" in summary
        assert "-75% traffic" in summary

    def test_missing_baseline_config_skipped(self):
        rows = [make_result("fast", "300%", 1.0, 1.0)]
        assert speedup_summary(rows, "base") == ""
