"""Tests for the CudaRuntime facade — the library's public API."""

import pytest

from conftest import tiny_gpu

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.cuda.device import a100_40gb, gtx_1070, rtx_3080ti, ryzen_3900x
from repro.errors import ConfigurationError, OutOfMemoryError, SimulationError
from repro.instrument.traffic import TransferDirection
from repro.units import GIB, MIB


class TestDevicePresets:
    def test_3080ti_matches_paper(self):
        gpu = rtx_3080ti()
        assert gpu.memory_bytes == int(11.77 * GIB)
        assert gpu.name == "gpu0"

    def test_presets_ordering(self):
        assert gtx_1070().memory_bytes < rtx_3080ti().memory_bytes
        assert a100_40gb().local_bandwidth > rtx_3080ti().local_bandwidth

    def test_scaled(self):
        gpu = rtx_3080ti().scaled(0.5)
        assert gpu.memory_bytes == int(11.77 * GIB) // 2
        assert gpu.effective_flops == rtx_3080ti().effective_flops
        with pytest.raises(ValueError):
            rtx_3080ti().scaled(0)

    def test_host_preset(self):
        host = ryzen_3900x()
        assert host.memory_bytes == 64 * GIB
        assert host.scaled(0.5).memory_bytes == 32 * GIB


class TestMallocManaged:
    def test_returns_registered_buffer(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB, "A")
        assert buffer.name == "A"
        assert runtime.driver.block(buffer.blocks[0].index) is buffer.blocks[0]

    def test_auto_names_unique(self, runtime):
        a = runtime.malloc_managed(MIB)
        b = runtime.malloc_managed(MIB)
        assert a.name != b.name

    def test_backing_array_size_checked(self, runtime):
        import numpy as np

        with pytest.raises(ConfigurationError):
            runtime.malloc_managed(MIB, array=np.zeros(10, dtype=np.float32))

    def test_free_releases_blocks(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB)
        runtime.free(buffer)
        assert buffer.freed
        with pytest.raises(SimulationError):
            runtime.free(buffer)

    def test_oversubscribing_allocation_allowed(self, runtime):
        # Managed allocations may exceed device memory (the whole point).
        buffer = runtime.malloc_managed(10 * runtime.gpu.memory_bytes)
        assert buffer.nbytes == 10 * runtime.gpu.memory_bytes


class TestHostAccess:
    def test_host_write_populates_cpu(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB)

        def program(cuda):
            yield from cuda.host_write(buffer)

        runtime.run(program)
        assert all(b.on_cpu and b.populated for b in buffer.blocks)
        assert runtime.driver.traffic.total_bytes == 0

    def test_host_write_takes_bandwidth_time(self, runtime):
        buffer = runtime.malloc_managed(64 * MIB)

        def program(cuda):
            yield from cuda.host_write(buffer)

        runtime.run(program)
        assert runtime.elapsed >= 64 * MIB / runtime.host.memory_bandwidth

    def test_host_read_of_gpu_data_migrates_back(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB)

        def program(cuda):
            yield from cuda.host_write(buffer)
            cuda.prefetch_async(buffer)
            yield from cuda.synchronize()
            yield from cuda.host_read(buffer)

        runtime.run(program)
        assert all(b.on_cpu for b in buffer.blocks)
        assert runtime.driver.traffic.bytes_d2h == 4 * MIB

    def test_partial_range_access(self, runtime):
        buffer = runtime.malloc_managed(8 * MIB)

        def program(cuda):
            yield from cuda.host_write(buffer, rng=buffer.subrange(0, 2 * MIB))

        runtime.run(program)
        assert buffer.blocks[0].populated
        assert not buffer.blocks[2].populated


class TestAsyncOps:
    def test_prefetch_validates_destination(self, runtime):
        buffer = runtime.malloc_managed(2 * MIB)
        with pytest.raises(ConfigurationError):
            runtime.prefetch_async(buffer, destination="gpu7")

    def test_prefetch_to_cpu(self, runtime):
        buffer = runtime.malloc_managed(2 * MIB)

        def program(cuda):
            cuda.prefetch_async(buffer)
            cuda.prefetch_async(buffer, destination="cpu")
            yield from cuda.synchronize()

        runtime.run(program)
        assert buffer.blocks[0].on_cpu

    def test_discard_mode_validated(self, runtime):
        buffer = runtime.malloc_managed(2 * MIB)
        with pytest.raises(ConfigurationError):
            runtime.discard_async(buffer, mode="aggressive")

    def test_discard_returns_outcome(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB)

        def program(cuda):
            cuda.prefetch_async(buffer)
            process = cuda.discard_async(buffer, mode="eager")
            yield from cuda.synchronize()
            return process.value

        runtime.run(program)
        assert all(b.discarded for b in buffer.blocks)

    def test_launch_kernel_faults_and_computes(self, runtime):
        buffer = runtime.malloc_managed(4 * MIB)
        kernel = KernelSpec(
            "k", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e9
        )

        def program(cuda):
            cuda.launch(kernel)
            yield from cuda.synchronize()

        runtime.run(program)
        assert all(b.residency == "gpu0" for b in buffer.blocks)
        assert runtime.executor.kernels_launched == 1
        assert runtime.elapsed >= 1e9 / runtime.gpu.effective_flops

    def test_stream_ordering_discard_after_kernel(self, runtime):
        """§4.2: the discard is ordered after the preceding kernel."""
        buffer = runtime.malloc_managed(4 * MIB)
        kernel = KernelSpec(
            "k", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e9
        )

        def program(cuda):
            cuda.launch(kernel)
            cuda.discard_async(buffer, mode="eager")
            yield from cuda.synchronize()

        runtime.run(program)
        # The kernel's writes happened before the discard (no misuse, no
        # corruption) and the blocks ended discarded.
        assert runtime.driver.counters["lazy_misuses"] == 0
        assert all(b.discarded for b in buffer.blocks)


class TestDeviceMemoryPath:
    def test_malloc_free_device_costs_and_capacity(self, runtime):
        def program(cuda):
            buffer = yield from cuda.malloc_device(8 * MIB, "d")
            assert cuda.driver.gpu_free_bytes("gpu0") == (
                cuda.gpu.memory_bytes - 8 * MIB
            )
            yield from cuda.free_device(buffer)

        runtime.run(program)
        assert runtime.driver.gpu_free_bytes("gpu0") == runtime.gpu.memory_bytes
        assert runtime.elapsed > 0

    def test_device_oom(self, runtime):
        def program(cuda):
            yield from cuda.malloc_device(cuda.gpu.memory_bytes + MIB)

        with pytest.raises(OutOfMemoryError):
            runtime.run(program)

    def test_double_free_device_rejected(self, runtime):
        def program(cuda):
            buffer = yield from cuda.malloc_device(2 * MIB)
            yield from cuda.free_device(buffer)
            yield from cuda.free_device(buffer)

        with pytest.raises(SimulationError):
            runtime.run(program)

    def test_memcpy_records_traffic(self, runtime):
        def program(cuda):
            cuda.memcpy_async(4 * MIB, TransferDirection.HOST_TO_DEVICE)
            yield from cuda.synchronize()

        runtime.run(program)
        assert runtime.driver.traffic.bytes_h2d == 4 * MIB


class TestMeasurement:
    def test_measured_region(self):
        runtime = CudaRuntime(gpu=tiny_gpu())

        def program(cuda):
            yield cuda.env.timeout(1.0)
            cuda.begin_measurement()
            yield cuda.env.timeout(2.0)

        runtime.run(program)
        assert runtime.elapsed == pytest.approx(3.0)
        assert runtime.measured_seconds == pytest.approx(2.0)

    def test_stats_keys(self, runtime):
        def program(cuda):
            yield cuda.env.timeout(0.0)

        runtime.run(program)
        stats = runtime.stats()
        for key in (
            "elapsed_seconds",
            "traffic_gb",
            "traffic_h2d_gb",
            "traffic_d2h_gb",
            "redundant_gb",
            "useful_gb",
        ):
            assert key in stats
