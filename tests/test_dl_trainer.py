"""Tests for the Darknet-style trainer across all four systems."""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16

SCALE = 1 / 32
NETWORK = vgg16().scaled(SCALE)
GPU = rtx_3080ti().scaled(SCALE)


def train(system, batch_size, batches=3):
    trainer = DarknetTrainer(
        NETWORK, TrainerConfig(batch_size=batch_size, batches=batches), system
    )
    return trainer.run(GPU, pcie_gen4())


def fit_batch():
    """A batch size that comfortably fits the scaled GPU."""
    return 40


def oversubscribed_batch():
    return 150


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(batch_size=1, batches=2, warmup_batches=2)
        assert TrainerConfig(batch_size=1).measured_batches == 2

    def test_app_bytes_matches_network(self):
        trainer = DarknetTrainer(
            NETWORK, TrainerConfig(batch_size=64), System.UVM_OPT
        )
        assert trainer.app_bytes == NETWORK.total_bytes(64)


class TestNoUvm:
    def test_works_when_fits(self):
        result = train(System.NO_UVM, fit_batch())
        assert result.metric > 0
        # Explicit management: only the programmed memcpys move data.
        assert result.counters.get("gpu_fault_batches", 0) == 0

    def test_crashes_when_oversubscribed(self):
        """Listing 4: 'This will not work if device buffers exceed GPU
        capacity.'"""
        with pytest.raises(OutOfMemoryError):
            train(System.NO_UVM, oversubscribed_batch())


class TestUvmSystems:
    def test_uvm_survives_oversubscription(self):
        result = train(System.UVM_OPT, oversubscribed_batch())
        assert result.metric > 0
        assert result.traffic_gb > 0

    def test_throughput_units(self):
        config = TrainerConfig(batch_size=fit_batch())
        trainer = DarknetTrainer(NETWORK, config, System.UVM_OPT)
        result = trainer.run(GPU, pcie_gen4())
        expected = config.batch_size * config.measured_batches / result.elapsed_seconds
        assert result.metric == pytest.approx(expected)

    def test_discard_beats_uvm_when_oversubscribed(self):
        opt = train(System.UVM_OPT, oversubscribed_batch())
        eager = train(System.UVM_DISCARD, oversubscribed_batch())
        lazy = train(System.UVM_DISCARD_LAZY, oversubscribed_batch())
        assert eager.metric > 1.05 * opt.metric
        assert lazy.metric > 1.05 * opt.metric
        assert eager.traffic_gb < 0.7 * opt.traffic_gb

    def test_eager_overhead_when_fits(self):
        """§7.5.1: eager unmapping costs throughput at fit sizes; lazy
        doesn't."""
        opt = train(System.UVM_OPT, fit_batch())
        eager = train(System.UVM_DISCARD, fit_batch())
        lazy = train(System.UVM_DISCARD_LAZY, fit_batch())
        assert eager.metric < opt.metric
        assert lazy.metric > eager.metric
        # At this tiny 1/32 test scale the fixed per-op costs loom larger
        # than at the paper's scale, so allow a few percent.
        assert lazy.metric > 0.95 * opt.metric

    def test_no_lazy_misuse_in_trainer(self):
        """The trainer's prefetch pairing satisfies §5.2 everywhere."""
        result = train(System.UVM_DISCARD_LAZY, oversubscribed_batch())
        assert result.counters.get("lazy_misuses", 0) == 0

    def test_uvm_redundant_traffic_dominates_when_oversubscribed(self):
        """Figure 3's claim at the trainer level."""
        result = train(System.UVM_OPT, oversubscribed_batch())
        assert result.redundant_gb > 0.35 * result.traffic_gb

    def test_discard_eliminates_redundancy(self):
        result = train(System.UVM_DISCARD, oversubscribed_batch())
        assert result.redundant_gb < 0.1 * result.traffic_gb

    def test_more_measured_batches_scale_traffic(self):
        short = train(System.UVM_OPT, oversubscribed_batch(), batches=2)
        long = train(System.UVM_OPT, oversubscribed_batch(), batches=4)
        # 1 vs 3 measured batches: ~3x the traffic.
        assert long.traffic_gb > 2.2 * short.traffic_gb
