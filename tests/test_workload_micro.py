"""Shape tests for the FIR, radix-sort and hash-join workloads at tiny
scale — fast versions of the Tables 3-8 assertions."""

import pytest

from repro.cuda.device import rtx_3080ti
from repro.errors import ConfigurationError
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE
from repro.workloads import (
    FirConfig,
    FirWorkload,
    HashJoinConfig,
    HashJoinWorkload,
    RadixSortConfig,
    RadixSortWorkload,
)

SCALE = 1 / 32
GPU = rtx_3080ti().scaled(SCALE)


class TestFirConfig:
    def test_window_is_block_aligned(self):
        config = FirConfig()
        assert config.window_bytes % BIG_PAGE == 0

    def test_app_bytes_counts_input_and_output(self):
        config = FirConfig()
        assert config.app_bytes == 2 * config.num_windows * config.window_bytes

    def test_scaled_keeps_window_count(self):
        config = FirConfig().scaled(0.1)
        assert config.num_windows == FirConfig().num_windows
        assert config.input_bytes < FirConfig().input_bytes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FirConfig(num_windows=0)
        with pytest.raises(ConfigurationError):
            FirConfig(input_bytes=BIG_PAGE, num_windows=10)


class TestFirShape:
    @pytest.fixture(scope="class")
    def results(self):
        workload = FirWorkload(FirConfig().scaled(SCALE))
        out = {}
        for ratio in (0.99, 2.0):
            for system in (System.UVM_OPT, System.UVM_DISCARD):
                out[(ratio, system)] = workload.run(system, ratio, GPU, pcie_gen4())
        return out

    def test_no_eviction_when_fits(self, results):
        assert results[(0.99, System.UVM_OPT)].traffic_d2h_gb == 0

    def test_discard_eliminates_eviction_traffic(self, results):
        baseline = results[(2.0, System.UVM_OPT)]
        discard = results[(2.0, System.UVM_DISCARD)]
        assert discard.traffic_gb < 0.7 * baseline.traffic_gb
        assert discard.elapsed_seconds < 0.8 * baseline.elapsed_seconds

    def test_discard_free_when_fits(self, results):
        baseline = results[(0.99, System.UVM_OPT)]
        discard = results[(0.99, System.UVM_DISCARD)]
        assert discard.elapsed_seconds < 1.05 * baseline.elapsed_seconds

    def test_evicted_window_traffic_is_redundant(self, results):
        baseline = results[(2.0, System.UVM_OPT)]
        # The consumed windows are never read again: their evictions are
        # pure RMTs.
        assert baseline.redundant_gb > 0.3 * baseline.traffic_gb


class TestRadixShape:
    def test_eager_overhead_lazy_free_at_fit(self):
        workload = RadixSortWorkload(RadixSortConfig().scaled(SCALE))
        opt = workload.run(System.UVM_OPT, 0.99, GPU, pcie_gen4())
        eager = workload.run(System.UVM_DISCARD, 0.99, GPU, pcie_gen4())
        lazy = workload.run(System.UVM_DISCARD_LAZY, 0.99, GPU, pcie_gen4())
        assert eager.elapsed_seconds > 1.02 * opt.elapsed_seconds
        assert lazy.elapsed_seconds < 1.02 * opt.elapsed_seconds
        # Same traffic everywhere at fit (nothing to save).
        assert eager.traffic_gb == pytest.approx(opt.traffic_gb, rel=0.01)

    def test_thrashing_dominates_oversubscribed(self):
        workload = RadixSortWorkload(RadixSortConfig().scaled(SCALE))
        opt = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        eager = workload.run(System.UVM_DISCARD, 2.0, GPU, pcie_gen4())
        assert opt.traffic_gb > 3 * workload.config.app_bytes / 1e9
        assert eager.traffic_gb < opt.traffic_gb
        assert eager.elapsed_seconds < opt.elapsed_seconds

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RadixSortConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            RadixSortConfig(array_bytes=0)


class TestHashJoinShape:
    def test_discard_wins_big_at_200(self):
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        opt = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        eager = workload.run(System.UVM_DISCARD, 2.0, GPU, pcie_gen4())
        assert eager.elapsed_seconds < 0.6 * opt.elapsed_seconds
        assert eager.traffic_gb < 0.5 * opt.traffic_gb

    def test_dead_intermediates_classified_redundant(self):
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        opt = workload.run(System.UVM_OPT, 2.0, GPU, pcie_gen4())
        assert opt.redundant_gb > 0.5 * opt.traffic_gb

    def test_lazy_system_uses_both_modes(self):
        """§7.4: 'not all UvmDiscard calls can be replaced'."""
        workload = HashJoinWorkload(HashJoinConfig().scaled(SCALE))
        lazy = workload.run(System.UVM_DISCARD_LAZY, 0.99, GPU, pcie_gen4())
        assert lazy.counters.get("discarded_blocks", 0) > 0
        # No misuse: the scratch sites stayed eager.
        assert lazy.counters.get("lazy_misuses", 0) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HashJoinConfig(rounds=0)
