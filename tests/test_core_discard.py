"""Tests for the discard managers (the paper's contribution layer)."""

import pytest

from repro.core import UvmDiscard, UvmDiscardLazy
from repro.core.discard import DiscardOutcome
from repro.driver import UvmDriver, UvmDriverConfig, VaBlock
from repro.engine import Environment
from repro.instrument.traffic import TransferReason
from repro.interconnect import pcie_gen4
from repro.units import BIG_PAGE, MIB
from repro.vm.layout import VaRange


def make_setup(require_full_blocks=True, capacity_mib=32):
    env = Environment()
    driver = UvmDriver(
        env, pcie_gen4(), UvmDriverConfig(require_full_blocks=require_full_blocks)
    )
    driver.register_gpu("gpu0", capacity_mib * MIB)
    return env, driver


def make_blocks(driver, count, start_index=100):
    blocks = [VaBlock(start_index + i, BIG_PAGE) for i in range(count)]
    driver.register_blocks(blocks)
    return blocks


def run(env, generator):
    return env.run(until=env.process(generator))


def gpu_populate(env, driver, blocks):
    run(env, driver.prefetch(blocks, "gpu0"))
    from repro.access import AccessMode

    for block in blocks:
        driver.note_access(block, AccessMode.WRITE)


class TestSelectBlocks:
    def test_full_cover_selects_all(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 4)
        manager = UvmDiscard(driver)
        rng = VaRange(blocks[0].index * BIG_PAGE, 4 * BIG_PAGE)
        targets, ignored, split = manager.select_blocks(blocks, rng)
        assert targets == blocks
        assert ignored == 0
        assert split == []

    def test_partial_blocks_ignored(self):
        """§5.4: ragged edges are skipped, not split."""
        env, driver = make_setup()
        blocks = make_blocks(driver, 4)
        manager = UvmDiscard(driver)
        rng = VaRange(blocks[0].index * BIG_PAGE + MIB, 3 * BIG_PAGE)
        targets, ignored, split = manager.select_blocks(blocks, rng)
        assert targets == blocks[1:3]
        assert ignored == 2
        assert split == []

    def test_policy_disabled_splits_partials(self):
        env, driver = make_setup(require_full_blocks=False)
        blocks = make_blocks(driver, 4)
        manager = UvmDiscard(driver)
        rng = VaRange(blocks[0].index * BIG_PAGE + MIB, 3 * BIG_PAGE)
        targets, ignored, split = manager.select_blocks(blocks, rng)
        assert targets == blocks[1:3]  # fully covered middle blocks
        assert ignored == 0
        assert split == [blocks[0], blocks[3]]  # ragged edges get split

    def test_disjoint_range_selects_nothing(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 2)
        manager = UvmDiscard(driver)
        targets, ignored, split = manager.select_blocks(blocks, VaRange(0, BIG_PAGE))
        assert targets == [] and ignored == 0 and split == []


class TestDiscardOutcome:
    def test_outcome_counts(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 3)
        gpu_populate(env, driver, blocks)
        manager = UvmDiscard(driver)
        outcome = run(env, manager.discard(blocks))
        assert isinstance(outcome, DiscardOutcome)
        assert outcome.discarded_blocks == 3
        assert outcome.already_discarded_blocks == 0
        assert outcome.time_cost > 0

    def test_rediscard_is_idempotent(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 2)
        gpu_populate(env, driver, blocks)
        manager = UvmDiscard(driver)
        run(env, manager.discard(blocks))
        outcome = run(env, manager.discard(blocks))
        assert outcome.discarded_blocks == 0
        assert outcome.already_discarded_blocks == 2

    def test_discard_range_reports_ignored(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 4)
        gpu_populate(env, driver, blocks)
        manager = UvmDiscard(driver)
        rng = VaRange(blocks[0].index * BIG_PAGE + MIB, 3 * BIG_PAGE)
        outcome = run(env, manager.discard_range(blocks, rng))
        assert outcome.discarded_blocks == 2
        assert outcome.ignored_partial_blocks == 2

    def test_manager_accumulates_stats(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 2)
        gpu_populate(env, driver, blocks)
        manager = UvmDiscardLazy(driver)
        run(env, manager.discard(blocks))
        assert manager.calls == 1
        assert manager.total_cost > 0


class TestEagerVsLazyCost:
    def test_eager_charges_tlb_per_gpu_once(self):
        env, driver = make_setup()
        blocks = make_blocks(driver, 8)
        gpu_populate(env, driver, blocks)
        table = driver.gpu_page_table("gpu0")
        before = table.tlb_invalidations
        manager = UvmDiscard(driver)
        run(env, manager.discard(blocks))
        # One shootdown for the whole batch, not one per block.
        assert table.tlb_invalidations == before + 1
        assert table.unmap_count == 8

    def test_lazy_discard_is_much_cheaper(self):
        env, driver = make_setup()
        eager_blocks = make_blocks(driver, 8, start_index=100)
        lazy_blocks = make_blocks(driver, 8, start_index=300)
        gpu_populate(env, driver, eager_blocks + lazy_blocks)
        eager_outcome = run(env, UvmDiscard(driver).discard(eager_blocks))
        lazy_outcome = run(env, UvmDiscardLazy(driver).discard(lazy_blocks))
        assert lazy_outcome.time_cost < 0.5 * eager_outcome.time_cost

    def test_eager_cost_scales_with_blocks(self):
        """Table 2's UvmDiscard row: linear in block count."""
        env, driver = make_setup(capacity_mib=160)
        small = make_blocks(driver, 1, start_index=100)
        large = make_blocks(driver, 64, start_index=300)
        gpu_populate(env, driver, small + large)
        cost_small = run(env, UvmDiscard(driver).discard(small)).time_cost
        cost_large = run(env, UvmDiscard(driver).discard(large)).time_cost
        assert 30 * cost_small < cost_large / cost_small * cost_small * 64
        assert cost_large > 10 * cost_small

    def test_cpu_resident_eager_discard_cheaper_than_gpu(self):
        env, driver = make_setup()
        gpu_blocks = make_blocks(driver, 4, start_index=100)
        cpu_blocks = make_blocks(driver, 4, start_index=300)
        gpu_populate(env, driver, gpu_blocks)
        run(
            env,
            driver.make_resident_cpu(
                cpu_blocks, TransferReason.FAULT_MIGRATION, True
            ),
        )
        gpu_cost = run(env, UvmDiscard(driver).discard(gpu_blocks)).time_cost
        cpu_cost = run(env, UvmDiscard(driver).discard(cpu_blocks)).time_cost
        # CPU PTE teardown is local; GPU teardown crosses the interconnect.
        assert cpu_cost < gpu_cost
