"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism from §5 (or §6) and asserts the
direction of the effect the paper predicts:

1. **Discarded page queue (§5.5)** — disabling delayed reclamation makes
   access-after-discard lose its cheap revival path.
2. **Prefetch after discard (§4.2/§7.3)** — dropping the prefetch turns
   eager-discard reuse into a GPU fault storm (the paper's "as high as a
   3.9x slow-down ... merely from extra GPU page faults").
3. **Lazy without the mandatory prefetch (§5.2)** — the misuse detector
   catches the driver reclaiming re-written pages.
4. **2 MiB alignment policy (§5.4)** — partial discards are ignored
   rather than splitting mappings.
5. **Caching allocator (§6, Table 2)** — Listing 5's raw
   allocate/copy/free against the LMS caching allocator.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.baselines.lms import LmsTrainer
from repro.baselines.manual_swap import ManualSwapTrainer
from repro.cuda.device import gtx_1070, rtx_3080ti
from repro.driver.config import UvmDriverConfig
from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.units import MIB
from repro.workloads.dl import TrainerConfig, vgg16
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload


def test_ablation_discarded_queue(benchmark, save_table):
    """§5.5: the discarded FIFO enables cheap same-GPU revival."""

    def reuse_loop(config: UvmDriverConfig):
        runtime = CudaRuntime(
            gpu=rtx_3080ti().scaled(1 / 16), driver_config=config
        )

        def program(cuda):
            buffer = cuda.malloc_managed(256 * MIB, "scratch")
            for i in range(16):
                cuda.prefetch_async(buffer)
                cuda.launch(
                    KernelSpec(
                        f"k{i}",
                        [BufferAccess(buffer, AccessMode.WRITE)],
                        flops=1e8,
                        waves=4,
                    )
                )
                cuda.discard_async(buffer, mode="eager")
            yield from cuda.synchronize()

        runtime.run(program)
        return runtime

    def build():
        with_queue = reuse_loop(UvmDriverConfig(discarded_queue_enabled=True))
        without = reuse_loop(UvmDriverConfig(discarded_queue_enabled=False))
        return with_queue, without

    with_queue, without = run_once(benchmark, build)
    revivals = with_queue.driver.counters["discard_revivals"]
    zeroed_with = with_queue.driver.counters["zeroed_blocks"]
    zeroed_without = without.driver.counters["zeroed_blocks"]
    save_table(
        "ablation_discarded_queue",
        "Ablation: discarded page queue (16 reuse rounds of 256 MiB)\n"
        f"{'':<22}{'elapsed':>10}{'revivals':>10}{'zeroed':>8}\n"
        f"{'queue enabled':<22}{with_queue.elapsed * 1e3:>8.2f}ms"
        f"{revivals:>10}{zeroed_with:>8}\n"
        f"{'reclaim immediately':<22}{without.elapsed * 1e3:>8.2f}ms"
        f"{without.driver.counters['discard_revivals']:>10}"
        f"{zeroed_without:>8}",
    )
    # With the queue: later rounds revive frames instead of re-zeroing.
    assert revivals > 0
    assert without.driver.counters["discard_revivals"] == 0
    assert zeroed_without > 2 * zeroed_with
    assert with_queue.elapsed < without.elapsed


def test_ablation_prefetch_after_discard(benchmark, save_table):
    """§7.3: dropping the prefetch turns eager reuse into fault storms."""
    scale = bench_scale(0.125)
    workload = RadixSortWorkload(RadixSortConfig().scaled(scale))
    gpu = rtx_3080ti().scaled(scale)

    def build():
        with_prefetch = workload.run(
            System.UVM_DISCARD, 0.99, gpu, pcie_gen4(), prefetch=True
        )
        without = workload.run(
            System.UVM_DISCARD, 0.99, gpu, pcie_gen4(), prefetch=False
        )
        baseline = workload.run(
            System.UVM_OPT, 0.99, gpu, pcie_gen4(), prefetch=True
        )
        return with_prefetch, without, baseline

    with_prefetch, without, baseline = run_once(benchmark, build)
    slowdown_with = with_prefetch.elapsed_seconds / baseline.elapsed_seconds
    slowdown_without = without.elapsed_seconds / baseline.elapsed_seconds
    save_table(
        "ablation_prefetch_after_discard",
        "Ablation: UvmDiscard reuse at <100% (radix-sort, vs UVM-opt)\n"
        f"with prefetch:    {slowdown_with:.2f}x\n"
        f"without prefetch: {slowdown_without:.2f}x "
        f"({without.counters.get('gpu_fault_batches', 0)} fault batches)",
    )
    # Faults dwarf the prefetch path's overhead (paper: up to 3.9x).
    assert slowdown_without > slowdown_with + 0.15
    assert without.counters["gpu_fault_batches"] > 10 * max(
        1, with_prefetch.counters.get("gpu_fault_batches", 0)
    )


def test_ablation_lazy_misuse(benchmark, save_table):
    """§5.2: re-purposing a lazily-discarded region without the prefetch
    lets the driver reclaim pages that hold new values."""

    def build():
        runtime = CudaRuntime(gpu=rtx_3080ti().scaled(1 / 32))

        def program(cuda):
            victim = cuda.malloc_managed(128 * MIB, "victim")
            filler = cuda.malloc_managed(512 * MIB, "filler")
            cuda.launch(
                KernelSpec(
                    "produce", [BufferAccess(victim, AccessMode.WRITE)], flops=1e7
                )
            )
            cuda.discard_async(victim, mode="lazy")
            # MISUSE: write again without the mandatory prefetch.  The
            # mapping is still valid, so no fault tells the driver.
            cuda.launch(
                KernelSpec(
                    "rewrite", [BufferAccess(victim, AccessMode.WRITE)], flops=1e7
                )
            )
            # Memory pressure now reclaims the still-"discarded" blocks.
            cuda.launch(
                KernelSpec(
                    "pressure", [BufferAccess(filler, AccessMode.WRITE)],
                    flops=1e8, waves=8,
                )
            )
            yield from cuda.synchronize()
            # The guaranteed-visible rewrite is gone.
            yield from cuda.host_read(victim)

        runtime.run(program)
        return runtime

    runtime = run_once(benchmark, build)
    misuses = runtime.driver.counters["lazy_misuses"]
    corrupted = runtime.driver.oracle.corruption_count
    corrupted_reads = runtime.driver.oracle.corrupted_read_count
    save_table(
        "ablation_lazy_misuse",
        "Ablation: UvmDiscardLazy reuse without the mandatory prefetch\n"
        f"misused reclaims: {misuses}, corrupted blocks: {corrupted}, "
        f"reads of lost data: {corrupted_reads}",
    )
    assert misuses > 0
    assert corrupted > 0
    assert corrupted_reads > 0


def test_ablation_partial_discard_policy(benchmark, save_table):
    """§5.4: partial (non-2MiB-aligned) discard requests are ignored."""

    def build():
        runtime = CudaRuntime(gpu=rtx_3080ti().scaled(1 / 16))
        outcome = {}

        def program(cuda):
            buffer = cuda.malloc_managed(64 * MIB, "buf")
            cuda.prefetch_async(buffer)
            cuda.launch(
                KernelSpec(
                    "fill", [BufferAccess(buffer, AccessMode.WRITE)], flops=1e7
                )
            )
            # Discard a range that covers 30 full blocks plus two ragged
            # halves at either end.
            ragged = buffer.subrange(1 * MIB, 62 * MIB)
            process = cuda.discard_async(buffer, rng=ragged, mode="eager")
            yield from cuda.synchronize()
            outcome["result"] = process.value

        runtime.run(program)
        return outcome["result"]

    outcome = run_once(benchmark, build)
    save_table(
        "ablation_partial_discard",
        "Ablation: ragged 62 MiB discard inside a 64 MiB buffer\n"
        f"discarded full blocks: {outcome.discarded_blocks}, "
        f"ignored partial blocks: {outcome.ignored_partial_blocks}",
    )
    assert outcome.discarded_blocks == 30
    assert outcome.ignored_partial_blocks == 2


def test_ablation_split_mappings(benchmark, save_table):
    """§5.4 with the policy disabled: partial discards split 2 MiB
    mappings and the remainder migrates in slow 4 KiB pieces."""
    from repro.units import MIB as _MIB

    def evict_time(require_full_blocks: bool):
        config = UvmDriverConfig(require_full_blocks=require_full_blocks)
        runtime = CudaRuntime(
            gpu=rtx_3080ti().scaled(1 / 64), driver_config=config
        )
        buffer = cuda_buffer = runtime.malloc_managed(64 * _MIB, "buf")
        filler = runtime.malloc_managed(160 * _MIB, "filler")
        outcome = {}

        def program(cuda):
            cuda.prefetch_async(cuda_buffer)
            cuda.launch(
                KernelSpec(
                    "fill", [BufferAccess(cuda_buffer, AccessMode.WRITE)],
                    flops=1e7,
                )
            )
            # Ragged discard: every block partially covered -> with the
            # policy off, every mapping splits; the live remainders must
            # then be evicted at 4 KiB granularity under pressure.
            ragged = buffer.subrange(1 * _MIB, 30 * _MIB)
            process = cuda.discard_async(buffer, rng=ragged, mode="eager")
            yield from cuda.synchronize()
            outcome["discard"] = process.value
            start = cuda.env.now
            cuda.prefetch_async(filler)  # pressure: evict the remainders
            yield from cuda.synchronize()
            outcome["evict_seconds"] = cuda.env.now - start

        runtime.run(program)
        return outcome

    def build():
        return evict_time(True), evict_time(False)

    aligned, split = run_once(benchmark, build)
    save_table(
        "ablation_split_mappings",
        "Ablation: partial discard with/without the 2 MiB policy\n"
        f"{'policy on (ignore partials)':<30}"
        f"evict={aligned['evict_seconds'] * 1e3:7.2f}ms "
        f"split={aligned['discard'].split_blocks}\n"
        f"{'policy off (split mappings)':<30}"
        f"evict={split['evict_seconds'] * 1e3:7.2f}ms "
        f"split={split['discard'].split_blocks}",
    )
    assert aligned["discard"].split_blocks == 0
    assert split["discard"].split_blocks > 0
    # The split ragged edges evict in 4 KiB pieces: strictly slower than
    # the policy-on path's full-bandwidth eviction of the same blocks.
    assert split["evict_seconds"] > aligned["evict_seconds"]


def test_ablation_caching_allocator(benchmark, save_table):
    """§6/Table 2: caching beats raw per-layer cudaMalloc/cudaFree."""
    scale = bench_scale(0.25)
    network = vgg16().scaled(scale)
    gpu = gtx_1070().scaled(scale)
    config = TrainerConfig(batch_size=40)

    def build():
        cached = LmsTrainer(network, config).run(gpu, pcie_gen3())
        raw = ManualSwapTrainer(network, config).run(gpu, pcie_gen3())
        return cached, raw

    cached, raw = run_once(benchmark, build)
    save_table(
        "ablation_caching_allocator",
        "Ablation: LMS caching allocator vs Listing-5 raw alloc/free\n"
        f"{'PyTorch-LMS (cached)':<24}{cached.metric:>8.1f} img/s\n"
        f"{'Manual swap (Listing 5)':<24}{raw.metric:>8.1f} img/s",
    )
    # Caching clearly outperforms paying Table-2 costs per layer.
    assert cached.metric > 1.1 * raw.metric
