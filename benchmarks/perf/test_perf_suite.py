"""Simulator-kernel perf suite, runnable as ``pytest benchmarks/perf``.

Unlike the paper benchmarks in ``benchmarks/``, these measure the
simulator's own wall time.  Two layers of assertions:

- **Determinism** (always on): the non-wall metrics — simulated event
  counts, traffic bytes — must match the committed baseline exactly.
  An optimization that changes them changed simulation behaviour, not
  just speed.
- **Wall time** (opt-in via ``REPRO_PERF_STRICT=1``, used by the CI
  perf-smoke job): each benchmark must finish within
  ``DEFAULT_MAX_REGRESSION`` (2x) of the committed baseline.  Off by
  default so laptops under load don't flake.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.harness.perf import (
    BENCHMARKS,
    NONDETERMINISTIC_KEYS,
    check_regressions,
    load_bench_json,
    run_benchmarks,
)

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"


@pytest.fixture(scope="module")
def results():
    return run_benchmarks(repeat=1)


@pytest.fixture(scope="module")
def baseline():
    return load_bench_json(BASELINE_PATH.read_text())


def test_suite_covers_all_benchmarks(results, baseline):
    assert set(results) == set(BENCHMARKS)
    assert set(baseline) == set(BENCHMARKS)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_deterministic_metrics_match_baseline(results, baseline, name):
    current = {
        k: v for k, v in results[name].items() if k not in NONDETERMINISTIC_KEYS
    }
    expected = {
        k: v for k, v in baseline[name].items() if k not in NONDETERMINISTIC_KEYS
    }
    assert current == expected


def test_wall_times_positive(results):
    for name, entry in results.items():
        assert entry["wall_seconds"] > 0, name


@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_STRICT") != "1",
    reason="wall-clock gate is CI-only (REPRO_PERF_STRICT=1)",
)
def test_no_wall_time_regression(results, baseline):
    failures = check_regressions(results, baseline)
    assert not failures, "\n".join(failures)


@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_STRICT") != "1",
    reason="wall-clock gate is CI-only (REPRO_PERF_STRICT=1)",
)
def test_sweep_prefix_speedup(results):
    """Shared-prefix forking + fast-forward must beat cold per-point
    execution by the margin the optimization exists for."""
    assert results["sweep_prefix"]["speedup"] >= 3.0


@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_STRICT") != "1",
    reason="wall-clock gate is CI-only (REPRO_PERF_STRICT=1)",
)
def test_blob_fork_beats_deepcopy(results):
    """The serialize-once blob transport must fork at least 2x faster
    than the deepcopy it replaced (measured ~5-7x in practice)."""
    assert results["snapshot_fork"]["fork_speedup"] >= 2.0
