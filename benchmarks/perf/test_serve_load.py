"""Load/soak battery for the experiment server, ``pytest benchmarks/perf``.

These are the heavy serving benchmarks that back the PR's acceptance
criteria, kept out of the tier-1 ``tests/`` tree (like the kernel perf
suite next door) because they fire hundreds of requests:

- **concurrency**: the server sustains 100+ concurrently-open HTTP
  requests with zero failed or incorrect responses (pinned via the
  ``http.peak`` high-water mark in ``/metrics``),
- **soak with dedup**: a seeded duplicate-heavy mix over the standard
  point population reports p50/p99 latency, a dedup hit-rate > 0, both
  cold and forked pool serves, and spot-checked byte-identity against
  local :func:`~repro.harness.sweep.execute_point` runs,
- **overload**: with a tiny queue, the retrying client absorbs 429
  backpressure and still completes every request.

All servers here use the thread executor so pool counters land in one
process and the run stays deterministic-ish on small CI boxes.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import subprocess
import sys
import threading

import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import ExperimentServer, ServeConfig

#: Four radix points sharing one setup prefix.  At scale 0.125 each
#: simulates for ~300 ms — long enough that every client in the
#: concurrency test is connected before the first response lands.
SLOW_POINTS = [
    {"workload": "radix", "system": system, "ratio": ratio, "scale": 0.125}
    for system in ("UvmDiscard", "UVM-opt")
    for ratio in (1.5, 2.0)
]


class _Server:
    """An :class:`ExperimentServer` on a background event loop."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("executor", "thread")
        overrides.setdefault("cache_dir", None)
        self.config = ServeConfig(**overrides)
        self.server = None
        self.exit_code = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(20), "server failed to start"
        return self

    def __exit__(self, *_exc):
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=120)
        assert not self._thread.is_alive()

    def _main(self):
        asyncio.run(self._amain())

    async def _amain(self):
        self.server = ExperimentServer(self.config)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        self.exit_code = await self.server.run_until_stopped(install_signals=False)

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.port}"


def test_sustains_100_concurrent_inflight_requests():
    """120 clients, slow points, no disk cache: every request is either
    simulating or coalesced-waiting, so all are in flight together.

    The server runs in its own process (as in production): in-process
    it would share the GIL with 120 client threads and the simulation
    workers, starving the accept loop and capping observed concurrency.
    """
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--executor", "thread",
            "--workers", "4",
            "--queue-limit", "256",
            "--no-cache",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        announce = process.stdout.readline()
        assert announce.startswith("serving on http://127.0.0.1:"), announce
        url = announce.split()[2]
        report = run_load(
            url,
            requests=120,
            clients=120,
            duplicate_fraction=0.9,
            seed=11,
            points=SLOW_POINTS,
            timeout=300.0,
        )
        assert report.failed == 0, report.errors
        assert report.ok == 120
        peak = report.metrics["http"]["peak"]
        assert peak >= 100, f"only {peak} concurrent in-flight requests"
        # Coalescing absorbed the duplicate flood.  (Not exactly 4
        # simulations: with the cache off, a straggler arriving after
        # the first wave completed re-simulates its point.)
        assert report.provenance.get("coalesced", 0) >= 80
        assert report.metrics["counters"]["serve/simulated"] <= 40
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=30)


def test_soak_duplicate_mix_dedups_and_stays_byte_identical(tmp_path):
    """300 requests over the 12-point population: cache + pool dedup are
    observable, latency quantiles are reported, and a sample of served
    outcomes matches local `repro run` results byte-for-byte."""
    with _Server(
        workers=4, queue_limit=256, cache_dir=tmp_path / "cache"
    ) as running:
        report = run_load(
            running.url,
            requests=300,
            clients=60,
            duplicate_fraction=0.5,
            seed=7,
            timeout=300.0,
            verify_identity=3,
        )
        assert report.failed == 0, report.errors
        assert report.ok == 300
        assert report.identity_checked == 3
        assert report.identity_mismatches == 0

        # Dedup: duplicates must not have re-simulated.
        assert report.dedup_hits > 0
        assert report.metrics["counters"]["serve/simulated"] <= 12

        # Warm pool: the first point per prefix cold-starts, later
        # distinct points fork — both observable client- and server-side.
        assert report.sources.get("cold", 0) > 0
        assert report.sources.get("fork", 0) > 0
        assert report.metrics["pool_hit_rate"] > 0.0

        # Latency quantiles come out of both the client report and the
        # server histogram.
        assert 0.0 < report.p50 <= report.p99
        server_latency = report.metrics["histograms"]["serve/request_seconds"]
        assert server_latency["count"] >= report.metrics["counters"].get(
            "serve/simulated", 0
        )
        assert 0.0 < server_latency["p50"] <= server_latency["p99"]

        lines = report.summary_lines()
        assert any("p99" in line for line in lines)
    assert running.exit_code == 0


def test_overload_backpressure_is_absorbed_by_retries():
    """A queue of 2 with one worker rejects most of the first wave; the
    retrying clients honor Retry-After and everything still completes."""
    with _Server(workers=1, queue_limit=2) as running:
        report = run_load(
            running.url,
            requests=24,
            clients=12,
            duplicate_fraction=0.0,
            seed=3,
            timeout=300.0,
        )
        assert report.failed == 0, report.errors
        assert report.ok == 24
        assert report.retries_429 > 0
        assert report.metrics["counters"]["serve/rejected_busy"] > 0
    assert running.exit_code == 0


def test_rate_limited_clients_retry_and_complete(tmp_path):
    """With a per-client token bucket in force, clients hit 429s, honor
    Retry-After, and still finish the full schedule with zero failures."""
    with _Server(
        workers=2,
        queue_limit=64,
        rate=20.0,
        burst=2.0,
        cache_dir=tmp_path / "cache",
    ) as running:
        report = run_load(
            running.url,
            requests=100,
            clients=10,
            duplicate_fraction=0.5,
            seed=5,
            timeout=300.0,
        )
        assert report.failed == 0, report.errors
        assert report.ok == 100
        assert report.metrics["counters"].get("serve/rejected_rate", 0) > 0
        assert report.retries_429 > 0
    assert running.exit_code == 0


def test_load_report_is_json_serializable(tmp_path):
    """The artifact the CI smoke job uploads must always serialize."""
    import json

    with _Server(workers=2, queue_limit=64, cache_dir=tmp_path / "cache") as running:
        report = run_load(running.url, requests=20, clients=5, seed=1)
    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    assert json.loads(payload)["ok"] == 20
