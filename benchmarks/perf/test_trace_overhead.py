"""Tracing must be free when disabled.

Two layers, mirroring ``test_perf_suite.py``:

- **Structural** (always on): after an untraced run every instrumented
  object still holds the shared :data:`NULL_TRACER` singleton, and a
  disabled :class:`Tracer` refuses to attach anything — so the disabled
  configuration's entire cost is one attribute load plus a truth test
  per instrumented call site, none of which sit on engine hot loops.
- **Wall time** (opt-in via ``REPRO_PERF_STRICT=1``, the CI perf-smoke
  job): ``engine_churn`` — the pure engine event loop, which by
  construction contains zero tracer code — must stay within
  ``REPRO_TRACE_OVERHEAD_FACTOR`` (default 1.05) of the committed
  baseline.  The tighter-than-2x budget is the ISSUE's "<= 5% overhead
  with tracing disabled" acceptance gate; the env override exists for
  runner generations whose absolute speed differs from the baseline
  machine's.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.perf import load_bench_json, run_benchmarks
from repro.instrument.trace import NULL_TRACER, TraceConfig, Tracer

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"

OVERHEAD_FACTOR_ENV = "REPRO_TRACE_OVERHEAD_FACTOR"
DEFAULT_OVERHEAD_FACTOR = 1.05


def _small_runtime():
    import numpy as np

    from repro.cuda.runtime import CudaRuntime

    runtime = CudaRuntime()

    def program(cuda):
        from repro.workloads.vector_add import uvm_vector_add

        result = yield from uvm_vector_add(cuda, 1 << 16)
        assert np.allclose(result, np.arange(1 << 16, dtype=np.float32) + 2.0)

    runtime.run(program)
    return runtime


def test_untraced_run_keeps_null_tracer_everywhere():
    runtime = _small_runtime()
    assert runtime.tracer is NULL_TRACER
    assert runtime.driver.tracer is NULL_TRACER
    assert runtime.driver.migration.tracer is NULL_TRACER
    for executor in runtime.executors.values():
        assert executor.tracer is NULL_TRACER
    for stream in runtime.streams():
        assert stream.tracer is NULL_TRACER


def test_disabled_tracer_install_is_a_noop():
    runtime = _small_runtime()
    tracer = Tracer(TraceConfig(enabled=False))
    assert tracer.install(runtime) is tracer
    assert runtime.driver.tracer is NULL_TRACER
    assert tracer.events == []
    tracer.uninstall()  # must not raise


def test_null_tracer_survives_copies():
    import copy

    assert copy.copy(NULL_TRACER) is NULL_TRACER
    assert copy.deepcopy(NULL_TRACER) is NULL_TRACER
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("t", "n", 0.0, 1.0) == -1
    assert NULL_TRACER.instant("t", "n", 0.0) == -1


@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_STRICT") != "1",
    reason="wall-clock gate is CI-only (REPRO_PERF_STRICT=1)",
)
def test_tracing_disabled_engine_churn_overhead():
    baseline = load_bench_json(BASELINE_PATH.read_text())
    factor = float(
        os.environ.get(OVERHEAD_FACTOR_ENV, DEFAULT_OVERHEAD_FACTOR)
    )
    results = run_benchmarks(["engine_churn"], repeat=5)
    wall = results["engine_churn"]["wall_seconds"]
    limit = baseline["engine_churn"]["wall_seconds"] * factor
    assert wall <= limit, (
        f"engine_churn {wall:.4f} s exceeds the tracing-disabled overhead "
        f"budget {limit:.4f} s ({factor:g}x baseline); either tracer code "
        f"leaked onto the engine hot path or the runner is slower than the "
        f"baseline machine (override with {OVERHEAD_FACTOR_ENV})"
    )
