"""Figure 4: `cudaMemPrefetchAsync` throughput vs transfer size.

Measured end-to-end through the simulated driver: a host-populated
managed buffer is prefetched to the GPU and the achieved bytes/second
recorded, for sizes from 64 KiB to 1 GiB on both PCIe generations.

Paper shape asserted: throughput is a steep function of transfer size
(small transfers are overhead-dominated), saturating near 25 GB/s on
PCIe-4 and near half that on PCIe-3 — which is why the driver operates
on 2 MiB blocks and why partial discards are not worth splitting a
mapping over (§5.4).
"""

from __future__ import annotations

from conftest import run_once

from repro.cuda.runtime import CudaRuntime
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.units import GIB, KIB, MIB

SIZES = (
    64 * KIB,
    256 * KIB,
    1 * MIB,
    4 * MIB,
    16 * MIB,
    64 * MIB,
    256 * MIB,
    1 * GIB,
)


def prefetch_throughput(link_factory, nbytes: int) -> float:
    """Achieved prefetch throughput (B/s) for one buffer size."""
    runtime = CudaRuntime(link=link_factory())
    probe = {}

    def program(cuda):
        buffer = cuda.malloc_managed(nbytes, "probe")
        yield from cuda.host_write(buffer)
        start = cuda.env.now
        cuda.prefetch_async(buffer)
        yield from cuda.synchronize()
        probe["seconds"] = cuda.env.now - start

    runtime.run(program)
    return nbytes / probe["seconds"]


def test_fig4_prefetch_throughput(benchmark, save_table):
    def sweep():
        return {
            name: [prefetch_throughput(factory, s) for s in SIZES]
            for name, factory in (("PCIe-3", pcie_gen3), ("PCIe-4", pcie_gen4))
        }

    curves = run_once(benchmark, sweep)

    lines = ["Figure 4: cudaMemPrefetchAsync throughput (GB/s) vs size"]
    lines.append(
        f"{'size':>10}" + "".join(f"{name:>10}" for name in curves)
    )
    for i, size in enumerate(SIZES):
        label = f"{size // KIB}K" if size < MIB else f"{size // MIB}M"
        lines.append(
            f"{label:>10}"
            + "".join(f"{curves[name][i] / 1e9:>10.2f}" for name in curves)
        )
    save_table("fig4_prefetch_throughput", "\n".join(lines))

    for name, peak in (("PCIe-3", 12.6e9), ("PCIe-4", 25e9)):
        series = curves[name]
        # Monotone in transfer size.
        assert all(a <= b * 1.001 for a, b in zip(series, series[1:]))
        # Small transfers are far below peak; big ones approach it.
        assert series[0] < 0.45 * peak
        assert series[-1] > 0.80 * peak
        assert series[-1] < 1.01 * peak
    # PCIe-4 roughly doubles PCIe-3 at large sizes.
    assert 1.6 < curves["PCIe-4"][-1] / curves["PCIe-3"][-1] < 2.4
    benchmark.extra_info["gbps"] = {
        name: [v / 1e9 for v in series] for name, series in curves.items()
    }
