"""Shared deep-learning sweep driver for the Figure 3/5/6/7 benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from conftest import bench_scale

from repro.cuda.device import rtx_3080ti
from repro.errors import OutOfMemoryError
from repro.harness.results import ExperimentResult
from repro.harness.systems import System
from repro.interconnect.link import Link
from repro.workloads.dl import (
    DarknetTrainer,
    TrainerConfig,
    darknet19,
    resnet53,
    rnn_shakespeare,
    vgg16,
)

#: Per-network batch-size grids spanning the §7.5 capacity crossover.
BATCH_GRID: Dict[str, Tuple[int, ...]] = {
    "VGG-16": (50, 75, 100, 125, 150),
    "Darknet-19": (86, 171, 260, 360),
    "ResNet-53": (28, 56, 100, 150),
    "RNN": (75, 150, 225, 300),
}

NETWORK_FACTORIES = {
    "VGG-16": vgg16,
    "Darknet-19": darknet19,
    "ResNet-53": resnet53,
    "RNN": rnn_shakespeare,
}

DL_SYSTEMS = (
    System.NO_UVM,
    System.UVM_OPT,
    System.UVM_DISCARD,
    System.UVM_DISCARD_LAZY,
)


def dl_sweep(
    link_factory: Callable[[], Link],
    systems: Iterable[System],
    networks: Iterable[str] = tuple(BATCH_GRID),
    default_scale: float = 0.125,
) -> Dict[str, Dict[str, List[ExperimentResult]]]:
    """Train every (network, batch, system) cell; OOM rows become None.

    Returns ``{network: {system_name: [result-or-None per batch]}}``.
    """
    scale = bench_scale(default_scale)
    gpu = rtx_3080ti().scaled(scale)
    sweep: Dict[str, Dict[str, List[ExperimentResult]]] = {}
    for name in networks:
        network = NETWORK_FACTORIES[name]().scaled(scale)
        per_system: Dict[str, List[ExperimentResult]] = {}
        for system in systems:
            rows: List[ExperimentResult] = []
            for batch_size in BATCH_GRID[name]:
                trainer = DarknetTrainer(
                    network, TrainerConfig(batch_size=batch_size), system
                )
                try:
                    rows.append(trainer.run(gpu, link_factory()))
                except OutOfMemoryError:
                    rows.append(None)
            per_system[system.value] = rows
        sweep[name] = per_system
    return sweep


def render_sweep(
    title: str,
    sweep: Dict[str, Dict[str, List[ExperimentResult]]],
    value: Callable[[ExperimentResult], float],
    fmt: str = "{:.1f}",
) -> str:
    """Render one metric of a sweep as per-network text tables."""
    lines = [title]
    for name, per_system in sweep.items():
        lines.append("")
        lines.append(
            f"{name:<18}" + "".join(f"{b:>10}" for b in BATCH_GRID[name])
        )
        for system, rows in per_system.items():
            cells = [
                f"{fmt.format(value(r)) if r is not None else 'OOM':>10}"
                for r in rows
            ]
            lines.append(f"{system:<18}" + "".join(cells))
    return "\n".join(lines)
