"""Shared deep-learning sweep driver for the Figure 3/5/6/7 benchmarks.

Thin shim over :mod:`repro.harness.sweep`: each figure declares its
(network x system x batch) grid here and the sweep engine executes it —
optionally across worker processes (``REPRO_BENCH_JOBS``) and against
the on-disk result cache (``REPRO_BENCH_CACHE=1``), exactly like the
CLI's ``sweep`` subcommand.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from conftest import bench_cache, bench_jobs, bench_scale

from repro.harness.results import ExperimentResult
from repro.harness.sweep import DL_BATCH_GRID, SweepPoint, run_sweep
from repro.harness.systems import System
from repro.interconnect.link import Link
from repro.workloads.dl import darknet19, resnet53, rnn_shakespeare, vgg16

#: Display name -> sweep workload key for the four §7.5 networks.
NETWORK_KEYS = {
    "VGG-16": "vgg16",
    "Darknet-19": "darknet19",
    "ResNet-53": "resnet53",
    "RNN": "rnn",
}

#: Per-network batch-size grids spanning the §7.5 capacity crossover.
BATCH_GRID: Dict[str, Tuple[int, ...]] = {
    name: DL_BATCH_GRID[key] for name, key in NETWORK_KEYS.items()
}

NETWORK_FACTORIES = {
    "VGG-16": vgg16,
    "Darknet-19": darknet19,
    "ResNet-53": resnet53,
    "RNN": rnn_shakespeare,
}

DL_SYSTEMS = (
    System.NO_UVM,
    System.UVM_OPT,
    System.UVM_DISCARD,
    System.UVM_DISCARD_LAZY,
)

#: Link-factory -> sweep link name (the factories the benchmarks pass).
_LINK_NAMES = {"pcie_gen3": "gen3", "pcie_gen4": "gen4"}


def dl_sweep(
    link_factory: Callable[[], Link],
    systems: Iterable[System],
    networks: Iterable[str] = tuple(BATCH_GRID),
    default_scale: float = 0.125,
) -> Dict[str, Dict[str, List[ExperimentResult]]]:
    """Train every (network, batch, system) cell; OOM rows become None.

    Returns ``{network: {system_name: [result-or-None per batch]}}``.
    """
    link_name = _LINK_NAMES[link_factory.__name__]
    scale = bench_scale(default_scale)
    networks = list(networks)
    systems = list(systems)
    points = [
        SweepPoint(
            workload=f"dl:{NETWORK_KEYS[name]}",
            system=system.value,
            link=link_name,
            batch_size=batch_size,
            scale=scale,
        )
        for name in networks
        for system in systems
        for batch_size in BATCH_GRID[name]
    ]
    report = run_sweep(points, jobs=bench_jobs(), cache=bench_cache())
    sweep: Dict[str, Dict[str, List[ExperimentResult]]] = {}
    rows = iter(report.results)
    for name in networks:
        per_system: Dict[str, List[ExperimentResult]] = {}
        for system in systems:
            per_system[system.value] = [next(rows) for _ in BATCH_GRID[name]]
        sweep[name] = per_system
    return sweep


def render_sweep(
    title: str,
    sweep: Dict[str, Dict[str, List[ExperimentResult]]],
    value: Callable[[ExperimentResult], float],
    fmt: str = "{:.1f}",
) -> str:
    """Render one metric of a sweep as per-network text tables."""
    lines = [title]
    for name, per_system in sweep.items():
        lines.append("")
        lines.append(
            f"{name:<18}" + "".join(f"{b:>10}" for b in BATCH_GRID[name])
        )
        for system, rows in per_system.items():
            cells = [
                f"{fmt.format(value(r)) if r is not None else 'OOM':>10}"
                for r in rows
            ]
            lines.append(f"{system:<18}" + "".join(cells))
    return "\n".join(lines)
