"""Discussion bench: gradient checkpointing vs the discard directive.

The paper's related work ([41]): "Other approach chooses to recompute
intermediate results to save memory consumption, but it does not
ultimately avoid RMTs."  This bench trains the uniform-layer RNN at an
oversubscribing batch size three ways and quantifies the trade:

- **UVM-opt** — stores everything, pays full RMTs,
- **UvmDiscard** — stores everything, RMTs eliminated by discard,
- **Checkpoint** — stores 1/segment of the activations and recomputes,
  paying ~an extra forward pass of FLOPs.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, rnn_shakespeare
from repro.workloads.dl.checkpoint import CheckpointTrainer

BATCH = 300  # ~2x the 3080 Ti's capacity for this network


def test_discussion_checkpoint_vs_discard(benchmark, save_table):
    scale = bench_scale(0.125)
    network = rnn_shakespeare().scaled(scale)
    gpu = rtx_3080ti().scaled(scale)
    config = TrainerConfig(batch_size=BATCH)

    def build():
        rows = {}
        for system in (System.UVM_OPT, System.UVM_DISCARD):
            rows[system.value] = DarknetTrainer(network, config, system).run(
                gpu, pcie_gen4()
            )
        rows["Checkpoint"] = CheckpointTrainer(
            network, config, segment=5
        ).run(gpu, pcie_gen4())
        return rows

    rows = run_once(benchmark, build)
    lines = [
        f"Discussion [41]: recompute vs discard (RNN, batch {BATCH})",
        f"{'system':<14}{'img/s':>10}{'traffic':>10}",
    ]
    for name, result in rows.items():
        lines.append(
            f"{name:<14}{result.metric:>10.1f}{result.traffic_gb:>9.2f}G"
        )
    save_table("discussion_checkpoint", "\n".join(lines))

    opt = rows[System.UVM_OPT.value]
    discard = rows[System.UVM_DISCARD.value]
    checkpoint = rows["Checkpoint"]
    # Checkpointing moves the least data (smallest live footprint)...
    assert checkpoint.traffic_gb < discard.traffic_gb < opt.traffic_gb
    # ...but its recompute cost keeps discard the fastest overall at this
    # compute-intensive operating point — the paper's argument that
    # recomputation "does not ultimately avoid RMTs" (it still moves the
    # checkpoints and pays FLOPs for the rest).
    assert discard.metric > checkpoint.metric
    assert checkpoint.traffic_gb > 0  # RMT-prone data remains
