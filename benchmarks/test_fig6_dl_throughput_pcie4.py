"""Figure 6: deep-learning training throughput over PCIe-4.

Four networks x four systems (No-UVM, UVM-opt, UvmDiscard,
UvmDiscardLazy) across batch sizes spanning the capacity crossover.

Paper shape asserted, per network:

- No-UVM leads slightly while it fits and disappears (OOM) beyond,
- UVM-opt trails No-UVM only marginally when everything fits,
- the eager UvmDiscard shows its unmapping overhead at fit sizes while
  UvmDiscardLazy stays at UVM-opt level (§7.5.1) — except for the
  compute-intensive RNN, where overlap hides everything,
- once oversubscribed, both discard variants clearly beat UVM-opt
  (paper: +22.8% on the RNN up to +61.2% on ResNet-53).
"""

from __future__ import annotations

from conftest import run_once
from dl_common import DL_SYSTEMS, dl_sweep, render_sweep

from repro.harness.systems import System
from repro.interconnect import pcie_gen4

LINK_FACTORY = pcie_gen4
NAME = "fig6_dl_throughput_pcie4"
TITLE = "Figure 6: DL training throughput (img/s), PCIe-4"


def check_sweep(sweep):
    for name, per_system in sweep.items():
        no_uvm = per_system[System.NO_UVM.value]
        opt = per_system[System.UVM_OPT.value]
        eager = per_system[System.UVM_DISCARD.value]
        lazy = per_system[System.UVM_DISCARD_LAZY.value]
        # No-UVM works at the smallest batch and OOMs at the largest.
        assert no_uvm[0] is not None and no_uvm[-1] is None, name
        # Fit sizes: UVM-opt within a whisker of No-UVM; lazy matches
        # UVM-opt; eager is the slowest UVM variant (its unmap overhead).
        assert opt[0].metric > 0.9 * no_uvm[0].metric, name
        # Lazy recovers most of eager's fit-size overhead; a few percent
        # of per-call cost remains visible on many-layer networks at the
        # reduced bench scale.
        assert lazy[0].metric > 0.93 * opt[0].metric, name
        assert eager[0].metric <= lazy[0].metric * 1.01, name
        # Oversubscribed: both discard variants clearly beat UVM-opt.
        assert eager[-1].metric > 1.1 * opt[-1].metric, name
        assert lazy[-1].metric > 1.1 * opt[-1].metric, name
        # Throughput decays past the crossover for UVM-opt.
        assert opt[-1].metric < 0.9 * opt[0].metric, name


def test_fig6_dl_throughput(benchmark, save_table):
    sweep = run_once(benchmark, lambda: dl_sweep(LINK_FACTORY, DL_SYSTEMS))
    save_table(NAME, render_sweep(TITLE, sweep, lambda r: r.metric))
    check_sweep(sweep)
    benchmark.extra_info["images_per_second"] = {
        name: {
            system: [r.metric if r is not None else None for r in rows]
            for system, rows in per_system.items()
        }
        for name, per_system in sweep.items()
    }
