"""Table 1: VGG-16 training on a GTX 1070 (8 GB, PCIe-3).

Compares PyTorch-LMS (manual swapping + caching allocator),
DarkNet-UVM (UVM-opt) and DarkNet-Discard (UVM + UvmDiscard) at batch
sizes 40-80; the GPU oversubscribes from batch 60 up.

Paper shape asserted: LMS throughput is flat and low, with large,
batch-proportional traffic at *every* size; UVM is markedly faster with
near-zero traffic while the model fits, then degrades past the
crossover; the discard variant recovers part of the loss and cuts the
oversubscribed traffic.
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.baselines.lms import LmsTrainer
from repro.cuda.device import gtx_1070
from repro.harness.results import ResultTable
from repro.harness.systems import System
from repro.interconnect import pcie_gen3
from repro.workloads.dl import DarknetTrainer, TrainerConfig, vgg16

BATCH_SIZES = (40, 50, 60, 70, 80)
ROWS = ("PyTorch-LMS", "DarkNet-UVM", "DarkNet-Discard")


def run_table1():
    scale = bench_scale(0.25)
    network = vgg16().scaled(scale)
    gpu = gtx_1070().scaled(scale)
    table = ResultTable("Table 1", [str(b) for b in BATCH_SIZES])
    for batch_size in BATCH_SIZES:
        config = TrainerConfig(batch_size=batch_size)
        lms = LmsTrainer(network, config).run(
            gpu, pcie_gen3(), config_label=str(batch_size)
        )
        lms.system = "PyTorch-LMS"
        table.add(lms)
        for label, system in (
            ("DarkNet-UVM", System.UVM_OPT),
            ("DarkNet-Discard", System.UVM_DISCARD),
        ):
            result = DarknetTrainer(network, config, system).run(
                gpu, pcie_gen3(), config_label=str(batch_size)
            )
            result.system = label
            table.add(result)
    return table


def test_table1_vgg16_gtx1070(benchmark, save_table):
    table = run_once(benchmark, run_table1)

    text = (
        "Table 1: VGG-16 on GTX 1070 — throughput (img/s)\n"
        + table.render("metric", fmt="{:.1f}")
        + "\n\nTable 1: VGG-16 on GTX 1070 — PCIe traffic (GB, measured batches)\n"
        + table.render("traffic_gb")
    )
    save_table("table1_vgg16_gtx1070", text)

    def tp(system, batch):
        return table.get(system, str(batch)).metric

    def traffic(system, batch):
        return table.get(system, str(batch)).traffic_gb

    # LMS: flat throughput, heavy traffic at every batch size.
    lms_tps = [tp("PyTorch-LMS", b) for b in BATCH_SIZES]
    assert max(lms_tps) / min(lms_tps) < 1.25
    for batch in BATCH_SIZES:
        assert traffic("PyTorch-LMS", batch) > 10 * traffic("DarkNet-UVM", 40)
    # UVM beats LMS while the model fits (paper: 29 vs 16 img/s).
    assert tp("DarkNet-UVM", 40) > 1.3 * tp("PyTorch-LMS", 40)
    # UVM throughput decays once oversubscribed (29 → 20).
    assert tp("DarkNet-UVM", 80) < 0.9 * tp("DarkNet-UVM", 40)
    # Discard beats plain UVM when oversubscribed (24 vs 20 at 80)...
    assert tp("DarkNet-Discard", 80) > tp("DarkNet-UVM", 80)
    # ...and cuts its traffic substantially (58 vs 152 at 80).
    assert traffic("DarkNet-Discard", 80) < 0.6 * traffic("DarkNet-UVM", 80)
    benchmark.extra_info["throughput"] = {
        row: [tp(row, b) for b in BATCH_SIZES] for row in ROWS
    }
    benchmark.extra_info["traffic_gb"] = {
        row: [traffic(row, b) for b in BATCH_SIZES] for row in ROWS
    }
