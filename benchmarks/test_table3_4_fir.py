"""Tables 3 and 4: FIR normalized runtime (PCIe-3/4) and PCIe traffic.

Paper shape asserted: the discard variants eliminate an (almost)
constant amount of eviction traffic at every oversubscription ratio,
roughly halving runtime at 200 % and winning less as the baseline's
useful-output eviction traffic grows; at <100 % they cost nothing
measurable.
"""

from __future__ import annotations

import pytest
from conftest import bench_scale, run_once

from repro.cuda.device import rtx_3080ti
from repro.harness.results import ResultTable
from repro.harness.runner import ratio_label
from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.workloads.fir import FirConfig, FirWorkload

RATIOS = (0.99, 2.0, 3.0, 4.0)
SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)


def run_fir(link_factory):
    scale = bench_scale(0.25)
    workload = FirWorkload(FirConfig().scaled(scale))
    gpu = rtx_3080ti().scaled(scale)
    table = ResultTable("FIR", [ratio_label(r) for r in RATIOS])
    for ratio in RATIOS:
        for system in SYSTEMS:
            table.add(workload.run(system, ratio, gpu, link_factory()))
    return table


@pytest.mark.parametrize(
    "link_name,link_factory", [("PCIe-3", pcie_gen3), ("PCIe-4", pcie_gen4)]
)
def test_table3_4_fir(benchmark, save_table, link_name, link_factory):
    table = run_once(benchmark, lambda: run_fir(link_factory))

    runtime_text = table.render(
        "normalized_runtime", baseline=System.UVM_OPT.value
    )
    traffic_text = table.render("traffic_gb")
    save_table(
        f"table3_4_fir_{link_name.lower()}",
        f"Table 3 (FIR normalized runtime, {link_name})\n{runtime_text}\n\n"
        f"Table 4 (FIR PCIe traffic GB, {link_name})\n{traffic_text}",
    )

    opt = System.UVM_OPT.value
    for system in (System.UVM_DISCARD, System.UVM_DISCARD_LAZY):
        name = system.value
        # <100%: discard is free (paper: 1 / 1.01).
        assert table.normalized_runtime(name, "<100%", opt) < 1.05
        # 200%: a substantial win (paper: ~0.51).
        assert table.normalized_runtime(name, "200%", opt) < 0.75
        # The win shrinks as useful-output evictions grow (0.51→0.71).
        assert (
            table.normalized_runtime(name, "200%", opt)
            < table.normalized_runtime(name, "400%", opt)
            < 1.0
        )
        # Traffic: a near-constant saving at every oversubscribed ratio
        # (paper: 5.56 GB at 200/300/400%).
        savings = [
            table.get(opt, c).traffic_gb - table.get(name, c).traffic_gb
            for c in ("200%", "300%", "400%")
        ]
        assert max(savings) - min(savings) < 0.25 * max(savings)
    # Baseline traffic roughly doubles at 200% vs <100% (5.66 → 11.44).
    assert (
        1.7
        < table.get(opt, "200%").traffic_gb / table.get(opt, "<100%").traffic_gb
        < 2.3
    )
    benchmark.extra_info["traffic_gb"] = {
        s.value: [table.get(s.value, ratio_label(r)).traffic_gb for r in RATIOS]
        for s in SYSTEMS
    }
