"""Figure 5: PCIe traffic in deep learning vs batch size, four networks.

Paper shape asserted: traffic explodes once each network's footprint
crosses GPU capacity, and both discard implementations cut the
oversubscribed traffic dramatically (the paper's RMT elimination is
>60 % on every network) while matching UVM-opt exactly when everything
fits.
"""

from __future__ import annotations

from conftest import run_once
from dl_common import BATCH_GRID, dl_sweep, render_sweep

from repro.harness.systems import System
from repro.interconnect import pcie_gen4

SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)


def test_fig5_dl_traffic(benchmark, save_table):
    sweep = run_once(benchmark, lambda: dl_sweep(pcie_gen4, SYSTEMS))

    save_table(
        "fig5_dl_traffic",
        render_sweep(
            "Figure 5: DL PCIe traffic (GB over measured batches)",
            sweep,
            lambda r: r.traffic_gb,
            fmt="{:.2f}",
        ),
    )

    for name, per_system in sweep.items():
        opt = per_system[System.UVM_OPT.value]
        eager = per_system[System.UVM_DISCARD.value]
        lazy = per_system[System.UVM_DISCARD_LAZY.value]
        # Traffic grows with batch size under UVM-opt.
        assert opt[-1].traffic_gb > 5 * max(opt[0].traffic_gb, 0.01)
        # Discard cuts the largest-batch traffic sharply (paper: >60%;
        # our Darknet-19 geometry lands mid-30s% at bench scale).
        assert eager[-1].traffic_gb < 0.65 * opt[-1].traffic_gb, name
        assert lazy[-1].traffic_gb < 0.65 * opt[-1].traffic_gb, name
        # When everything fits, traffic is identical across systems.
        assert abs(eager[0].traffic_gb - opt[0].traffic_gb) < 0.05
    benchmark.extra_info["traffic_gb"] = {
        name: {
            system: [r.traffic_gb for r in rows]
            for system, rows in per_system.items()
        }
        for name, per_system in sweep.items()
    }


def test_fig5_grid_is_complete(benchmark):
    """Every network's grid spans its §7.5 capacity crossover."""
    from conftest import bench_scale
    from dl_common import NETWORK_FACTORIES

    from repro.cuda.device import rtx_3080ti

    def check():
        scale = bench_scale(0.125)
        capacity = rtx_3080ti().scaled(scale).memory_bytes
        for name, batches in BATCH_GRID.items():
            network = NETWORK_FACTORIES[name]().scaled(scale)
            assert network.total_bytes(batches[0]) < capacity, name
            assert network.total_bytes(batches[-1]) > 1.4 * capacity, name
        return True

    assert run_once(benchmark, check)
