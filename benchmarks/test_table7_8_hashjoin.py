"""Tables 7 and 8: Hash-join normalized runtime and PCIe traffic.

Paper shape asserted: the headline win at 200 % (paper: 0.24 normalized,
85.8 % of traffic eliminated), diminishing at 300/400 % as even live
data starts to thrash; small eager overhead at <100 % that lazy only
partially removes (not every discard site is prefetch-paired here).
"""

from __future__ import annotations

import pytest
from conftest import bench_scale, run_once

from repro.cuda.device import rtx_3080ti
from repro.harness.results import ResultTable
from repro.harness.runner import ratio_label
from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload

RATIOS = (0.99, 2.0, 3.0, 4.0)
SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)


def run_hash_join(link_factory):
    scale = bench_scale(0.25)
    workload = HashJoinWorkload(HashJoinConfig().scaled(scale))
    gpu = rtx_3080ti().scaled(scale)
    table = ResultTable("Hash-join", [ratio_label(r) for r in RATIOS])
    for ratio in RATIOS:
        for system in SYSTEMS:
            table.add(workload.run(system, ratio, gpu, link_factory()))
    return table


@pytest.mark.parametrize(
    "link_name,link_factory", [("PCIe-3", pcie_gen3), ("PCIe-4", pcie_gen4)]
)
def test_table7_8_hashjoin(benchmark, save_table, link_name, link_factory):
    table = run_once(benchmark, lambda: run_hash_join(link_factory))

    save_table(
        f"table7_8_hashjoin_{link_name.lower()}",
        f"Table 7 (Hash-join normalized runtime, {link_name})\n"
        + table.render("normalized_runtime", baseline=System.UVM_OPT.value)
        + f"\n\nTable 8 (Hash-join PCIe traffic GB, {link_name})\n"
        + table.render("traffic_gb"),
    )

    opt = System.UVM_OPT.value
    eager = System.UVM_DISCARD.value
    lazy = System.UVM_DISCARD_LAZY.value
    # <100%: small eager overhead, lazy alleviates but not to zero
    # (paper: 1.05/1.09 vs 1.02/1.04).
    assert 1.0 < table.normalized_runtime(eager, "<100%", opt) < 1.2
    assert (
        table.normalized_runtime(lazy, "<100%", opt)
        <= table.normalized_runtime(eager, "<100%", opt)
    )
    # 200%: the big win (paper: ~4x speedup, ~86% traffic eliminated).
    assert table.normalized_runtime(eager, "200%", opt) < 0.45
    traffic_cut = 1 - (
        table.get(eager, "200%").traffic_gb / table.get(opt, "200%").traffic_gb
    )
    assert traffic_cut > 0.6
    # Gains diminish with the ratio (0.24 → 0.51 → 0.86 in the paper).
    assert (
        table.normalized_runtime(eager, "200%", opt)
        < table.normalized_runtime(eager, "300%", opt)
        < table.normalized_runtime(eager, "400%", opt)
        < 1.0
    )
    benchmark.extra_info["traffic_gb"] = {
        s.value: [table.get(s.value, ratio_label(r)).traffic_gb for r in RATIOS]
        for s in SYSTEMS
    }
