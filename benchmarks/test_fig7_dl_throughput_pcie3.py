"""Figure 7: deep-learning training throughput over PCIe-3.

Same sweep as Figure 6 on the halved-bandwidth link.  In addition to
the Figure-6 shape, asserts the cross-figure property: oversubscribed
throughput is lower on PCIe-3 than on PCIe-4 (transfers matter), while
fit-size throughput is essentially link-independent.
"""

from __future__ import annotations

from conftest import run_once
from dl_common import DL_SYSTEMS, dl_sweep, render_sweep
from test_fig6_dl_throughput_pcie4 import check_sweep

from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4


def test_fig7_dl_throughput(benchmark, save_table):
    sweep = run_once(benchmark, lambda: dl_sweep(pcie_gen3, DL_SYSTEMS))
    save_table(
        "fig7_dl_throughput_pcie3",
        render_sweep(
            "Figure 7: DL training throughput (img/s), PCIe-3",
            sweep,
            lambda r: r.metric,
        ),
    )
    check_sweep(sweep)

    # Cross-figure check on one memory-intensive network: PCIe-3 hurts
    # oversubscribed UVM-opt, but not fit-size training.
    gen4 = dl_sweep(pcie_gen4, (System.UVM_OPT,), networks=("VGG-16",))
    gen3 = sweep["VGG-16"][System.UVM_OPT.value]
    gen4_rows = gen4["VGG-16"][System.UVM_OPT.value]
    assert gen3[-1].metric < 0.95 * gen4_rows[-1].metric
    assert abs(gen3[0].metric - gen4_rows[0].metric) < 0.05 * gen4_rows[0].metric
    benchmark.extra_info["images_per_second"] = {
        name: {
            system: [r.metric if r is not None else None for r in rows]
            for system, rows in per_system.items()
        }
        for name, per_system in sweep.items()
    }
