"""Table 2: cost of CUDA API calls in microseconds.

``cudaMalloc`` / ``cudaFree`` come from the calibrated cost model;
``UvmDiscard`` is *measured* end-to-end from the simulated driver — the
stream-executed cost of the eager discard's per-block unmapping plus the
batched TLB invalidation — exactly the work §5.1 attributes to it.
"""

from __future__ import annotations

from conftest import run_once

from repro.cuda.costs import ApiCostModel
from repro.cuda.runtime import CudaRuntime
from repro.units import MB

PAPER = {  # size -> (cudaMalloc, cudaFree, UvmDiscard) in microseconds
    2 * MB: (48, 32, 4),
    8 * MB: (184, 38, 7),
    32 * MB: (726, 63, 20),
    128 * MB: (939, 1184, 70),
}


def measured_discard_cost_us(nbytes: int) -> float:
    """End-to-end UvmDiscard execution time for a GPU-resident buffer."""
    runtime = CudaRuntime()
    probe = {}

    def program(cuda):
        buffer = cuda.malloc_managed(nbytes, "probe")
        cuda.prefetch_async(buffer)  # populate on the GPU
        yield from cuda.synchronize()
        start = cuda.env.now
        cuda.discard_async(buffer, mode="eager")
        yield from cuda.synchronize()
        probe["cost"] = cuda.env.now - start

    runtime.run(program)
    return probe["cost"] * 1e6


def test_table2_api_costs(benchmark, save_table):
    costs = ApiCostModel()

    def build():
        rows = {}
        for size in PAPER:
            rows[size] = (
                costs.malloc_device(size) * 1e6,
                costs.free_device(size) * 1e6,
                measured_discard_cost_us(size),
            )
        return rows

    rows = run_once(benchmark, build)

    lines = ["Table 2: cost of CUDA API calls (us)  [paper values in brackets]"]
    lines.append(f"{'':<12}" + "".join(f"{s // MB:>14}MB" for s in PAPER))
    for row_index, name in enumerate(("cudaMalloc", "cudaFree", "UvmDiscard")):
        cells = []
        for size in PAPER:
            cells.append(f"{rows[size][row_index]:>8.0f} [{PAPER[size][row_index]:>4}]")
        lines.append(f"{name:<12}" + "".join(f"{c:>16}" for c in cells))
    save_table("table2_api_costs", "\n".join(lines))

    for size, (malloc_us, free_us, discard_us) in rows.items():
        paper_malloc, paper_free, paper_discard = PAPER[size]
        # Calibrated rows reproduce the paper within interpolation error.
        assert abs(malloc_us - paper_malloc) / paper_malloc < 0.05
        assert abs(free_us - paper_free) / paper_free < 0.05
        # The discard cost is measured, not fitted: same order, and far
        # cheaper than allocate/free at every size (the paper's point).
        assert discard_us < malloc_us
        assert discard_us < free_us or size == 2 * MB
        assert 0.25 * paper_discard <= discard_us <= 4 * paper_discard
    benchmark.extra_info["rows_us"] = {
        f"{s // MB}MB": rows[s] for s in rows
    }
