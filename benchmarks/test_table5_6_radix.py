"""Tables 5 and 6: Radix-sort normalized runtime and PCIe traffic.

Paper shape asserted: at <100 % the eager `UvmDiscard` pays a visible
unmap/remap penalty that `UvmDiscardLazy` erases; once oversubscribed,
irregular-access thrashing dominates, both discard variants give a
modest, identical win, and the benefit shrinks as the ratio grows.
"""

from __future__ import annotations

import pytest
from conftest import bench_scale, run_once

from repro.cuda.device import rtx_3080ti
from repro.harness.results import ResultTable
from repro.harness.runner import ratio_label
from repro.harness.systems import System
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload

RATIOS = (0.99, 2.0, 3.0, 4.0)
SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)


def run_radix(link_factory):
    scale = bench_scale(0.125)
    workload = RadixSortWorkload(RadixSortConfig().scaled(scale))
    gpu = rtx_3080ti().scaled(scale)
    table = ResultTable("Radix-sort", [ratio_label(r) for r in RATIOS])
    for ratio in RATIOS:
        for system in SYSTEMS:
            table.add(workload.run(system, ratio, gpu, link_factory()))
    return table


@pytest.mark.parametrize(
    "link_name,link_factory", [("PCIe-3", pcie_gen3), ("PCIe-4", pcie_gen4)]
)
def test_table5_6_radix(benchmark, save_table, link_name, link_factory):
    table = run_once(benchmark, lambda: run_radix(link_factory))

    save_table(
        f"table5_6_radix_{link_name.lower()}",
        f"Table 5 (Radix-sort normalized runtime, {link_name})\n"
        + table.render("normalized_runtime", baseline=System.UVM_OPT.value)
        + f"\n\nTable 6 (Radix-sort PCIe traffic GB, {link_name})\n"
        + table.render("traffic_gb"),
    )

    opt = System.UVM_OPT.value
    eager = System.UVM_DISCARD.value
    lazy = System.UVM_DISCARD_LAZY.value
    # <100%: eager pays for its unmapping; lazy does not (1.21 vs 1.00).
    assert table.normalized_runtime(eager, "<100%", opt) > 1.04
    assert table.normalized_runtime(lazy, "<100%", opt) < 1.03
    assert table.normalized_runtime(lazy, "<100%", opt) < table.normalized_runtime(
        eager, "<100%", opt
    )
    # Oversubscribed: both win, identically (no prefetches → all eager).
    for config in ("200%", "300%", "400%"):
        assert table.normalized_runtime(eager, config, opt) < 1.0
        assert (
            abs(
                table.normalized_runtime(eager, config, opt)
                - table.normalized_runtime(lazy, config, opt)
            )
            < 0.02
        )
    # Thrashing dominates: the relative traffic saving shrinks with ratio
    # (paper: 19% at 200% down to 5% at 400%).
    def saving(config):
        base = table.get(opt, config).traffic_gb
        return (base - table.get(eager, config).traffic_gb) / base

    assert saving("200%") > saving("400%") > 0
    # Oversubscription explodes traffic vs <100% (5 GB → 300+ GB).
    assert table.get(opt, "200%").traffic_gb > 10 * table.get(opt, "<100%").traffic_gb
    benchmark.extra_info["traffic_gb"] = {
        s.value: [table.get(s.value, ratio_label(r)).traffic_gb for r in RATIOS]
        for s in SYSTEMS
    }
