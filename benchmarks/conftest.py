"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure from the
paper.  Each test prints its table (visible with ``pytest -s`` /
captured on failure), writes it to ``benchmarks/results/``, stores the
numbers in ``benchmark.extra_info`` and asserts the paper's qualitative
shape.

Benchmarks run at a reduced scale by default (GPU memory and workload
bytes shrunk by the same factor, preserving every ratio).  Set
``REPRO_BENCH_SCALE=1`` for the paper's full sizes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale(default: float) -> float:
    """The scale factor benches run at (env override: REPRO_BENCH_SCALE)."""
    value = os.environ.get("REPRO_BENCH_SCALE")
    if value is None:
        return default
    return float(value)


def bench_jobs(default: int = 1) -> int:
    """Sweep worker processes (env override: REPRO_BENCH_JOBS)."""
    value = os.environ.get("REPRO_BENCH_JOBS")
    if value is None:
        return default
    return max(1, int(value))


def bench_cache():
    """The sweep result cache, when ``REPRO_BENCH_CACHE=1`` opts in.

    Off by default so ``pytest benchmarks/`` always re-simulates; the
    content-hash key makes opting in safe across scale/config changes.
    """
    if os.environ.get("REPRO_BENCH_CACHE", "") not in ("1", "true", "yes"):
        return None
    from repro.harness.sweep import ResultCache, default_cache_dir

    return ResultCache(default_cache_dir())


@pytest.fixture
def save_table():
    """Print a rendered table and persist it under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic, so repeated rounds only measure
    interpreter noise; one round keeps the suite fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
