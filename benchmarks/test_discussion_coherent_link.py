"""Discussion benches for §2.3: coherent links and multi-GPU systems.

Not a paper table — these quantify the two §2.3 claims the evaluation
takes as given:

1. "Cache-coherent remote memory access ... will not eliminate the need
   to optimize application performance through page placement and
   migration": a kernel that re-uses its data loses badly in
   remote-access mode, because remote bandwidth is a fraction of local.
2. "A UVM system that supports cache-coherent remote memory accesses
   still needs a discard directive": with migration used for locality,
   the dead-data eviction RMTs exist regardless of the link and only the
   discard removes them.

Plus the GPU-to-GPU gap: a producer/consumer pipeline across two GPUs
with and without a P2P link, with and without discard of the dead
hand-off buffers.
"""

from __future__ import annotations

from conftest import run_once

from repro import AccessMode, BufferAccess, CudaRuntime, KernelSpec
from repro.cuda.device import GpuSpec
from repro.interconnect import nvlink_gen3
from repro.units import GB, MIB


def small_gpu(name="gpu0", memory_mib=128):
    return GpuSpec(
        name=name,
        memory_bytes=memory_mib * MIB,
        effective_flops=2e12,
        local_bandwidth=900 * GB,
        zero_bandwidth=500 * GB,
        model="bench-gpu",
    )


def reuse_workload(remote: bool, passes: int = 6) -> float:
    """A kernel re-reading a 64 MiB buffer ``passes`` times."""
    runtime = CudaRuntime(gpu=small_gpu(), remote_access=remote)
    buffer = runtime.malloc_managed(64 * MIB, "data")

    def program(cuda):
        yield from cuda.host_write(buffer)
        cuda.begin_measurement()
        for i in range(passes):
            cuda.launch(
                KernelSpec(
                    f"pass_{i}", [BufferAccess(buffer, AccessMode.READ)], flops=1e8
                )
            )
        yield from cuda.synchronize()

    runtime.run(program)
    return runtime.measured_seconds


def test_discussion_remote_vs_migrate(benchmark, save_table):
    def build():
        return reuse_workload(remote=True), reuse_workload(remote=False)

    remote, migrate = run_once(benchmark, build)
    save_table(
        "discussion_remote_vs_migrate",
        "Discussion (§2.3): 6x re-read of 64 MiB\n"
        f"remote-access mode : {remote * 1e3:8.2f} ms\n"
        f"migrate-on-fault   : {migrate * 1e3:8.2f} ms "
        f"({remote / migrate:.1f}x faster with migration)",
    )
    # Re-use makes migration a clear win (the §2.3 argument).
    assert migrate < 0.5 * remote


def pipeline(p2p: bool, discard: bool, stages: int = 6) -> CudaRuntime:
    """Producer on gpu0 hands a buffer chain to a consumer on gpu1."""
    runtime = CudaRuntime(
        gpus=[small_gpu("gpu0"), small_gpu("gpu1")],
        p2p_link=nvlink_gen3() if p2p else None,
    )
    payload = runtime.malloc_managed(32 * MIB, "payload")
    scratch = runtime.malloc_managed(32 * MIB, "scratch")

    def program(cuda):
        cuda.begin_measurement()
        for i in range(stages):
            cuda.launch(
                KernelSpec(
                    f"produce_{i}",
                    [
                        BufferAccess(scratch, AccessMode.WRITE),
                        BufferAccess(payload, AccessMode.WRITE),
                    ],
                    flops=1e8,
                ),
                device="gpu0",
            )
            if discard:
                # The producer's scratch never leaves gpu0 usefully.
                cuda.discard_async(scratch, mode="eager")
            cuda.launch(
                KernelSpec(
                    f"consume_{i}",
                    [BufferAccess(payload, AccessMode.READ)],
                    flops=1e8,
                ),
                device="gpu1",
            )
            if discard:
                cuda.discard_async(payload, mode="eager")
            yield from cuda.synchronize()

    runtime.run(program)
    return runtime


def test_discussion_multi_gpu_pipeline(benchmark, save_table):
    def build():
        return {
            (p2p, discard): pipeline(p2p, discard)
            for p2p in (False, True)
            for discard in (False, True)
        }

    runs = run_once(benchmark, build)
    lines = ["Discussion: 2-GPU producer/consumer pipeline (6 hand-offs)"]
    lines.append(f"{'p2p':>5} {'discard':>8} {'elapsed':>10} {'traffic':>9}")
    for (p2p, discard), runtime in runs.items():
        lines.append(
            f"{str(p2p):>5} {str(discard):>8} "
            f"{runtime.measured_seconds * 1e3:>8.2f}ms "
            f"{runtime.driver.traffic.total_gb:>8.3f}G"
        )
    save_table("discussion_multi_gpu_pipeline", "\n".join(lines))

    # P2P beats host-bounce; discard helps in both link configurations
    # by never shipping the dead scratch data anywhere.
    assert runs[(True, False)].measured_seconds < runs[(False, False)].measured_seconds
    for p2p in (False, True):
        with_discard = runs[(p2p, True)]
        without = runs[(p2p, False)]
        assert with_discard.measured_seconds <= without.measured_seconds
        assert (
            with_discard.driver.traffic.total_bytes
            < without.driver.traffic.total_bytes
        )
    # The payload still crosses GPUs every stage even with discard.
    assert runs[(True, True)].driver.traffic.total_bytes > 0
