"""Figure 3: PCIe traffic of ResNet-53 vs training batch size.

Trains ResNet-53 under plain UVM across batch sizes spanning the GPU
capacity crossover and splits the measured traffic with the RMT
classifier into *required* (read before being overwritten) and
*redundant*.

Paper shape asserted: negligible traffic while the model fits; past the
crossover traffic grows steeply with batch size, and "the actual
required ... amount of memory transfer is less than half of the amount
of memory transfer ordinarily performed by UVM".
"""

from __future__ import annotations

from conftest import bench_scale, run_once

from repro.cuda.device import rtx_3080ti
from repro.harness.systems import System
from repro.interconnect import pcie_gen4
from repro.workloads.dl import DarknetTrainer, TrainerConfig, resnet53

BATCH_SIZES = (28, 56, 84, 112, 150)


def run_sweep():
    scale = bench_scale(0.125)
    network = resnet53().scaled(scale)
    gpu = rtx_3080ti().scaled(scale)
    rows = []
    for batch_size in BATCH_SIZES:
        trainer = DarknetTrainer(
            network, TrainerConfig(batch_size=batch_size), System.UVM_OPT
        )
        result = trainer.run(gpu, pcie_gen4())
        rows.append(
            {
                "batch": batch_size,
                "footprint_gb": network.total_bytes(batch_size) / 1e9,
                "total_gb": result.traffic_gb,
                "required_gb": result.useful_gb,
                "redundant_gb": result.redundant_gb,
            }
        )
    return rows


def test_fig3_resnet_traffic(benchmark, save_table):
    rows = run_once(benchmark, run_sweep)

    lines = ["Figure 3: ResNet-53 PCIe traffic vs batch size (UVM-opt)"]
    lines.append(
        f"{'batch':>6}{'footprint':>11}{'total':>9}{'required':>10}{'redundant':>11}"
    )
    for row in rows:
        lines.append(
            f"{row['batch']:>6}{row['footprint_gb']:>10.2f}G"
            f"{row['total_gb']:>8.2f}G{row['required_gb']:>9.2f}G"
            f"{row['redundant_gb']:>10.2f}G"
        )
    save_table("fig3_resnet_traffic", "\n".join(lines))

    # Traffic is near zero while the model fits and grows with batch size.
    assert rows[0]["total_gb"] < 0.1 * rows[-1]["total_gb"]
    totals = [r["total_gb"] for r in rows]
    assert all(a <= b + 0.05 for a, b in zip(totals, totals[1:]))
    # At the largest size, required < half of what UVM actually moves.
    largest = rows[-1]
    assert largest["required_gb"] < 0.55 * largest["total_gb"]
    assert largest["redundant_gb"] > 0.45 * largest["total_gb"]
    benchmark.extra_info["rows"] = rows
