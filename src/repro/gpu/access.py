"""Kernel access patterns.

A pattern orders a buffer's va_blocks into *waves* — the granularity at
which the executor interleaves fault handling with compute.  Patterns are
what distinguish a streaming kernel (sequential, prefetch-friendly) from
the irregular access of Radix-sort's partitioning, where "the GPU does not
follow a deterministic pattern to access parallel columns of data" (§7.3)
and oversubscribed kernels thrash.

All patterns are deterministic: irregular orders come from a seeded
pseudo-random shuffle so simulations replay identically.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from repro.driver.va_block import VaBlock
from repro.errors import ConfigurationError


class AccessPattern(abc.ABC):
    """Strategy producing a per-wave ordering of a kernel operand's blocks."""

    @abc.abstractmethod
    def waves(self, blocks: Sequence[VaBlock], num_waves: int) -> List[List[VaBlock]]:
        """Split ``blocks`` into ``num_waves`` ordered touch lists.

        Every block must appear in at least one wave; patterns modelling
        data re-use may include a block in several waves.
        """


def _chunk(blocks: Sequence[VaBlock], num_waves: int) -> List[List[VaBlock]]:
    """Split into ``num_waves`` contiguous, near-equal chunks."""
    if num_waves < 1:
        raise ConfigurationError(f"num_waves must be >= 1, got {num_waves}")
    n = len(blocks)
    if n == 0:
        return [[] for _ in range(num_waves)]
    out: List[List[VaBlock]] = []
    base, extra = divmod(n, num_waves)
    start = 0
    for i in range(num_waves):
        size = base + (1 if i < extra else 0)
        out.append(list(blocks[start : start + size]))
        start += size
    return out


class SequentialPattern(AccessPattern):
    """Streaming access: the buffer is swept once, front to back.

    Matches FIR's sliding window and the dense layer sweeps of the deep
    learning kernels — the pattern prefetching works best for.
    """

    def waves(self, blocks: Sequence[VaBlock], num_waves: int) -> List[List[VaBlock]]:
        return _chunk(blocks, num_waves)


class StridedPattern(AccessPattern):
    """Strided sweep: wave *i* touches blocks ``i, i+W, i+2W, ...``.

    Models column-major access over a row-major layout; each wave spans
    the whole buffer, so an oversubscribed working set thrashes even
    though every block is touched exactly once.
    """

    def waves(self, blocks: Sequence[VaBlock], num_waves: int) -> List[List[VaBlock]]:
        if num_waves < 1:
            raise ConfigurationError(f"num_waves must be >= 1, got {num_waves}")
        return [list(blocks[i::num_waves]) for i in range(num_waves)]


class IrregularPattern(AccessPattern):
    """Data-dependent scatter/gather with re-use (§7.3 Radix-sort).

    Each of ``passes`` full sweeps touches every block once, in a
    deterministic pseudo-random order that differs per pass.  When the
    footprint exceeds device memory, consecutive passes re-fault blocks
    evicted by the previous one — the GPU thrashing that dominates
    Radix-sort at oversubscription and that the paper notes discard cannot
    fix (§7.3).
    """

    def __init__(self, passes: int = 1, seed: int = 0x5EED) -> None:
        if passes < 1:
            raise ConfigurationError(f"passes must be >= 1, got {passes}")
        self.passes = passes
        self.seed = seed

    def waves(self, blocks: Sequence[VaBlock], num_waves: int) -> List[List[VaBlock]]:
        if num_waves < 1:
            raise ConfigurationError(f"num_waves must be >= 1, got {num_waves}")
        rng = random.Random(self.seed)
        sequence: List[VaBlock] = []
        for _ in range(self.passes):
            order = list(blocks)
            rng.shuffle(order)
            sequence.extend(order)
        return _chunk(sequence, num_waves)
