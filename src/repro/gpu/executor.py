"""Kernel executor: runs :class:`~repro.cuda.kernel.KernelSpec` on a GPU.

One kernel occupies the GPU's SM engine for its whole duration (the
simulator models a single compute queue, as the paper's single-stream
workloads do).  The kernel's footprint is processed in *waves*: each wave
first drains a batch of page faults for blocks the GPU cannot currently
access — non-resident blocks and blocks whose mappings `UvmDiscard`
eagerly destroyed (§5.1) — then records the program accesses for RMT
classification, then burns that wave's share of compute time.

GPU page faults "significantly hinder the thread-parallelism of GPU
kernels" (§2.1): fault stalls serialize with compute here, which is why
prefetching (overlapping transfers on the copy engine with compute on the
SM engine) wins.
"""

from __future__ import annotations

from typing import Generator, List, Tuple, TYPE_CHECKING

from repro.access import AccessMode
from repro.driver.driver import UvmDriver
from repro.driver.va_block import VaBlock
from repro.engine.core import Environment
from repro.engine.resources import Resource
from repro.instrument.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - circular-import guard, typing only
    from repro.cuda.device import GpuSpec
    from repro.cuda.kernel import KernelSpec


class GpuExecutor:
    """Executes kernels on one GPU against the UVM driver.

    ``remote_access=True`` models the cache-coherent interconnect mode of
    §2.3 (NVLink-attached GPUs as NUMA nodes): instead of faulting and
    migrating, the kernel's accesses to non-resident blocks are served as
    remote loads/stores over the link, with no residency change.  The
    paper's point — reproduced by the discussion benchmark — is that this
    does not remove the need for placement, migration or the discard
    directive: remote bandwidth is an order of magnitude below local.
    """

    def __init__(
        self,
        env: Environment,
        driver: UvmDriver,
        gpu: "GpuSpec",
        remote_access: bool = False,
    ) -> None:
        self.env = env
        self.driver = driver
        self.gpu = gpu
        self.remote_access = remote_access
        #: One kernel at a time: the device's compute queue.
        self.sm_engine = Resource(env, capacity=1, name="sm")
        self.kernels_launched = 0
        self.fault_stall_seconds = 0.0
        self.remote_bytes = 0
        #: Simulated-time tracer; no-op singleton unless one is installed.
        self.tracer = NULL_TRACER

    def _build_waves(
        self, kernel: "KernelSpec"
    ) -> List[List[Tuple[VaBlock, AccessMode]]]:
        """Interleave every operand's access pattern into per-wave touch lists."""
        waves: List[List[Tuple[VaBlock, AccessMode]]] = [
            [] for _ in range(kernel.waves)
        ]
        for buffer_access in kernel.accesses:
            per_access = buffer_access.pattern.waves(
                buffer_access.blocks(), kernel.waves
            )
            for i, wave_blocks in enumerate(per_access):
                waves[i].extend((b, buffer_access.mode) for b in wave_blocks)
        return waves

    def run_kernel(self, kernel: "KernelSpec") -> Generator:
        """Simulation process executing one kernel launch."""
        request = self.sm_engine.request()
        yield request
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        restarts = 0
        try:
            self.kernels_launched += 1
            # Phase tag for byte attribution: every transfer recorded from
            # here until the next kernel starts executing served this
            # kernel.  A plain attribute store — free on the hot path.
            self.driver.traffic.phase = kernel.name
            waves = self._build_waves(kernel)
            compute_total = kernel.compute_seconds(self.gpu.effective_flops)
            compute_per_wave = compute_total / len(waves)
            # A fault is simply a missing GPU mapping (gpu_needs_fault);
            # bind the page-table probe once for the whole launch.
            is_mapped = self.driver.gpu_page_table(self.gpu.name).is_mapped
            note_access = self.driver.note_access
            chaos = self.driver.chaos
            restart = True
            while restart:
                restart = False
                for wave_index, wave in enumerate(waves):
                    # One fault batch per wave: the GPU's fault buffer fills
                    # with every miss the wave's warps produce, and the driver
                    # services them together.
                    missing: List[VaBlock] = []
                    seen = set()
                    for block, _mode in wave:
                        index = block.index
                        if index in seen:
                            continue
                        seen.add(index)
                        if not is_mapped(index):
                            missing.append(block)
                    if missing and self.remote_access:
                        yield from self._access_remotely(missing)
                    elif missing:
                        stall_start = self.env.now
                        yield from self.driver.handle_gpu_faults(
                            self.gpu.name, missing
                        )
                        self.fault_stall_seconds += self.env.now - stall_start
                    for block, mode in wave:
                        note_access(block, mode)
                    if compute_per_wave > 0:
                        yield self.env.timeout(compute_per_wave)
                    # Injected abort-and-retry: a transient execution fault
                    # (e.g. an uncorrectable ECC hit mid-kernel) kills the
                    # launch at a wave boundary; the runtime re-executes it
                    # from wave 0.  Re-servicing faults and re-noting
                    # accesses is idempotent for residency and the oracle,
                    # and ``kernel.fn`` runs only once, after the final
                    # successful pass — so functional results are
                    # unaffected.
                    if chaos is not None and chaos.kernel_abort(
                        self, kernel, wave_index
                    ):
                        restart = True
                        restarts += 1
                        break
            if kernel.fn is not None:
                kernel.fn()
            if tracer.enabled:
                now = self.env.now
                tracer.span(
                    f"{self.gpu.name}/compute",
                    kernel.name,
                    started,
                    now,
                    category="kernel",
                    args={"waves": len(waves), "restarts": restarts},
                )
                tracer.observe("kernel_seconds", now - started)
        finally:
            self.sm_engine.release(request)

    def _access_remotely(self, blocks: List[VaBlock]) -> "Generator":
        """Serve non-resident blocks as coherent remote accesses (§2.3).

        Data stays where it is (never-touched blocks are populated as
        zero-filled host pages first); the kernel pays the link's
        small-granule bandwidth for every touched byte, stalling the SMs
        just as long remote load latencies do on real NVLink systems.
        """
        from repro.instrument.traffic import TransferDirection, TransferReason

        untouched = [b for b in blocks if b.residency is None or b.discarded]
        if untouched:
            yield from self.driver.make_resident_cpu(
                untouched, TransferReason.REMOTE_ACCESS, charge_faults=False
            )
        nbytes = sum(b.used_bytes for b in blocks)
        self.remote_bytes += nbytes
        # Coherent loads move cacheline-granule packets: the link never
        # reaches its large-transfer bandwidth (the §2.3 gap).
        seconds = nbytes / self.driver.link.effective_bandwidth(64 * 1024)
        yield self.env.timeout(seconds)
        self.driver.traffic.record(
            self.env.now,
            TransferDirection.HOST_TO_DEVICE,
            nbytes,
            TransferReason.REMOTE_ACCESS,
            blocks=blocks,
        )
