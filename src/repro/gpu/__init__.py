"""GPU execution model.

:mod:`repro.gpu.access` defines how kernels walk their buffers (the
access patterns that determine fault order and thrashing behaviour);
:mod:`repro.gpu.executor` runs kernel specifications against the UVM
driver — batching faults, stalling on migrations and consuming compute
time on the device's SM engine.
"""

from repro.gpu.access import (
    AccessPattern,
    IrregularPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.gpu.executor import GpuExecutor

__all__ = [
    "AccessPattern",
    "SequentialPattern",
    "StridedPattern",
    "IrregularPattern",
    "GpuExecutor",
]
