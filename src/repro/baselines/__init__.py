"""Baselines the paper compares against.

- :mod:`~repro.baselines.caching_allocator` — a PyTorch-style caching
  device allocator, built to "avoid costly allocation and deallocation
  API calls" (§6, costs in Table 2).
- :mod:`~repro.baselines.lms` — the PyTorch Large-Model-Support
  baseline of Table 1: manual swapping of activations plus the caching
  allocator (the approach costing 1,806 + 2,509 lines of code in real
  PyTorch, per §6).
- :mod:`~repro.baselines.manual_swap` — Listing 5: per-use explicit
  allocate/transfer/free without caching, paying Table-2 API costs on
  every layer.

The No-UVM baseline (Listing 4) lives in the trainer itself
(:class:`~repro.workloads.dl.trainer.DarknetTrainer` with
``System.NO_UVM``).
"""

from repro.baselines.caching_allocator import CachingAllocator
from repro.baselines.lms import LmsTrainer
from repro.baselines.manual_swap import ManualSwapTrainer

__all__ = ["CachingAllocator", "LmsTrainer", "ManualSwapTrainer"]
