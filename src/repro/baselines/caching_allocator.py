"""PyTorch-style caching device allocator.

`cudaMalloc`/`cudaFree` are expensive (Table 2: up to ~1 ms each at
128 MB), so frameworks cache freed device buffers by size class and reuse
them.  §6: "PyTorch augments that approach with a manual caching
mechanism to avoid costly allocation and deallocation API calls" —
costing 1,806 lines of real code; this is the simulated equivalent.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.cuda.memory import DeviceBuffer
from repro.cuda.runtime import CudaRuntime
from repro.errors import OutOfMemoryError, SimulationError
from repro.units import BIG_PAGE, align_up


class CachingAllocator:
    """Caches device buffers by 2 MiB-rounded size class."""

    def __init__(self, cuda: CudaRuntime) -> None:
        self.cuda = cuda
        self._free_lists: Dict[int, List[DeviceBuffer]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def size_class(nbytes: int) -> int:
        """Allocation granularity: whole 2 MiB chunks, like the device."""
        return align_up(max(1, nbytes), BIG_PAGE)

    def alloc(self, nbytes: int, name: Optional[str] = None) -> Generator:
        """Obtain a device buffer; reuses a cached one when possible.

        A cache hit costs nothing; a miss pays the full `cudaMalloc`
        price.  When the device is full, the allocator behaves like
        PyTorch's: it releases its whole cache and retries once before
        letting :class:`~repro.errors.OutOfMemoryError` propagate.
        Returns the buffer via the process return value.
        """
        cls = self.size_class(nbytes)
        free_list = self._free_lists.get(cls)
        if free_list:
            self.hits += 1
            return free_list.pop()
        self.misses += 1
        try:
            buffer = yield from self.cuda.malloc_device(cls, name)
        except OutOfMemoryError:
            yield from self.release_all()
            buffer = yield from self.cuda.malloc_device(cls, name)
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Return a buffer to the cache (no `cudaFree` cost)."""
        if buffer.freed:
            raise SimulationError(f"caching-free of freed buffer {buffer.name!r}")
        self._free_lists.setdefault(buffer.nbytes, []).append(buffer)

    @property
    def cached_bytes(self) -> int:
        return sum(
            buf.nbytes for bufs in self._free_lists.values() for buf in bufs
        )

    def release_all(self) -> Generator:
        """`cudaFree` everything cached (end-of-run cleanup)."""
        for free_list in self._free_lists.values():
            while free_list:
                yield from self.cuda.free_device(free_list.pop())
