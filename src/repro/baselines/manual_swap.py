"""Listing 5: manual oversubscription without a caching allocator.

The "more realistic application that supports datasets larger than the
GPU memory capacity": every layer allocates its device buffers with
`cudaMalloc`, transfers what it needs, computes, transfers results back
and frees everything — paying Table 2's API costs on every single layer
of every batch.  This is the baseline that motivates both PyTorch's
caching allocator and, ultimately, the UVM + discard approach; the
Table 2 benchmark quantifies its per-call costs and the ablation bench
compares it against :class:`~repro.baselines.lms.LmsTrainer` to show
what caching buys.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.cuda.device import GpuSpec
from repro.cuda.runtime import CudaRuntime
from repro.harness.results import ExperimentResult
from repro.harness.runner import run_uvm_experiment
from repro.instrument.traffic import TransferDirection, TransferReason
from repro.interconnect.link import Link
from repro.workloads.dl.networks import NetworkSpec
from repro.workloads.dl.trainer import TrainerConfig

#: Row label for ablation tables.
SYSTEM_NAME = "Manual-swap"


class ManualSwapTrainer:
    """Trains one network with Listing 5's allocate/copy/free pattern."""

    def __init__(self, network: NetworkSpec, config: TrainerConfig) -> None:
        self.network = network
        self.config = config

    def images_per_second(self, runtime: CudaRuntime) -> float:
        measured = runtime.measured_seconds
        if measured <= 0:
            return 0.0
        return self.config.batch_size * self.config.measured_batches / measured

    def program(self) -> Callable[[CudaRuntime], Generator]:
        net = self.network
        cfg = self.config

        def body(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            out_bytes = [net.output_bytes(l, bs) for l in net.layers]
            w_bytes = [max(4, l.weight_bytes) for l in net.layers]
            input_total = (
                net.input_bytes_per_sample + net.label_bytes_per_sample
            ) * bs
            grad_bytes = net.gradients_bytes(bs)
            n = len(net.layers)

            def h2d(nbytes: int) -> None:
                cuda.memcpy_async(
                    nbytes, TransferDirection.HOST_TO_DEVICE,
                    reason=TransferReason.SWAP,
                )

            def d2h(nbytes: int) -> None:
                cuda.memcpy_async(
                    nbytes, TransferDirection.DEVICE_TO_HOST,
                    reason=TransferReason.SWAP,
                )

            for batch in range(cfg.batches):
                if batch == cfg.warmup_batches:
                    yield from cuda.synchronize()
                    cuda.begin_measurement()
                d_data = yield from cuda.malloc_device(input_total, "d_data")
                h2d(input_total)
                previous = None
                for i, layer in enumerate(net.layers):
                    d_out = yield from cuda.malloc_device(out_bytes[i], f"d_o{i}")
                    d_w = yield from cuda.malloc_device(w_bytes[i], f"d_w{i}")
                    h2d(w_bytes[i])  # weights live on the host between uses
                    cuda.launch_raw(
                        f"ms_fwd_{i}",
                        layer.fwd_flops_per_sample
                        * bs
                        * net.flops_multiplier
                        / cuda.gpu.effective_flops,
                    )
                    yield from cuda.synchronize()
                    d2h(out_bytes[i])  # save the activation for backward
                    # "No need to swap out d_weighti which was not changed"
                    yield from cuda.free_device(d_w)
                    if previous is not None:
                        yield from cuda.free_device(previous)
                    previous = d_out
                if previous is not None:
                    yield from cuda.free_device(previous)
                for i in range(n - 1, -1, -1):
                    layer = net.layers[i]
                    d_out = yield from cuda.malloc_device(out_bytes[i], f"b_o{i}")
                    d_prev = (
                        (yield from cuda.malloc_device(out_bytes[i - 1], f"b_p{i}"))
                        if i > 0
                        else None
                    )
                    d_w = yield from cuda.malloc_device(w_bytes[i], f"b_w{i}")
                    d_g = yield from cuda.malloc_device(grad_bytes, f"b_g{i}")
                    h2d(out_bytes[i])
                    if i > 0:
                        h2d(out_bytes[i - 1])
                    h2d(w_bytes[i])
                    # "No need to swap in d_gradi which will be overwritten"
                    cuda.launch_raw(
                        f"ms_bwd_{i}",
                        layer.bwd_flops_per_sample
                        * bs
                        * net.flops_multiplier
                        / cuda.gpu.effective_flops,
                    )
                    cuda.launch_raw(
                        f"ms_update_{i}",
                        2.0 * layer.weight_bytes / cuda.gpu.effective_flops,
                    )
                    yield from cuda.synchronize()
                    d2h(w_bytes[i])  # updated weights back to the host
                    yield from cuda.free_device(d_g)
                    yield from cuda.free_device(d_w)
                    if d_prev is not None:
                        yield from cuda.free_device(d_prev)
                    yield from cuda.free_device(d_out)
                yield from cuda.free_device(d_data)
            yield from cuda.synchronize()

        return body

    @property
    def app_bytes(self) -> int:
        return self.network.total_bytes(self.config.batch_size)

    def run(
        self,
        gpu: GpuSpec,
        link: Link,
        config_label: Optional[str] = None,
    ) -> ExperimentResult:
        label = config_label or f"bs={self.config.batch_size}"
        return run_uvm_experiment(
            self.program(),
            SYSTEM_NAME,
            label,
            self.app_bytes,
            ratio=1.0,
            gpu=gpu,
            link=link,
            metric=self.images_per_second,
        )
