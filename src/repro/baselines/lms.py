"""PyTorch Large-Model-Support baseline (Table 1).

Models IBM's PyTorch-LMS [11]: train with explicit device buffers,
keeping only a sliding window of activations on the GPU — each layer's
stored output is swapped out to host memory after the next layer consumed
it, and swapped back in for its backward pass.  A caching allocator
avoids per-layer `cudaMalloc`/`cudaFree` costs (§6).

Because the swap schedule is static, LMS moves *every* activation out and
back every batch regardless of whether memory is actually short — which
is why Table 1 shows ~112-150 GB of PCIe traffic at every batch size,
versus UVM's 2 GB when the model fits.  Its virtue is bounded residency:
it never crashes, at any batch size.

Exploiting application knowledge, the manual schedule already avoids some
RMTs (Listing 5's comments: no swap-in of buffers about to be
overwritten, no swap-out of unchanged weights), so its transfers are
"useful" — just vastly more of them than fault-driven UVM needs.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.baselines.caching_allocator import CachingAllocator
from repro.cuda.device import GpuSpec
from repro.cuda.memory import DeviceBuffer
from repro.cuda.runtime import CudaRuntime
from repro.harness.results import ExperimentResult
from repro.harness.runner import run_uvm_experiment
from repro.instrument.traffic import TransferDirection, TransferReason
from repro.interconnect.link import Link
from repro.workloads.dl.networks import NetworkSpec
from repro.workloads.dl.trainer import TrainerConfig

#: Row label used in Table 1.
SYSTEM_NAME = "PyTorch-LMS"


class LmsTrainer:
    """Trains one network with manual LMS-style swapping."""

    def __init__(self, network: NetworkSpec, config: TrainerConfig) -> None:
        self.network = network
        self.config = config

    def images_per_second(self, runtime: CudaRuntime) -> float:
        measured = runtime.measured_seconds
        if measured <= 0:
            return 0.0
        return self.config.batch_size * self.config.measured_batches / measured

    def program(self) -> Callable[[CudaRuntime], Generator]:
        net = self.network
        cfg = self.config

        def body(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            allocator = CachingAllocator(cuda)
            fwd_of = [l.fwd_flops_per_sample * bs * net.flops_multiplier
                      for l in net.layers]
            bwd_of = [l.bwd_flops_per_sample * bs * net.flops_multiplier
                      for l in net.layers]
            out_bytes = [net.output_bytes(l, bs) for l in net.layers]
            weight_total = sum(max(4, l.weight_bytes) for l in net.layers)
            input_total = (
                net.input_bytes_per_sample + net.label_bytes_per_sample
            ) * bs
            grad_bytes = net.gradients_bytes(bs)

            # Persistent device state: weights and the gradients buffer.
            weights = yield from cuda.malloc_device(weight_total, "d_weights")
            grads = yield from allocator.alloc(grad_bytes, "d_gradients")
            cuda.memcpy_async(
                weight_total, TransferDirection.HOST_TO_DEVICE,
                reason=TransferReason.SWAP,
            )
            yield from cuda.synchronize()

            resident: Dict[int, DeviceBuffer] = {}

            def swap_out(index: int) -> Generator:
                """d2h the stored output and recycle its device buffer."""
                buffer = resident.pop(index)
                cuda.memcpy_async(
                    out_bytes[index],
                    TransferDirection.DEVICE_TO_HOST,
                    reason=TransferReason.SWAP,
                )
                yield from cuda.synchronize()
                allocator.free(buffer)

            def ensure_resident(index: int, swap_in: bool) -> Generator:
                """Allocate (and optionally h2d) a stored output."""
                if index in resident:
                    return
                buffer = yield from allocator.alloc(
                    out_bytes[index], f"d_out_{index}"
                )
                resident[index] = buffer
                if swap_in:
                    # Listing 5: "No need to swap in d_outputi which will
                    # be overwritten" — swap_in=False on the write path.
                    cuda.memcpy_async(
                        out_bytes[index],
                        TransferDirection.HOST_TO_DEVICE,
                        reason=TransferReason.SWAP,
                    )
                    yield from cuda.synchronize()

            n = len(net.layers)
            for batch in range(cfg.batches):
                if batch == cfg.warmup_batches:
                    yield from cuda.synchronize()
                    cuda.begin_measurement()
                cuda.memcpy_async(
                    input_total, TransferDirection.HOST_TO_DEVICE,
                    reason=TransferReason.SWAP,
                )
                # ---- forward: keep a two-layer window resident --------
                for i in range(n):
                    yield from ensure_resident(i, swap_in=False)
                    cuda.launch_raw(
                        f"lms_fwd_{i}", fwd_of[i] / cuda.gpu.effective_flops
                    )
                    yield from cuda.synchronize()
                    if i >= 1:
                        # output i-1 was just consumed by fwd_i; it will
                        # be needed again in backward, so swap it out.
                        yield from swap_out(i - 1)
                # ---- backward: swap each window back in ----------------
                for i in range(n - 1, -1, -1):
                    yield from ensure_resident(i, swap_in=True)
                    if i > 0:
                        yield from ensure_resident(i - 1, swap_in=True)
                    cuda.launch_raw(
                        f"lms_bwd_{i}", bwd_of[i] / cuda.gpu.effective_flops
                    )
                    cuda.launch_raw(
                        f"lms_update_{i}",
                        2.0 * net.layers[i].weight_bytes
                        / cuda.gpu.effective_flops,
                    )
                    yield from cuda.synchronize()
                    # output i is dead after its backward; free without a
                    # transfer (the manual schedule knows it is dead).
                    allocator.free(resident.pop(i))
            # Trained weights back to the host.
            cuda.memcpy_async(
                weight_total, TransferDirection.DEVICE_TO_HOST,
                reason=TransferReason.SWAP,
            )
            yield from cuda.synchronize()
            allocator.free(grads)
            for index in list(resident):
                allocator.free(resident.pop(index))
            yield from allocator.release_all()
            yield from cuda.free_device(weights)

        return body

    @property
    def app_bytes(self) -> int:
        return self.network.total_bytes(self.config.batch_size)

    def run(
        self,
        gpu: GpuSpec,
        link: Link,
        config_label: Optional[str] = None,
    ) -> ExperimentResult:
        label = config_label or f"bs={self.config.batch_size}"
        return run_uvm_experiment(
            self.program(),
            SYSTEM_NAME,
            label,
            self.app_bytes,
            ratio=1.0,
            gpu=gpu,
            link=link,
            metric=self.images_per_second,
        )
