"""Byte attribution: who moved every byte, and was the move wasted.

Built entirely from post-run driver state — the retained
:class:`~repro.instrument.traffic.TransferRecord` list (each record
tagged at record time with its per-buffer ``segments`` and the workload
``phase`` that was active) and the per-record fate tallies of the
:class:`~repro.instrument.rmt.RmtClassifier`.  Requires the runtime to
have been built with ``UvmDriverConfig(keep_transfer_records=True)``;
on the benchmark hot path no records exist and every function here
degrades to an empty report.

The conservation contract (every attributed view re-sums to the
recorder's running totals) is enforced by
:func:`repro.harness.validation.collect_conservation_problems`, which
the online validator and the chaos oracle run mid-flight.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.instrument.rmt import (
    FATE_DISCARDED,
    FATE_OVERWRITTEN,
    FATE_UNUSED,
    FATE_USEFUL,
)
from repro.instrument.traffic import TransferDirection, TransferReason

__all__ = [
    "RAW_BUCKET",
    "per_buffer_transfer_totals",
    "attribution_report",
    "attribution_summary",
]

#: Bucket name for transfers that move no va_blocks (``raw_transfer``).
RAW_BUCKET = "(raw)"

_FATES = (FATE_USEFUL, FATE_OVERWRITTEN, FATE_DISCARDED, FATE_UNUSED)
_REDUNDANT_FATES = (FATE_OVERWRITTEN, FATE_DISCARDED, FATE_UNUSED)

_DIRECTION_KEYS = {
    TransferDirection.HOST_TO_DEVICE: "h2d",
    TransferDirection.DEVICE_TO_HOST: "d2h",
    TransferDirection.DEVICE_TO_DEVICE: "d2d",
}


def _record_buckets(record) -> List:
    """``(name, nbytes)`` attribution of one record.

    Records tagged at record time carry exact per-buffer ``segments``;
    blockless transfers (``raw_transfer``) land in :data:`RAW_BUCKET`.
    """
    if record.segments:
        return list(record.segments)
    return [(RAW_BUCKET, record.nbytes)]


def per_buffer_transfer_totals(runtime) -> Dict[str, Dict[str, int]]:
    """Per-buffer H2D/D2H/D2D byte totals from retained transfer records.

    Requires the runtime to have been built with
    ``UvmDriverConfig(keep_transfer_records=True)``.  Each record's
    bytes are split across the buffers it actually moved (its
    record-time ``segments``), so a coalesced span crossing a buffer
    boundary is charged to both owners; raw (blockless) transfers land
    in the ``"(raw)"`` bucket.  The buckets always re-sum to the
    driver's running totals (a chaos-oracle invariant).
    """
    totals: Dict[str, Dict[str, int]] = {}
    for record in runtime.driver.traffic.records:
        key = _DIRECTION_KEYS[record.direction]
        for name, nbytes in _record_buckets(record):
            bucket = totals.setdefault(name, {"h2d": 0, "d2h": 0, "d2d": 0})
            bucket[key] += nbytes
    return totals


def _fate_split(tally: Dict[str, int]) -> Dict[str, int]:
    out = {fate: tally.get(fate, 0) for fate in _FATES}
    out["redundant"] = sum(out[f] for f in _REDUNDANT_FATES)
    return out


def attribution_report(runtime) -> Dict[str, Any]:
    """Full byte-attribution and waste-analysis report for one run.

    Returns a plain-JSON dict::

        {
          "complete": bool,       # a record exists for every transfer
          "totals": {...},        # recorder running totals
          "by_buffer": {name: {h2d, d2h, d2d, useful, overwritten,
                               discarded, unused, redundant}},
          "by_phase":  {phase: {h2d, d2h, d2d, useful, redundant}},
          "by_reason": {reason: {h2d, d2h, d2d, useful, redundant}},
          "waste": {...},         # aggregate fates + derived causes
        }

    Fate classification follows the RMT rules (§3): a transferred
    byte is *useful* once read at its destination, *overwritten* /
    *discarded* / *unused* otherwise.  Two derived causes decompose
    the waste further:

    - ``dead_writeback_bytes`` — eviction-reason bytes whose moved
      data was never read again: writebacks of dead data.
    - ``thrash_refetch_bytes`` — fault/prefetch H2D bytes re-fetching
      buffer bytes previously evicted, the re-fetch half of a thrash
      cycle (byte-granular per buffer, so a lower bound on true
      block-level thrash).
    """
    traffic = runtime.driver.traffic
    rmt = runtime.driver.rmt
    records = traffic.records
    complete = bool(records) and len(records) == traffic.transfer_count

    by_buffer: Dict[str, Dict[str, int]] = {}
    by_phase: Dict[str, Dict[str, int]] = {}
    by_reason: Dict[str, Dict[str, int]] = {}
    dead_writeback = 0
    thrash_refetch = 0
    evicted_outstanding: Dict[str, int] = {}
    refetch_reasons = (TransferReason.FAULT_MIGRATION, TransferReason.PREFETCH)

    for record in records:
        key = _DIRECTION_KEYS[record.direction]
        fates = rmt.fates_for(record)
        useful = fates.get(FATE_USEFUL, 0)
        redundant = sum(fates.get(f, 0) for f in _REDUNDANT_FATES)
        for group, label in (
            (by_phase, record.phase),
            (by_reason, record.reason.value),
        ):
            bucket = group.setdefault(
                label,
                {"h2d": 0, "d2h": 0, "d2d": 0, "useful": 0, "redundant": 0},
            )
            bucket[key] += record.nbytes
            bucket["useful"] += useful
            bucket["redundant"] += redundant
        for name, nbytes in _record_buckets(record):
            bucket = by_buffer.setdefault(name, {"h2d": 0, "d2h": 0, "d2d": 0})
            bucket[key] += nbytes
            if record.reason is TransferReason.EVICTION and key == "d2h":
                evicted_outstanding[name] = (
                    evicted_outstanding.get(name, 0) + nbytes
                )
            elif key == "h2d" and record.reason in refetch_reasons:
                outstanding = evicted_outstanding.get(name, 0)
                if outstanding:
                    hit = min(outstanding, nbytes)
                    thrash_refetch += hit
                    evicted_outstanding[name] = outstanding - hit
        if record.reason is TransferReason.EVICTION:
            dead_writeback += redundant

    for name, tally in rmt.buffer_fates.items():
        bucket = by_buffer.setdefault(name, {"h2d": 0, "d2h": 0, "d2d": 0})
        bucket.update(_fate_split(tally))
    for bucket in by_buffer.values():
        if "useful" not in bucket:
            bucket.update(_fate_split({}))

    fate_totals = {fate: 0 for fate in _FATES}
    for tally in rmt.record_fates.values():
        for fate, nbytes in tally.items():
            fate_totals[fate] += nbytes
    classified = sum(fate_totals.values())
    return {
        "complete": complete,
        "totals": {
            "bytes_h2d": traffic.bytes_h2d,
            "bytes_d2h": traffic.bytes_d2h,
            "bytes_d2d": traffic.bytes_d2d,
            "transfer_count": traffic.transfer_count,
            "block_bytes": traffic.block_bytes,
            "raw_bytes": traffic.total_bytes - traffic.block_bytes,
        },
        "by_buffer": by_buffer,
        "by_phase": by_phase,
        "by_reason": by_reason,
        "waste": {
            "useful_bytes": fate_totals[FATE_USEFUL],
            "overwritten_bytes": fate_totals[FATE_OVERWRITTEN],
            "discarded_bytes": fate_totals[FATE_DISCARDED],
            "unused_bytes": fate_totals[FATE_UNUSED],
            "redundant_bytes": classified - fate_totals[FATE_USEFUL],
            "pending_bytes": rmt.pending_record_bytes,
            "dead_writeback_bytes": dead_writeback,
            "thrash_refetch_bytes": thrash_refetch,
            "redundant_fraction": (
                (classified - fate_totals[FATE_USEFUL]) / classified
                if classified
                else 0.0
            ),
        },
    }


def attribution_summary(runtime) -> Dict[str, Any]:
    """Compact attribution summary for sweep results and ``/run``.

    The ``waste`` block plus per-buffer direction/fate totals — small
    enough to ride inside every cached
    :class:`~repro.harness.results.ExperimentResult`.
    """
    report = attribution_report(runtime)
    return {
        "complete": report["complete"],
        "waste": report["waste"],
        "by_buffer": report["by_buffer"],
    }
