"""``repro explain``: post-run attribution, opportunity and diff reports.

Three entry points behind the CLI command:

- :func:`explain_point` — run one experiment point with transfer
  records retained, build the full attribution report, infer the
  discard opportunities the configured system left on the table, and
  (optionally) replay the trace with those discards applied to price
  them in bytes.
- :func:`check_discard_inference` — the acceptance harness: trace a
  UVM-opt baseline, trace the same point under a hand-discard system,
  infer discards on the baseline trace, replay, and demand the
  *detected* per-direction byte savings equal the *measured* ones
  exactly.
- :func:`diff_reports` — structural diff of two saved explain reports
  (``repro explain --diff run_a.json run_b.json``).

Everything heavy (harness, workloads) is imported lazily so
``repro.analysis`` stays importable from low-level modules.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.analysis.attribution import attribution_report
from repro.analysis.opportunities import apply_discards, infer_discards
from repro.harness.systems import System

__all__ = [
    "explain_point",
    "check_discard_inference",
    "diff_reports",
    "render_report",
    "render_diff",
    "render_check",
]

_DIRECTIONS = ("h2d", "d2h", "d2d")


def _with_records(point):
    """The same sweep point with transfer-record retention forced on."""
    overrides = dict(point.driver)
    overrides["keep_transfer_records"] = True
    return dataclasses.replace(point, driver=tuple(sorted(overrides.items())))


def _traced_with_records(point, via_fork: bool = False):
    from repro.harness.tracerun import traced_run

    return traced_run(_with_records(point), via_fork=via_fork)


def _replay_trace_of(tracer):
    from repro.workloads.replay import chrome_trace_to_replay

    return chrome_trace_to_replay(tracer.to_chrome_trace())


def _totals(runtime) -> Dict[str, int]:
    traffic = runtime.driver.traffic
    return {
        "bytes_h2d": traffic.bytes_h2d,
        "bytes_d2h": traffic.bytes_d2h,
        "bytes_d2d": traffic.bytes_d2d,
        "transfer_count": traffic.transfer_count,
    }


def explain_point(
    point, estimate_savings: bool = True, via_fork: bool = False
) -> Dict[str, Any]:
    """Run ``point`` and explain where its bytes went.

    Returns a plain-JSON report: the point's identity, the
    :func:`~repro.analysis.attribution.attribution_report`, the
    inferred missed-discard opportunities, and — when
    ``estimate_savings`` and opportunities exist — the exact byte
    savings of applying them, priced by replaying the recorded op
    stream with the inferred discards inserted.
    """
    result, tracer, runtime = _traced_with_records(point, via_fork=via_fork)
    report: Dict[str, Any] = {
        "point": {
            "workload": point.workload,
            "system": point.system,
            "link": point.link,
            "gpu": point.gpu,
            "scale": point.scale,
            "ratio": point.ratio,
            "batch_size": point.batch_size,
        },
        "oom": result is None,
        "attribution": None,
        "opportunities": [],
        "estimated_savings": None,
    }
    if runtime is None:
        return report
    report["attribution"] = attribution_report(runtime)
    trace = _replay_trace_of(tracer)
    system = point.system
    if System(system) is System.UVM_OPT:
        # A no-discard baseline: price opportunities as UvmDiscard.
        system = System.UVM_DISCARD.value
    opportunities = infer_discards(trace, system)
    # Opportunities the run already took (it issued a discard covering
    # the same dead window) don't reappear: inference runs on the
    # recorded op stream, existing discards included.
    report["opportunities"] = [
        {k: v for k, v in opp.items()} for opp in opportunities
    ]
    if estimate_savings and opportunities and result is not None:
        from repro.workloads.replay import run_replay

        modified = apply_discards(trace, opportunities, system)
        _, replay_runtime = run_replay(modified)
        before = _totals(runtime)
        after = _totals(replay_runtime)
        report["estimated_savings"] = {
            key: before[key] - after[key]
            for key in ("bytes_h2d", "bytes_d2h", "bytes_d2d")
        }
    return report


def check_discard_inference(
    base_point, hand_point, system: str, via_fork: bool = False
) -> Dict[str, Any]:
    """Verify inferred discards against the hand-placed ones, byte for byte.

    ``base_point`` must be the UVM-opt (discard-free) flavor of
    ``hand_point``.  Both are traced; discards are inferred from the
    baseline's op stream and replayed; the check passes when detected
    savings equal measured savings per direction::

        base - replay(infer(base))  ==  base - hand     (h2d and d2h)
    """
    base_result, base_tracer, base_runtime = _traced_with_records(
        base_point, via_fork=via_fork
    )
    if base_runtime is None or base_result is None:
        raise RuntimeError(f"{base_point.label}: baseline run OOMed")
    hand_result, _, hand_runtime = _traced_with_records(
        hand_point, via_fork=via_fork
    )
    if hand_runtime is None or hand_result is None:
        raise RuntimeError(f"{hand_point.label}: hand-discard run OOMed")
    from repro.workloads.replay import run_replay

    base_trace = _replay_trace_of(base_tracer)
    opportunities = infer_discards(base_trace, system)
    inferred_trace = apply_discards(base_trace, opportunities, system)
    _, inferred_runtime = run_replay(inferred_trace)

    base = _totals(base_runtime)
    hand = _totals(hand_runtime)
    inferred = _totals(inferred_runtime)
    measured = {k: base[k] - hand[k] for k in ("bytes_h2d", "bytes_d2h")}
    detected = {k: base[k] - inferred[k] for k in ("bytes_h2d", "bytes_d2h")}
    return {
        "ok": measured == detected,
        "system": system,
        "base": base,
        "hand": hand,
        "inferred": inferred,
        "measured_savings": measured,
        "detected_savings": detected,
        "opportunities": len(opportunities),
    }


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------


def _group_delta(a: Dict[str, Dict], b: Dict[str, Dict]) -> Dict[str, Dict]:
    delta: Dict[str, Dict] = {}
    for name in sorted(set(a) | set(b)):
        row_a = a.get(name, {})
        row_b = b.get(name, {})
        row = {
            key: row_b.get(key, 0) - row_a.get(key, 0)
            for key in sorted(set(row_a) | set(row_b))
        }
        if any(row.values()):
            delta[name] = row
    return delta


def diff_reports(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structural diff of two explain reports (``b`` minus ``a``).

    Covers the totals, the waste decomposition, and the per-buffer /
    per-phase / per-reason attribution groups; buffers or phases
    present in only one run appear with the other side zeroed.
    """
    attr_a = a.get("attribution") or {}
    attr_b = b.get("attribution") or {}
    totals_a = attr_a.get("totals", {})
    totals_b = attr_b.get("totals", {})
    waste_a = attr_a.get("waste", {})
    waste_b = attr_b.get("waste", {})
    return {
        "points": {"a": a.get("point"), "b": b.get("point")},
        "totals": {
            key: totals_b.get(key, 0) - totals_a.get(key, 0)
            for key in sorted(set(totals_a) | set(totals_b))
        },
        "waste": {
            key: waste_b.get(key, 0) - waste_a.get(key, 0)
            for key in sorted(set(waste_a) | set(waste_b))
            if key != "redundant_fraction"
        },
        "by_buffer": _group_delta(
            attr_a.get("by_buffer", {}), attr_b.get("by_buffer", {})
        ),
        "by_phase": _group_delta(
            attr_a.get("by_phase", {}), attr_b.get("by_phase", {})
        ),
        "by_reason": _group_delta(
            attr_a.get("by_reason", {}), attr_b.get("by_reason", {})
        ),
    }


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------


def _mib(nbytes: int) -> str:
    return f"{nbytes / (1 << 20):10.2f}"


def _table(title: str, header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(widths[i]) if i else c.ljust(widths[i])
                               for i, c in enumerate(row)))
    return "\n".join(lines)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable form of an :func:`explain_point` report (MiB)."""
    point = report["point"]
    lines = [
        f"explain {point['workload']}/{point['system']} "
        f"(link={point['link']}, gpu={point['gpu']}, scale={point['scale']})"
    ]
    if report["oom"]:
        lines.append("run OOMed: no attribution available")
        return "\n".join(lines)
    attribution = report["attribution"]
    totals = attribution["totals"]
    lines.append(
        f"traffic: h2d={_mib(totals['bytes_h2d']).strip()} MiB "
        f"d2h={_mib(totals['bytes_d2h']).strip()} MiB "
        f"({totals['transfer_count']} transfers)"
    )
    waste = attribution["waste"]
    lines.append(
        f"waste: useful={_mib(waste['useful_bytes']).strip()} "
        f"redundant={_mib(waste['redundant_bytes']).strip()} MiB "
        f"({waste['redundant_fraction']:.1%}) — "
        f"overwritten={_mib(waste['overwritten_bytes']).strip()} "
        f"discarded={_mib(waste['discarded_bytes']).strip()} "
        f"unused={_mib(waste['unused_bytes']).strip()} | "
        f"dead writebacks={_mib(waste['dead_writeback_bytes']).strip()} "
        f"thrash refetch={_mib(waste['thrash_refetch_bytes']).strip()}"
    )
    lines.append("")
    header = ["buffer", "h2d MiB", "d2h MiB", "useful", "redundant"]
    rows = []
    for name, row in sorted(
        attribution["by_buffer"].items(),
        key=lambda item: -(item[1]["h2d"] + item[1]["d2h"]),
    ):
        rows.append([
            name, _mib(row["h2d"]), _mib(row["d2h"]),
            _mib(row.get("useful", 0)), _mib(row.get("redundant", 0)),
        ])
    lines.append(_table("per-buffer attribution:", header, rows))
    lines.append("")
    header = ["phase", "h2d MiB", "d2h MiB", "useful", "redundant"]
    rows = []
    for name, row in attribution["by_phase"].items():
        rows.append([
            name, _mib(row["h2d"]), _mib(row["d2h"]),
            _mib(row["useful"]), _mib(row["redundant"]),
        ])
    lines.append(_table("per-phase attribution (first-launch order):", header, rows))
    opportunities = report["opportunities"]
    lines.append("")
    if opportunities:
        lines.append(f"{len(opportunities)} missed discard opportunities:")
        for opp in opportunities:
            where = opp.get("killer_name") or f"op {opp['killer']}"
            lines.append(
                f"  {opp['buffer']}[{opp['offset']}:"
                f"{opp['offset'] + opp['length']}] {opp['mode']} after "
                f"{where} ({opp['rule']})"
            )
        savings = report.get("estimated_savings")
        if savings:
            lines.append(
                f"  applying them saves h2d={_mib(savings['bytes_h2d']).strip()} "
                f"MiB d2h={_mib(savings['bytes_d2h']).strip()} MiB (replayed)"
            )
    else:
        lines.append("no missed discard opportunities detected")
    return "\n".join(lines)


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable run diff (``b`` minus ``a``, MiB deltas)."""
    points = diff["points"]

    def label(p: Optional[Dict]) -> str:
        if not p:
            return "?"
        return f"{p.get('workload')}/{p.get('system')}"

    lines = [f"diff: {label(points['a'])} -> {label(points['b'])}"]
    totals = diff["totals"]
    lines.append(
        "totals delta: "
        + " ".join(f"{k}={totals[k]:+d}" for k in sorted(totals))
    )
    waste = diff["waste"]
    if any(waste.values()):
        lines.append(
            "waste delta: "
            + " ".join(f"{k}={waste[k]:+d}" for k in sorted(waste) if waste[k])
        )
    for group in ("by_buffer", "by_phase", "by_reason"):
        entries = diff[group]
        if not entries:
            continue
        lines.append(f"{group} deltas:")
        for name, row in entries.items():
            cells = " ".join(f"{k}={v:+d}" for k, v in row.items() if v)
            lines.append(f"  {name}: {cells}")
    return "\n".join(lines)


def render_check(check: Dict[str, Any], label: str) -> str:
    """One-line verdict plus the savings comparison for ``--check``."""
    verdict = "PASS" if check["ok"] else "FAIL"
    measured = check["measured_savings"]
    detected = check["detected_savings"]
    return (
        f"{label} [{check['system']}] {verdict}: measured savings "
        f"h2d={measured['bytes_h2d']} d2h={measured['bytes_d2h']} vs "
        f"detected h2d={detected['bytes_h2d']} d2h={detected['bytes_d2h']} "
        f"({check['opportunities']} inferred discards)"
    )
