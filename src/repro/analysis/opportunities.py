"""Discard-opportunity inference over declared-access replay traces.

Given a replay trace (PR 8's documented op stream — every kernel
declares which buffer ranges it reads and writes), this module infers
where ``UvmDiscardAsync`` directives *could* be placed without changing
program semantics, and can apply them to produce a modified trace for
:func:`repro.workloads.replay.run_replay`.

The inference is a per-range liveness analysis.  Every buffer is
fragmented into atomic intervals at the access boundaries the trace
declares; each interval's op sequence splits into *copies* (a birth —
setup population or a kernel write — followed by its reads, ended by
the overwrite that replaces it).  A copy whose data is provably dead
over a window qualifies for a discard when:

- **read-kill** — its last access is a pure GPU kernel read and the
  copy is later overwritten by a pure GPU kernel write (or freed): the
  window between last read and rebirth is dead.
- **write-only scratch** — a GPU-written copy is overwritten without
  ever being read (workspace-style buffers).
- **dead-read-once** — the trace ends with the copy unread forever and
  it was read exactly once: a consumed input window (e.g. a query
  batch) that will never be touched again.
- **dead-scratch** — the trace ends with a GPU-written copy whose
  range already cycled through a real dead window earlier: cyclic
  scratch keeps its final discard even after many reads.

Ranges the host touches inside the measured body are never discarded
(the host copy is authoritative there), and a read-modify-write kill
never qualifies (the data was live at its last access).

Placement and mode mirror the hand-written workloads byte for byte
(``repro explain --check`` verifies this on every fig5 and UVMBench
workload): each discard is enqueued on its killer's stream, deferred
to just before the next ``prefetch`` op in the stream program (the
§4.2 ordering — the discard must precede the prefetch it pairs with),
and uses the lazy implementation only when the target system is
UvmDiscardLazy *and* a later prefetch overlapping the dead range
arrives before the rebirth.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.harness.systems import System
from repro.workloads.replay import SCHEMA_VERSION, ReplayTrace

__all__ = ["infer_discards", "apply_discards"]

RULE_READ_KILL = "read-kill"
RULE_WRITE_ONLY = "write-only-scratch"
RULE_DEAD_READ_ONCE = "dead-read-once"
RULE_DEAD_SCRATCH = "dead-scratch"


def _op_range(op: Dict[str, Any], nbytes: int) -> Tuple[int, int]:
    offset = op.get("offset", 0) or 0
    length = op.get("length")
    if length is None:
        length = nbytes - offset
    return offset, offset + length


class _BufferTouches:
    """All liveness-relevant ops on one buffer, in op order."""

    def __init__(self, nbytes: int, setup_spans: List[List[int]]) -> None:
        self.nbytes = nbytes
        self.setup_spans = setup_spans
        self.host_touched = False
        #: (op_idx, kind, [(start, end, mode)], stream) — kind is
        #: "kernel", "discard" or "free".
        self.events: List[Tuple[int, str, List, Optional[str]]] = []
        #: (op_idx, start, end) of prefetches targeting this buffer.
        self.prefetches: List[Tuple[int, int, int]] = []

    def breakpoints(self) -> List[int]:
        points = {0, self.nbytes}
        for offset, length in self.setup_spans:
            points.update((offset, offset + length))
        for _, _, ranges, _ in self.events:
            for start, end, _ in ranges:
                points.update((start, end))
        return sorted(points)


def _scan(trace: ReplayTrace) -> Tuple[Dict[str, _BufferTouches], List[int]]:
    """One pass over the op stream: per-buffer touch lists + the op
    indices of every prefetch (discard insertion points)."""
    sizes = {name: nbytes for name, nbytes, _ in trace.buffers}
    spans = {name: spans for name, nbytes, spans in trace.buffers}
    touches: Dict[str, _BufferTouches] = {
        name: _BufferTouches(nbytes, spans[name])
        for name, nbytes in sizes.items()
    }
    prefetch_indices: List[int] = []
    for idx, op in enumerate(trace.ops):
        kind = op["op"]
        if kind == "malloc":
            sizes[op["buffer"]] = op["nbytes"]
            touches[op["buffer"]] = _BufferTouches(op["nbytes"], [])
        elif kind == "free":
            name = op["buffer"]
            touch = touches[name]
            touch.events.append((idx, "free", [(0, touch.nbytes, None)], None))
        elif kind == "host_access":
            touches[op["buffer"]].host_touched = True
        elif kind == "prefetch":
            name = op["buffer"]
            start, end = _op_range(op, touches[name].nbytes)
            touches[name].prefetches.append((idx, start, end))
            prefetch_indices.append(idx)
        elif kind == "discard":
            name = op["buffer"]
            start, end = _op_range(op, touches[name].nbytes)
            touches[name].events.append(
                (idx, "discard", [(start, end, None)], op.get("stream"))
            )
        elif kind == "kernel":
            stream = op.get("stream")
            per_buffer: Dict[str, List] = {}
            for access in op.get("accesses", []):
                name = access["buffer"]
                start, end = _op_range(access, touches[name].nbytes)
                per_buffer.setdefault(name, []).append(
                    (start, end, access["mode"])
                )
            for name, ranges in per_buffer.items():
                touches[name].events.append((idx, "kernel", ranges, stream))
    return touches, prefetch_indices


def _interval_events(
    touch: _BufferTouches, start: int, end: int
) -> List[Tuple[int, str, Optional[str]]]:
    """This interval's event sequence: (op_idx, kind, stream) with kind
    in kread/kwrite/krw/discard/free.  A kernel both reading and
    writing the interval collapses to krw (live at that op)."""
    events: List[Tuple[int, str, Optional[str]]] = []
    for idx, kind, ranges, stream in touch.events:
        reads = writes = False
        for r_start, r_end, mode in ranges:
            if r_start >= end or r_end <= start:
                continue
            if kind in ("discard", "free"):
                events.append((idx, kind, stream))
                break
            if mode == "read":
                reads = True
            elif mode == "write":
                writes = True
            else:  # readwrite
                reads = writes = True
        else:
            if reads and writes:
                events.append((idx, "krw", stream))
            elif reads:
                events.append((idx, "kread", stream))
            elif writes:
                events.append((idx, "kwrite", stream))
    return events


def _copies(events: List[Tuple[int, str, Optional[str]]]) -> List[Dict]:
    """Split an interval's event sequence into data copies."""
    copies: List[Dict] = []
    current: Dict[str, Any] = {
        "birth": -1, "birth_kind": "initial", "birth_stream": None,
        "reads": [], "end": None, "end_kind": None,
    }
    for idx, kind, stream in events:
        if kind == "kread":
            current["reads"].append((idx, stream))
            continue
        if kind == "krw":
            current["reads"].append((idx, stream))
        current["end"] = idx
        current["end_kind"] = kind
        copies.append(current)
        current = {
            "birth": idx, "birth_kind": kind, "birth_stream": stream,
            "reads": [], "end": None, "end_kind": None,
        }
        if kind == "free":
            return copies
    copies.append(current)
    return copies


def _qualify(copy: Dict, cycled: bool) -> Optional[Tuple[int, Optional[str], str]]:
    """Return (killer_idx, killer_stream, rule) when the copy's data is
    provably dead after its killer, else None."""
    end_kind = copy["end_kind"]
    reads = copy["reads"]
    if end_kind in ("kwrite", "free"):
        if reads:
            idx, stream = reads[-1]
            return idx, stream, RULE_READ_KILL
        if copy["birth_kind"] == "kwrite":
            return copy["birth"], copy["birth_stream"], RULE_WRITE_ONLY
        return None
    if end_kind is None:
        if len(reads) == 1:
            idx, stream = reads[0]
            return idx, stream, RULE_DEAD_READ_ONCE
        if copy["birth_kind"] == "kwrite" and cycled:
            if reads:
                idx, stream = reads[-1]
            else:
                idx, stream = copy["birth"], copy["birth_stream"]
            return idx, stream, RULE_DEAD_SCRATCH
    return None


def infer_discards(
    trace: ReplayTrace, system: str = System.UVM_DISCARD.value
) -> List[Dict[str, Any]]:
    """Infer discard placements for ``trace`` under ``system``.

    Returns one opportunity dict per inferred directive, sorted by
    (killer op, buffer, offset)::

        {"buffer": ..., "offset": ..., "length": ..., "mode": ...,
         "stream": ..., "rule": ..., "killer": <op idx>,
         "killer_name": <kernel name>, "insert_before": <op idx>}

    ``insert_before`` is ``len(trace.ops)`` for end-of-trace discards.
    """
    lazy_capable = system == System.UVM_DISCARD_LAZY.value
    touches, prefetch_indices = _scan(trace)
    raw: List[Dict[str, Any]] = []
    for name, touch in touches.items():
        if touch.host_touched:
            continue
        points = touch.breakpoints()
        for start, end in zip(points, points[1:]):
            events = _interval_events(touch, start, end)
            cycled = False
            for copy in _copies(events):
                found = _qualify(copy, cycled)
                if found is None:
                    continue
                killer, stream, rule = found
                rebirth = copy["end"]
                if rebirth is not None and killer >= rebirth:
                    continue
                if copy["end_kind"] == "kwrite":
                    cycled = True
                horizon = rebirth if rebirth is not None else float("inf")
                paired = any(
                    killer < p_idx < horizon
                    and p_start < end
                    and start < p_end
                    for p_idx, p_start, p_end in touch.prefetches
                )
                raw.append({
                    "buffer": name,
                    "offset": start,
                    "length": end - start,
                    "mode": "lazy" if lazy_capable and paired else "eager",
                    "stream": stream,
                    "rule": rule,
                    "killer": killer,
                })
    return _merge(trace, raw, prefetch_indices)


def _merge(
    trace: ReplayTrace, raw: List[Dict], prefetch_indices: List[int]
) -> List[Dict[str, Any]]:
    """Coalesce adjacent same-killer intervals and attach the insertion
    point (just before the next prefetch after the killer, but never
    past a device-wide sync — the declared-access workloads enqueue
    discards in the same drained region as their killer, e.g. the
    end-of-batch activation discards precede the batch sync).

    Pairing is a property of the discard *site*, not of each atomic
    interval (the hand-written workloads issue one ranged call per
    site), so a merged range is lazy when any constituent is — e.g. the
    reduction tree discards a whole source span lazily even though only
    its reborn prefix is covered by the pairing prefetch.
    """
    import bisect

    sync_indices = [
        idx
        for idx, op in enumerate(trace.ops)
        if op.get("op") == "sync" and not op.get("stream")
    ]
    raw.sort(key=lambda o: (o["killer"], o["buffer"], o["offset"]))
    merged: List[Dict[str, Any]] = []
    for opp in raw:
        last = merged[-1] if merged else None
        if (
            last is not None
            and last["killer"] == opp["killer"]
            and last["buffer"] == opp["buffer"]
            and last["stream"] == opp["stream"]
            and last["offset"] + last["length"] == opp["offset"]
        ):
            last["length"] += opp["length"]
            if opp["mode"] == "lazy":
                last["mode"] = "lazy"
            if opp["rule"] not in last["rule"].split("+"):
                last["rule"] = f"{last['rule']}+{opp['rule']}"
            continue
        merged.append(dict(opp))
    for opp in merged:
        killer_op = trace.ops[opp["killer"]]
        opp["killer_name"] = killer_op.get("kernel")
        slot = bisect.bisect_right(prefetch_indices, opp["killer"])
        insert_before = (
            prefetch_indices[slot]
            if slot < len(prefetch_indices)
            else len(trace.ops)
        )
        gate = bisect.bisect_right(sync_indices, opp["killer"])
        if gate < len(sync_indices):
            insert_before = min(insert_before, sync_indices[gate])
        opp["insert_before"] = insert_before
    return merged


def _retarget_paired_prefetches(
    ops: List[Dict[str, Any]], nbytes_of: Dict[str, int]
) -> None:
    """Order refill prefetches after their paired discards (§4.2).

    A discard followed — with no device-wide sync in between — by an
    *ungated* prefetch of the same buffer is the paired-refill pattern:
    the prefetch must not overtake the discard, or it re-fetches dead
    data (eager) / misses the mandatory dirty-bit notification (lazy).
    The declared-access workloads get that ordering by enqueuing every
    such buffer's ungated prefetches on the discard's stream (see the
    DL trainer's gradients prefetch), so the inferred trace does the
    same.  Gated prefetches — ones some stream later ``wait``\\ s on —
    keep their recorded stream: their consumers already order against
    them, and the hand workloads leave them on the transfer stream
    (e.g. the BFS frontier and reduction span refills).  Refills
    already ordered by a device sync (e.g. next-batch activation
    prefetches) keep their recorded stream too, as do prefetches whose
    byte range never overlaps a discarded range (e.g. the KNN query
    windows — disjoint ranges cannot race).
    """
    sync_prefix: List[int] = []
    syncs = 0
    for op in ops:
        sync_prefix.append(syncs)
        if op.get("op") == "sync" and not op.get("stream"):
            syncs += 1
    gated = {
        op.get("on") for op in ops if op.get("op") == "wait"
    }
    discards: Dict[str, List[int]] = {}
    prefetches: Dict[str, List[int]] = {}
    for idx, op in enumerate(ops):
        kind = op.get("op")
        if kind == "discard":
            discards.setdefault(op["buffer"], []).append(idx)
        elif kind == "prefetch" and op.get("id") not in gated:
            prefetches.setdefault(op["buffer"], []).append(idx)
    for buffer, dpos in discards.items():
        ppos = prefetches.get(buffer, [])
        nbytes = nbytes_of.get(buffer, 0)

        def overlaps(d: int, p: int) -> bool:
            d_start, d_end = _op_range(ops[d], nbytes)
            p_start, p_end = _op_range(ops[p], nbytes)
            return d_start < p_end and p_start < d_end

        racy = any(
            p > d and sync_prefix[p] == sync_prefix[d] and overlaps(d, p)
            for d in dpos
            for p in ppos
        )
        if not racy:
            continue
        stream = ops[dpos[0]].get("stream")
        for p in ppos:
            if ops[p].get("stream") != stream:
                ops[p]["stream"] = stream


def apply_discards(
    trace: ReplayTrace,
    opportunities: List[Dict[str, Any]],
    system: Optional[str] = None,
) -> ReplayTrace:
    """Build a new validated trace with the inferred discards inserted.

    Inserted ops get fresh ids above every existing async id, carry no
    timestamp (replay re-derives timing), and land on their killer's
    stream.  ``meta.expected`` is dropped — the modified trace's totals
    are the question, not a recorded answer — and ``meta.system`` is
    replaced when ``system`` is given.
    """
    next_id = 0
    for idx, op in enumerate(trace.ops):
        if op["op"] in ("prefetch", "discard", "kernel", "kernel_raw", "memcpy"):
            next_id = max(next_id, op.get("id", idx) + 1)
    inserts: Dict[int, List[Dict[str, Any]]] = {}
    for opp in sorted(
        opportunities,
        key=lambda o: (o["insert_before"], o["killer"], o["buffer"], o["offset"]),
    ):
        op = {
            "op": "discard",
            "id": next_id,
            "buffer": opp["buffer"],
            "mode": opp["mode"],
            "offset": opp["offset"],
            "length": opp["length"],
            "stream": opp["stream"],
        }
        next_id += 1
        inserts.setdefault(opp["insert_before"], []).append(op)
    ops: List[Dict[str, Any]] = []
    for idx, op in enumerate(trace.ops):
        ops.extend(inserts.pop(idx, ()))
        ops.append(dict(op))
    for idx in sorted(inserts):
        ops.extend(inserts[idx])
    _retarget_paired_prefetches(
        ops, {name: nbytes for name, nbytes, _ in trace.buffers}
    )
    meta = {key: value for key, value in trace.meta.items() if key != "expected"}
    if system is not None:
        meta["system"] = system
    return ReplayTrace({
        "version": SCHEMA_VERSION,
        "meta": meta,
        "buffers": [
            {"name": name, "nbytes": nbytes, "spans": spans}
            for name, nbytes, spans in trace.buffers
        ],
        "ops": ops,
    })
