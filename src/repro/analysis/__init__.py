"""Post-run byte-attribution and waste analysis (``repro explain``).

- :mod:`repro.analysis.attribution` — map every migrated byte to its
  (buffer, phase, reason) and its RMT fate; the single source of truth
  behind ``per_buffer_transfer_totals`` (re-exported by
  :mod:`repro.workloads.replay` for compatibility).
- :mod:`repro.analysis.opportunities` — infer discard placements from
  declared-access replay traces and apply them.
- :mod:`repro.analysis.explain` — the ``repro explain`` orchestration:
  reports, run diffs and the ``--check`` inference-vs-hand harness.

See the "Attribution & waste analysis" section of
``docs/OBSERVABILITY.md``.
"""

from repro.analysis.attribution import (
    RAW_BUCKET,
    attribution_report,
    attribution_summary,
    per_buffer_transfer_totals,
)
from repro.analysis.explain import (
    check_discard_inference,
    diff_reports,
    explain_point,
    render_check,
    render_diff,
    render_report,
)
from repro.analysis.opportunities import apply_discards, infer_discards

__all__ = [
    "RAW_BUCKET",
    "attribution_report",
    "attribution_summary",
    "per_buffer_transfer_totals",
    "apply_discards",
    "infer_discards",
    "check_discard_inference",
    "diff_reports",
    "explain_point",
    "render_check",
    "render_diff",
    "render_report",
]
