"""UVM driver tuning knobs and cost calibration.

All time constants are in seconds.  Defaults are calibrated against the
paper's testbed measurements: Table 2's API costs, the §7.3 observation
that fault-only remapping can cost up to 3.9x on Radix-sort, and NVIDIA's
published fault-handling latencies (tens of microseconds per replayable
fault batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.units import us


@dataclass
class UvmDriverConfig:
    """Behaviour and cost parameters of the simulated driver."""

    # --- GPU fault handling --------------------------------------------
    #: Fixed cost of draining one batch of replayable GPU faults: fault
    #: buffer read, preprocessing, and the replay command round-trip.
    fault_batch_overhead: float = field(default=us(45.0))
    #: Per-va_block servicing cost within a fault batch.
    fault_per_block: float = field(default=us(2.0))

    # --- CPU fault handling ---------------------------------------------
    #: Cost of one CPU page-fault entry into the driver.
    cpu_fault_overhead: float = field(default=us(4.0))

    # --- prefetch (`cudaMemPrefetchAsync`) ------------------------------
    #: Fixed per-call driver cost, regardless of how much is moved.
    prefetch_command_overhead: float = field(default=us(10.0))
    #: Per-block processing (range walk, residency check) during prefetch.
    prefetch_per_block: float = field(default=us(0.4))
    #: Per-block cost when the prefetch "neither transfers nor prefaults
    #: memory but only updates the recency of page accesses" (§7.5.1) —
    #: the overhead that makes UVM-opt slightly slower than No-UVM when
    #: everything fits on the GPU.
    recency_update_per_block: float = field(default=us(0.25))

    # --- discard ---------------------------------------------------------
    #: Per-call fixed cost of a discard API call (range lookup, locking).
    discard_command_overhead: float = field(default=us(1.0))
    #: Per-block cost of clearing a software dirty bit (UvmDiscardLazy);
    #: "significantly cheaper than unmapping or mapping GPU PTEs" (§5.2).
    lazy_dirty_clear_per_block: float = field(default=us(0.05))
    #: Whether the discarded-page FIFO queue (§5.5) is enabled.  Disabling
    #: it reclaims pages immediately on discard — an ablation knob showing
    #: why the paper keeps discarded pages around for cheap revival.
    discarded_queue_enabled: bool = True

    # --- driver-side auto-prefetch (extension) ---------------------------
    #: Detect sequential fault streams and prefetch ahead of them, in the
    #: spirit of the adaptive oversubscription-management policies of
    #: Ganguly et al. [21, 22].  Off by default: the paper's UVM-opt
    #: baseline relies on *application* prefetches.
    auto_prefetch_enabled: bool = False
    #: Blocks to prefetch ahead once a stream is detected.
    auto_prefetch_depth: int = 8
    #: Consecutive sequential blocks that establish a stream.
    auto_prefetch_trigger: int = 4

    # --- policy ----------------------------------------------------------
    #: Used-queue replacement policy: "lru" (the driver's pseudo-LRU,
    #: §5.5) or "fifo" (insertion order; an ablation showing why recency
    #: matters for the backward pass's reverse-order re-reads).
    eviction_policy: str = "lru"

    #: Back page tables with the NumPy bitmap-slab implementation
    #: (:class:`repro.vm.page_table.BitmapPageTable`) instead of the
    #: scalar set-based reference.  Both produce byte-identical costs and
    #: counters; the bitmap is faster for bulk map/unmap and cheap to
    #: deep-copy on snapshot fork.  Disabling selects the scalar reference
    #: path (used by the differential property tests).
    vectorized: bool = True

    #: Raise :class:`~repro.errors.DiscardSemanticsError` on UvmDiscardLazy
    #: misuse (reuse without the mandatory prefetch) instead of merely
    #: counting it and corrupting the simulated data, which is what real
    #: hardware would do.
    strict_lazy: bool = False
    #: Enforce the §5.4 policy of ignoring partial (non-2MiB-aligned)
    #: discard requests.  Disabling is an ablation that splits 2 MiB
    #: mappings and transfers the remainder in 4 KiB pieces.
    require_full_blocks: bool = True

    # --- transfer fault recovery ------------------------------------------
    #: Retry budget for a DMA command that hits a transient transfer
    #: fault (injected by the chaos subsystem; real hardware sees these
    #: as PCIe replay/ECC events).  Exceeding the budget raises
    #: :class:`~repro.errors.TransferError`.
    transfer_max_retries: int = 3
    #: Base backoff between transfer retries; attempt ``n`` waits
    #: ``n * transfer_retry_backoff`` before re-issuing the command.
    transfer_retry_backoff: float = field(default=us(20.0))

    # --- transfer batching ------------------------------------------------
    #: Batch contiguous va_blocks of one migration under a single
    #: copy-engine hold, mirroring how the real driver issues one ranged
    #: VA-block operation instead of one command per 2 MiB block.  Wire
    #: times are still charged per coalesced span, so simulated times,
    #: traffic bytes and RMT counts are identical with the knob on or
    #: off; only the host-side event count changes (O(runs-of-blocks)
    #: instead of O(blocks)).  Off restores the legacy per-span
    #: request/release machinery.
    coalesce_transfers: bool = True

    # --- simulation reuse -------------------------------------------------
    #: Allow the sweep harness to simulate a group's shared setup prefix
    #: once, snapshot at the quiescent boundary, and fork per point.  A
    #: pure wall-clock optimization: forked runs are bit-for-bit
    #: identical to cold runs (see docs/PERFORMANCE.md), so this is safe
    #: to leave on even for golden-trace reproduction.
    snapshot_reuse: bool = True
    #: Fast-forward strictly periodic workload phases (the DL training
    #: loop): once ``steady_state_verify_iterations`` consecutive
    #: iterations produce identical deltas (counters, traffic, RMT
    #: bytes), replay the delta for the remaining iterations instead of
    #: simulating them.  Unlike ``snapshot_reuse`` this *approximates*
    #: simulated time (float addition order differs), so it is off by
    #: default and rejected in golden-trace mode (event log or retained
    #: transfer records).
    steady_state_fastforward: bool = False
    #: Consecutive identical iteration deltas required before the
    #: fast-forward replay engages.
    steady_state_verify_iterations: int = 2

    # --- instrumentation --------------------------------------------------
    #: Retain individual transfer records (memory-heavy; tests only).
    keep_transfer_records: bool = False
    #: Enable the bounded event log.
    event_log_enabled: bool = False
    #: Ring-buffer capacity of the event log; the oldest entries are
    #: dropped (and counted in ``EventLog.dropped``) once it fills.
    #: ``None`` retains every entry — unbounded, tests only.
    event_log_capacity: Optional[int] = 10_000

    def validate(self) -> None:
        """Sanity-check all cost parameters (non-negative)."""
        if self.eviction_policy not in ("lru", "fifo"):
            raise ValueError(
                f"eviction_policy must be 'lru' or 'fifo', got "
                f"{self.eviction_policy!r}"
            )
        for name in (
            "fault_batch_overhead",
            "fault_per_block",
            "cpu_fault_overhead",
            "prefetch_command_overhead",
            "prefetch_per_block",
            "recency_update_per_block",
            "discard_command_overhead",
            "lazy_dirty_clear_per_block",
            "transfer_retry_backoff",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"UvmDriverConfig.{name} must be >= 0, got {value}")
        if self.transfer_max_retries < 0:
            raise ValueError(
                "UvmDriverConfig.transfer_max_retries must be >= 0, got "
                f"{self.transfer_max_retries}"
            )
        if self.steady_state_verify_iterations < 1:
            raise ValueError(
                "UvmDriverConfig.steady_state_verify_iterations must be "
                f">= 1, got {self.steady_state_verify_iterations}"
            )
        if self.event_log_capacity is not None and self.event_log_capacity < 1:
            raise ValueError(
                "UvmDriverConfig.event_log_capacity must be None or >= 1, "
                f"got {self.event_log_capacity}"
            )
        if self.steady_state_fastforward and self.event_log_enabled:
            raise ValueError(
                "steady_state_fastforward cannot be combined with "
                "event_log_enabled: replayed iterations emit no log "
                "entries, so the trace would silently diverge from a "
                "full simulation"
            )
        if self.steady_state_fastforward and self.keep_transfer_records:
            raise ValueError(
                "steady_state_fastforward cannot be combined with "
                "keep_transfer_records (golden-trace mode): replayed "
                "iterations produce no per-transfer records"
            )
