"""The 2 MiB va_block — the driver's unit of memory management.

NVIDIA's UVM driver manages managed memory in 2 MiB chunks ("va_blocks");
allocation, zeroing, mapping, migration, eviction and — in this paper —
discard all operate at this granularity (§5.4).  A :class:`VaBlock` is the
simulator's per-chunk state record, carrying residency, discard state, the
software dirty bit of `UvmDiscardLazy`, and the ground-truth
``written_since_discard`` flag used to detect lazy misuse.
"""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.memsim.frames import Frame
from repro.units import BIG_PAGE
from repro.vm.layout import VaRange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cuda.memory import ManagedBuffer

#: Residency value for the host.
CPU = "cpu"


class DiscardKind(enum.Enum):
    """Which implementation discarded the block (§5.1 vs §5.2)."""

    EAGER = "eager"  # UvmDiscard: mappings destroyed eagerly
    LAZY = "lazy"  # UvmDiscardLazy: software dirty bit cleared


class VaBlock:
    """State of one 2 MiB span of a managed allocation.

    Attributes:
        index: global block index (virtual address // 2 MiB); unique
            because distinct allocations never share a block.
        used_bytes: bytes of the owning allocation inside this block
            (less than 2 MiB only for an allocation's tail block).
        buffer: the owning managed buffer.
        residency: ``None`` if the block has no physical backing anywhere
            (never touched, or discarded and reclaimed), ``"cpu"``, or a
            GPU identifier.  UVM maps each page exclusively on one
            processor (§2.2).
        frame: the GPU :class:`Frame` backing the block while GPU-resident.
        populated: whether the block holds live (non-dead) program data.
            Cleared by discard — the driver may then skip transfers.
        discarded / discard_kind: discard state (§5).
        sw_dirty: `UvmDiscardLazy`'s software dirty bit.  ``False`` while
            lazily discarded; set again only by the mandatory prefetch.
        written_since_discard: ground truth used by the misuse detector —
            the program wrote new values after a lazy discard without
            notifying the driver.
    """

    __slots__ = (
        "index",
        "used_bytes",
        "buffer",
        "residency",
        "frame",
        "populated",
        "discarded",
        "discard_kind",
        "sw_dirty",
        "written_since_discard",
        "version",
        "split",
        "va_start",
        "va_end",
        "_va_range",
    )

    def __init__(
        self,
        index: int,
        used_bytes: int,
        buffer: Optional["ManagedBuffer"] = None,
    ) -> None:
        if used_bytes <= 0 or used_bytes > BIG_PAGE:
            raise SimulationError(
                f"block used_bytes must be in (0, 2 MiB], got {used_bytes}"
            )
        self.index = index
        self.used_bytes = used_bytes
        self.buffer = buffer
        #: Virtual span [va_start, va_end) as plain integers — the hot
        #: overlap checks use these instead of building VaRange objects.
        self.va_start = index * BIG_PAGE
        self.va_end = self.va_start + used_bytes
        self._va_range: Optional[VaRange] = None
        self.residency: Optional[str] = None
        self.frame: Optional[Frame] = None
        self.populated = False
        self.discarded = False
        self.discard_kind: Optional[DiscardKind] = None
        self.sw_dirty = True
        self.written_since_discard = False
        #: Monotone data version; bumped on every write epoch.  Used by the
        #: semantics oracle to validate reads (§4.1).
        self.version = 0
        #: The 2 MiB mapping was split into 4 KiB pages by a partial
        #: discard with the §5.4 policy disabled; migrations of this
        #: block move in 4 KiB pieces at far lower link efficiency.
        self.split = False

    @property
    def va_range(self) -> VaRange:
        """The virtual address span this block manages (cached)."""
        rng = self._va_range
        if rng is None:
            rng = self._va_range = VaRange(self.va_start, self.used_bytes)
        return rng

    @property
    def on_gpu(self) -> bool:
        return self.residency is not None and self.residency != CPU

    @property
    def on_cpu(self) -> bool:
        return self.residency == CPU

    @property
    def transfer_needed_for_eviction(self) -> bool:
        """Whether evicting this block off the GPU must move data.

        Discarded blocks (and never-populated ones) can be reclaimed
        without a transfer — the entire point of the directive (§5.3).
        """
        return self.populated and not self.discarded

    def mark_discarded(self, kind: DiscardKind) -> None:
        """Apply the discard state transition common to both variants."""
        self.discarded = True
        self.discard_kind = kind
        self.populated = False
        self.written_since_discard = False
        if kind is DiscardKind.LAZY:
            self.sw_dirty = False

    def revive(self) -> None:
        """Leave the discarded state: the block may hold new values again."""
        self.discarded = False
        self.discard_kind = None
        self.sw_dirty = True
        self.written_since_discard = False

    def record_write(self) -> None:
        """Ground-truth bookkeeping for a program write to this block."""
        self.version += 1
        self.populated = True
        if self.discarded:
            self.written_since_discard = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.populated:
            flags.append("pop")
        if self.discarded:
            flags.append(f"disc:{self.discard_kind.value}")  # type: ignore[union-attr]
        if not self.sw_dirty:
            flags.append("clean")
        name = self.buffer.name if self.buffer is not None else "?"
        return (
            f"<VaBlock #{self.index} buf={name} res={self.residency} "
            f"{' '.join(flags)}>"
        )
