"""Migration engine: moves va_blocks across the interconnect.

Each GPU has one copy engine per direction (full-duplex DMA, matching
discrete NVIDIA GPUs).  Contiguous runs of va_blocks are coalesced into a
single DMA command, which matters because the link's effective bandwidth
is a strong function of transfer size (§5.4, Figure 4).
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Sequence

from typing import Optional

import numpy as np

from repro.driver.va_block import VaBlock
from repro.engine.core import Environment
from repro.engine.resources import Resource
from repro.errors import TransferError
from repro.instrument.counters import Counters
from repro.instrument.rmt import RmtClassifier
from repro.instrument.trace import NULL_TRACER
from repro.instrument.traffic import TrafficRecorder, TransferDirection, TransferReason
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, SMALL_PAGE, us


def coalesce_spans(blocks: Iterable[VaBlock]) -> List[List[VaBlock]]:
    """Group blocks into runs of consecutive block indices.

    The driver migrates each run as one DMA command; a fragmented set of
    blocks therefore pays the per-command latency once per run.  Split
    blocks (§5.4 policy disabled) break coalescing: their 4 KiB pages
    move as separate single-block commands.
    """
    ordered = sorted(blocks, key=lambda b: b.index)
    if len(ordered) >= 32:
        # Vectorized run detection: a new span starts wherever the index
        # gap is not exactly 1 or a split block borders the boundary.
        # Output is identical to the scalar loop below.
        indices = np.fromiter(
            (b.index for b in ordered), dtype=np.int64, count=len(ordered)
        )
        split = np.fromiter(
            (b.split for b in ordered), dtype=bool, count=len(ordered)
        )
        breaks = (
            (np.diff(indices) != 1) | split[1:] | split[:-1]
        ).nonzero()[0] + 1
        spans = []
        start = 0
        for stop in breaks.tolist():
            spans.append(ordered[start:stop])
            start = stop
        spans.append(ordered[start:])
        return spans
    spans: List[List[VaBlock]] = []
    for block in ordered:
        if (
            spans
            and spans[-1][-1].index + 1 == block.index
            and not block.split
            and not spans[-1][-1].split
        ):
            spans[-1].append(block)
        else:
            spans.append([block])
    return spans


class CopyEngines:
    """The two DMA engines (one per direction) of a single GPU."""

    def __init__(self, env: Environment) -> None:
        self.h2d = Resource(env, capacity=1, name="h2d")
        self.d2h = Resource(env, capacity=1, name="d2h")

    def engine_for(self, direction: TransferDirection) -> Resource:
        if direction is TransferDirection.HOST_TO_DEVICE:
            return self.h2d
        if direction is TransferDirection.DEVICE_TO_HOST:
            return self.d2h
        raise ValueError(f"no copy engine for {direction}")


class MigrationEngine:
    """Executes block transfers over one link, with traffic accounting."""

    #: Fraction of a command's wire time burned before a transient fault
    #: aborts it — the DMA engine detects the failure mid-flight, so the
    #: wasted wire occupancy is charged but no bytes are accounted.
    FAULT_WASTE_FRACTION = 0.5

    def __init__(
        self,
        env: Environment,
        link: Link,
        traffic: TrafficRecorder,
        rmt: RmtClassifier,
        coalesce: bool = True,
        counters: Optional[Counters] = None,
    ) -> None:
        self.env = env
        self.link = link
        self.traffic = traffic
        self.rmt = rmt
        #: Batch all spans of one transfer under a single copy-engine
        #: hold (one acquire/release per call instead of per span).  Wire
        #: times are computed per span either way, so simulated times,
        #: traffic bytes and RMT counts are identical; only the number of
        #: host-side engine-arbitration events changes.
        self.coalesce = coalesce
        self.counters = counters
        #: Simulated-time tracer; the shared no-op singleton when tracing
        #: is off (see :mod:`repro.instrument.trace`).
        self.tracer = NULL_TRACER
        #: Retry budget and exponential-backoff base for injected
        #: transient transfer faults; the driver sets both from its
        #: config (``transfer_max_retries`` / ``transfer_retry_backoff``).
        self.max_retries = 3
        self.retry_backoff = us(20.0)

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for one coalesced command of ``nbytes``."""
        return self.link.transfer_time(nbytes, chunk=min(nbytes, BIG_PAGE))

    def _timed_command(self, link: Link, nbytes: int, chunk: int) -> Generator:
        """Occupy the wire for one DMA command, retrying injected faults.

        Every attempt that hits an armed transient fault burns
        :data:`FAULT_WASTE_FRACTION` of its wire time (the command aborts
        mid-flight), waits a linearly growing backoff and retries.  Bytes
        are *never* accounted here — callers record traffic only after
        this generator returns, i.e. only for the successful attempt, so
        the byte-conservation invariant holds across any fault schedule.
        """
        counters = self.counters
        attempts = 0
        limit = link.fault_consumption_limit
        while (
            limit is None or attempts < limit
        ) and link.consume_transfer_fault():
            attempts += 1
            if counters is not None:
                counters.bump(Counters.TRANSFER_FAULTS)
            wasted = link.transfer_time(nbytes, chunk=chunk)
            yield self.env.timeout(wasted * self.FAULT_WASTE_FRACTION)
            if attempts > self.max_retries:
                raise TransferError(
                    f"{link.name}: DMA command of {nbytes} bytes failed "
                    f"{attempts} times, exceeding the retry budget of "
                    f"{self.max_retries}"
                )
            if counters is not None:
                counters.bump(Counters.TRANSFER_RETRIES)
            yield self.env.timeout(self.retry_backoff * attempts)
        yield self.env.timeout(link.transfer_time(nbytes, chunk=chunk))

    def _trace_command(
        self,
        track: str,
        name: str,
        started: float,
        span_bytes: int,
        first_block: Optional[int],
        num_blocks: int,
    ) -> None:
        """Record one DMA command as a migration span (tracer enabled)."""
        tracer = self.tracer
        args = {"bytes": span_bytes, "blocks": num_blocks}
        if first_block is not None:
            args["first_block"] = first_block
        tracer.span(
            track, name, started, self.env.now, category="migration", args=args
        )
        tracer.observe("transfer_span_bytes", span_bytes)

    def transfer_blocks(
        self,
        blocks: Sequence[VaBlock],
        direction: TransferDirection,
        reason: TransferReason,
        engines: CopyEngines,
    ) -> Generator:
        """Move ``blocks`` across the link as coalesced DMA commands.

        A generator process: occupies the direction's copy engine for the
        duration of each command, records traffic, and opens an RMT
        tracking record per block.
        """
        if not blocks:
            return
        engine = engines.engine_for(direction)
        if self.coalesce:
            # Fast path: hold the engine once for the whole batch.  The
            # uncontended acquire is a synchronous no-event grant.
            request = engine.try_acquire()
            if request is None:
                request = engine.request()
                yield request
            env = self.env
            link = self.link
            record = self.traffic.record
            on_transfer = self.rmt.on_transfer
            tracer = self.tracer
            try:
                if len(blocks) == 1 and not tracer.enabled:
                    # Single-block command (the eviction path emits these
                    # constantly): skip the sort/coalesce machinery and,
                    # fault-free, the _timed_command generator frame.
                    # Identical wire time, traffic and RMT accounting.
                    block = blocks[0]
                    span_bytes = block.used_bytes
                    chunk = (
                        SMALL_PAGE
                        if block.split
                        else (span_bytes if span_bytes < BIG_PAGE else BIG_PAGE)
                    )
                    if link._armed_faults:
                        yield from self._timed_command(link, span_bytes, chunk)
                    else:
                        yield env.timeout(
                            link.transfer_time(span_bytes, chunk=chunk)
                        )
                    rec = record(
                        env.now,
                        direction,
                        span_bytes,
                        reason,
                        first_block=block.index,
                        num_blocks=1,
                        blocks=blocks,
                    )
                    on_transfer(
                        block.index, span_bytes, direction, reason, rec, block
                    )
                    return
                for span in coalesce_spans(blocks):
                    span_bytes = sum(b.used_bytes for b in span)
                    chunk = (
                        SMALL_PAGE if span[0].split else min(span_bytes, BIG_PAGE)
                    )
                    started = env.now if tracer.enabled else 0.0
                    if link._armed_faults:
                        yield from self._timed_command(link, span_bytes, chunk)
                    else:
                        yield env.timeout(
                            link.transfer_time(span_bytes, chunk=chunk)
                        )
                    if tracer.enabled:
                        self._trace_command(
                            f"link/{direction.value}",
                            reason.value,
                            started,
                            span_bytes,
                            span[0].index,
                            len(span),
                        )
                    rec = record(
                        env.now,
                        direction,
                        span_bytes,
                        reason,
                        first_block=span[0].index,
                        num_blocks=len(span),
                        blocks=span,
                    )
                    for block in span:
                        on_transfer(
                            block.index,
                            block.used_bytes,
                            direction,
                            reason,
                            rec,
                            block,
                        )
            finally:
                engine.release(request)
            return
        # Legacy per-span path.  The engine is still held for the whole
        # batch: releasing it between spans would let a queued transfer
        # (e.g. a prefetch) jump into the middle of a fault batch, which
        # the batched path above never allows — the two modes must stay
        # bit-for-bit identical (test_golden_trace_invariant_to_coalescing).
        request = engine.request()
        yield request
        try:
            for span in coalesce_spans(blocks):
                span_bytes = sum(b.used_bytes for b in span)
                # §5.4: a block whose 2 MiB mapping was split moves in
                # 4 KiB pieces — the higher-cost transfer the alignment
                # policy exists to avoid.
                chunk = SMALL_PAGE if span[0].split else min(span_bytes, BIG_PAGE)
                tracer = self.tracer
                started = self.env.now if tracer.enabled else 0.0
                yield from self._timed_command(self.link, span_bytes, chunk)
                if tracer.enabled:
                    self._trace_command(
                        f"link/{direction.value}",
                        reason.value,
                        started,
                        span_bytes,
                        span[0].index,
                        len(span),
                    )
                rec = self.traffic.record(
                    self.env.now,
                    direction,
                    span_bytes,
                    reason,
                    first_block=span[0].index,
                    num_blocks=len(span),
                    blocks=span,
                )
                for block in span:
                    self.rmt.on_transfer(
                        block.index, block.used_bytes, direction, reason, rec, block
                    )
        finally:
            engine.release(request)

    def transfer_blocks_peer(
        self,
        blocks: Sequence[VaBlock],
        p2p_link: Link,
        source_engines: CopyEngines,
        destination_engines: CopyEngines,
    ) -> Generator:
        """Direct GPU-to-GPU migration over a peer link (§2.3).

        Occupies the source's outbound and the destination's inbound DMA
        engine for the duration; one D2D traffic record per coalesced
        span.
        """
        if not blocks:
            return
        if self.coalesce:
            out_request = source_engines.d2h.try_acquire()
            if out_request is None:
                out_request = source_engines.d2h.request()
                yield out_request
            in_request = destination_engines.h2d.try_acquire()
            if in_request is None:
                in_request = destination_engines.h2d.request()
                yield in_request
            env = self.env
            tracer = self.tracer
            try:
                for span in coalesce_spans(blocks):
                    span_bytes = sum(b.used_bytes for b in span)
                    started = env.now if tracer.enabled else 0.0
                    yield from self._timed_command(p2p_link, span_bytes, BIG_PAGE)
                    if tracer.enabled:
                        self._trace_command(
                            "link/p2p",
                            TransferReason.FAULT_MIGRATION.value,
                            started,
                            span_bytes,
                            span[0].index,
                            len(span),
                        )
                    rec = self.traffic.record(
                        env.now,
                        TransferDirection.DEVICE_TO_DEVICE,
                        span_bytes,
                        TransferReason.FAULT_MIGRATION,
                        first_block=span[0].index,
                        num_blocks=len(span),
                        blocks=span,
                    )
                    for block in span:
                        self.rmt.on_transfer(
                            block.index,
                            block.used_bytes,
                            TransferDirection.DEVICE_TO_DEVICE,
                            TransferReason.FAULT_MIGRATION,
                            rec,
                            block,
                        )
            finally:
                source_engines.d2h.release(out_request)
                destination_engines.h2d.release(in_request)
            return
        # Legacy per-span path: both engines are held for the whole
        # batch, mirroring the batched path above, so span boundaries
        # never admit another transfer mid-batch.
        out_request = source_engines.d2h.request()
        yield out_request
        in_request = destination_engines.h2d.request()
        yield in_request
        try:
            for span in coalesce_spans(blocks):
                span_bytes = sum(b.used_bytes for b in span)
                tracer = self.tracer
                started = self.env.now if tracer.enabled else 0.0
                yield from self._timed_command(p2p_link, span_bytes, BIG_PAGE)
                if tracer.enabled:
                    self._trace_command(
                        "link/p2p",
                        TransferReason.FAULT_MIGRATION.value,
                        started,
                        span_bytes,
                        span[0].index,
                        len(span),
                    )
                rec = self.traffic.record(
                    self.env.now,
                    TransferDirection.DEVICE_TO_DEVICE,
                    span_bytes,
                    TransferReason.FAULT_MIGRATION,
                    first_block=span[0].index,
                    num_blocks=len(span),
                    blocks=span,
                )
                for block in span:
                    self.rmt.on_transfer(
                        block.index,
                        block.used_bytes,
                        TransferDirection.DEVICE_TO_DEVICE,
                        TransferReason.FAULT_MIGRATION,
                        rec,
                        block,
                    )
        finally:
            source_engines.d2h.release(out_request)
            destination_engines.h2d.release(in_request)

    def raw_transfer(
        self,
        nbytes: int,
        direction: TransferDirection,
        reason: TransferReason,
        engines: CopyEngines,
    ) -> Generator:
        """A block-less bulk transfer (explicit memcpy in the baselines)."""
        if nbytes <= 0:
            return
        engine = engines.engine_for(direction)
        request = engine.try_acquire()
        if request is None:
            request = engine.request()
            yield request
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        try:
            yield from self._timed_command(
                self.link, nbytes, min(nbytes, BIG_PAGE)
            )
        finally:
            engine.release(request)
        if tracer.enabled:
            self._trace_command(
                f"link/{direction.value}", reason.value, started, nbytes, None, 0
            )
        self.traffic.record(self.env.now, direction, nbytes, reason)
