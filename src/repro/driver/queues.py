"""Per-GPU physical page queues (§5.5).

NVIDIA's UVM driver keeps three queues per GPU — free, unused (FIFO of
reclaimable leftover frames) and used (pseudo-LRU of everything in use).
The paper adds a fourth: the **discarded FIFO queue**, which keeps
discarded frames around as long as possible so that re-access by the same
GPU can revive them without re-zeroing (§5.5/§5.7), while still letting
the eviction process reclaim them *without a memory transfer* before it
ever has to swap a used page out.

Eviction order (modified by the paper): free → unused → **discarded** →
least-recently-used side of used.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Iterator, Optional

from repro.driver.va_block import VaBlock
from repro.errors import SimulationError
from repro.memsim.frames import Frame


class UsedQueue:
    """Pseudo-LRU queue of in-use va_blocks.

    A fault or prefetch moves the block to the most-recently-used side
    (§5.5); eviction reclaims from the least-recently-used side.
    """

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[int, VaBlock]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, block: VaBlock) -> bool:
        return block.index in self._order

    def touch(self, block: VaBlock) -> None:
        """Insert or move ``block`` to the MRU side."""
        self._order[block.index] = block
        self._order.move_to_end(block.index)

    def remove(self, block: VaBlock) -> None:
        if self._order.pop(block.index, None) is None:
            raise SimulationError(f"{block!r} not in used queue")

    def discard(self, block: VaBlock) -> None:
        """Remove if present; no-op otherwise."""
        self._order.pop(block.index, None)

    def pop_lru(self) -> VaBlock:
        """Remove and return the least-recently-used block."""
        if not self._order:
            raise SimulationError("pop_lru() on empty used queue")
        _index, block = self._order.popitem(last=False)
        return block

    def restore_lru(self, block: VaBlock) -> None:
        """Re-insert ``block`` at the LRU side (eviction skipped it)."""
        if block.index in self._order:
            raise SimulationError(f"{block!r} already in used queue")
        self._order[block.index] = block
        self._order.move_to_end(block.index, last=False)

    def peek_lru(self) -> Optional[VaBlock]:
        if not self._order:
            return None
        index = next(iter(self._order))
        return self._order[index]

    def __iter__(self) -> Iterator[VaBlock]:
        return iter(self._order.values())


class DiscardedQueue:
    """FIFO of discarded-but-not-yet-reclaimed va_blocks (§5.5).

    FIFO order "maximizes the time to keep each discarded GPU page in the
    queue so that they have a higher chance to be recovered" on re-access.
    """

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[int, VaBlock]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, block: VaBlock) -> bool:
        return block.index in self._order

    def push(self, block: VaBlock) -> None:
        if block.index in self._order:
            raise SimulationError(f"{block!r} already in discarded queue")
        self._order[block.index] = block

    def remove(self, block: VaBlock) -> None:
        if self._order.pop(block.index, None) is None:
            raise SimulationError(f"{block!r} not in discarded queue")

    def pop_oldest(self) -> VaBlock:
        """Reclaim the oldest discarded block (FIFO head)."""
        if not self._order:
            raise SimulationError("pop_oldest() on empty discarded queue")
        _index, block = self._order.popitem(last=False)
        return block

    def restore_oldest(self, block: VaBlock) -> None:
        """Re-insert ``block`` at the FIFO head (eviction skipped it)."""
        if block.index in self._order:
            raise SimulationError(f"{block!r} already in discarded queue")
        self._order[block.index] = block
        self._order.move_to_end(block.index, last=False)

    def __iter__(self) -> Iterator[VaBlock]:
        return iter(self._order.values())


class GpuPageQueues:
    """All four page queues of one GPU.

    The *free* queue is implicit in the frame allocator's free count; the
    others hold explicit state.  The unused FIFO holds frames detached from
    any block (e.g. after a managed buffer is freed) that can be handed out
    again with no transfer and no unmapping.
    """

    __slots__ = ("gpu", "unused", "used", "discarded")

    def __init__(self, gpu: str) -> None:
        self.gpu = gpu
        self.unused: Deque[Frame] = deque()
        self.used = UsedQueue()
        self.discarded = DiscardedQueue()

    def forget(self, block: VaBlock) -> None:
        """Drop ``block`` from whichever queue holds it (buffer free path)."""
        self.used.discard(block)
        if block in self.discarded:
            self.discarded.remove(block)

    def resident_blocks(self) -> int:
        """Blocks currently occupying GPU frames via either queue."""
        return len(self.used) + len(self.discarded)
