"""Simulated NVIDIA UVM driver.

This package reproduces the driver machinery the paper modifies:

- 2 MiB **va_blocks** as the management unit (§5.4),
- per-GPU **page queues** — free, unused FIFO, used pseudo-LRU, and the
  paper's new **discarded FIFO** queue (§5.5),
- the **eviction process** and its modified ordering
  unused → discarded → LRU (§5.5),
- fault-driven **migration** with contiguity coalescing,
- **prefetch** (`cudaMemPrefetchAsync`) that pre-faults, populates, and —
  for `UvmDiscardLazy` — sets software dirty bits (§5.2),
- **delayed physical reclamation** of discarded pages (§5.6) and
  access-after-discard revival (§5.7).
"""

from repro.driver.config import UvmDriverConfig
from repro.driver.driver import UvmDriver
from repro.driver.queues import GpuPageQueues
from repro.driver.va_block import DiscardKind, VaBlock

__all__ = [
    "UvmDriver",
    "UvmDriverConfig",
    "GpuPageQueues",
    "VaBlock",
    "DiscardKind",
]
