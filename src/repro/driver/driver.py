"""The simulated UVM driver.

Reproduces the state machines of NVIDIA's open-source UVM kernel driver
that the paper builds on and modifies: fault-driven migration with
exclusive residency (§2.2), prefetch (§2.1), the per-GPU page queues and
the eviction process with the paper's modified ordering (§5.5), delayed
reclamation of discarded pages (§5.6), and access-after-discard revival
(§5.7).  The two discard implementations in :mod:`repro.core` drive the
``discard_block_eager`` / ``discard_block_lazy`` transitions defined here.

All externally visible operations that consume simulated time are
generator *processes* for the discrete-event engine; pure state queries
are plain methods.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, Iterable, List, Optional, Sequence

from repro.access import AccessMode
from repro.core.semantics import DataOracle
from repro.driver.config import UvmDriverConfig
from repro.driver.inspect import BlockView, DriverInspection, GpuView
from repro.driver.migration import CopyEngines, MigrationEngine
from repro.driver.queues import GpuPageQueues
from repro.driver.va_block import CPU, DiscardKind, VaBlock
from repro.engine.core import Environment
from repro.errors import (
    ConfigurationError,
    DiscardSemanticsError,
    OutOfMemoryError,
    SimulationError,
)
from repro.instrument.counters import Counters
from repro.instrument.eventlog import EventLog
from repro.instrument.rmt import RmtClassifier
from repro.instrument.trace import NULL_TRACER
from repro.instrument.traffic import TrafficRecorder, TransferDirection, TransferReason
from repro.interconnect.link import Link
from repro.memsim.frames import Frame, FrameAllocator
from repro.units import BIG_PAGE, SMALL_PAGE
from repro.memsim.zeroing import ZeroFillModel
from repro.vm.page_table import AnyPageTable, MappingCosts, PageTable, make_page_table


#: Distinguishes "no entry" from a lazily-materialized (``None``) lock.
_MISSING = object()


class _Plan(enum.Enum):
    """Residency plan for one block during make-resident-on-GPU."""

    REVIVE_EAGER = "revive_eager"  # §5.7: frame still present, remap
    REVIVE_LAZY = "revive_lazy"  # §5.2: set software dirty bit back
    ZERO = "zero"  # allocate + zero + map (no transfer: the saving)
    MIGRATE = "migrate"  # real data on CPU: transfer it over
    MIGRATE_PEER = "migrate_peer"  # real data on another GPU (D2D)


class _GpuState:
    """Per-GPU driver state: allocator, queues, page table, copy engines."""

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity_bytes: int,
        zero_model: ZeroFillModel,
        mapping_costs: MappingCosts,
        vectorized: bool = True,
    ) -> None:
        self.name = name
        self.allocator = FrameAllocator(name, capacity_bytes)
        self.queues = GpuPageQueues(name)
        self.page_table = make_page_table(name, mapping_costs, vectorized=vectorized)
        self.engines = CopyEngines(env)
        self.zero_model = zero_model


class UvmDriver:
    """Simulated UVM driver for one host plus one or more GPUs."""

    def __init__(
        self,
        env: Environment,
        link: Link,
        config: Optional[UvmDriverConfig] = None,
        oracle: Optional[DataOracle] = None,
        p2p_link: Optional[Link] = None,
    ) -> None:
        self.env = env
        self.link = link
        #: Direct GPU-to-GPU interconnect (NVLink/NVSwitch, §2.3).  When
        #: absent, peer migrations bounce through host memory.
        self.p2p_link = p2p_link
        self.config = config or UvmDriverConfig()
        self.config.validate()
        # Policy is fixed for the driver's lifetime; cached as a bool so
        # the per-touch hot path skips a string compare.
        self._policy_fifo = self.config.eviction_policy == "fifo"
        self.traffic = TrafficRecorder(self.config.keep_transfer_records)
        self.rmt = RmtClassifier()
        self.counters = Counters()
        self.log = EventLog(
            capacity=self.config.event_log_capacity,
            enabled=self.config.event_log_enabled,
        )
        self.oracle = oracle or DataOracle()
        self.migration = MigrationEngine(
            env, link, self.traffic, self.rmt,
            coalesce=self.config.coalesce_transfers,
            counters=self.counters,
        )
        self.migration.max_retries = self.config.transfer_max_retries
        self.migration.retry_backoff = self.config.transfer_retry_backoff
        #: Optional fault injector (:class:`repro.chaos.ChaosInjector`).
        #: When set, :meth:`handle_gpu_faults` routes each fault batch
        #: through it so injected storms and reorderings perturb the
        #: servicing schedule.
        self.chaos = None
        #: Simulated-time tracer (:class:`repro.instrument.trace.Tracer`).
        #: Defaults to the shared no-op singleton; every span site binds
        #: it locally and tests ``tracer.enabled`` before any bookkeeping,
        #: so the disabled configuration costs one attribute load.
        self.tracer = NULL_TRACER
        # CPU PTE operations are local and cheap compared to GPU ones.
        self.cpu_page_table = make_page_table(
            CPU,
            MappingCosts(
                map_block=0.2e-6,
                unmap_block=0.2e-6,
                tlb_invalidate=0.3e-6,
                batch_overhead=0.1e-6,
            ),
            vectorized=self.config.vectorized,
        )
        self._gpus: Dict[str, _GpuState] = {}
        self._blocks: Dict[int, VaBlock] = {}
        # Per-block mutual exclusion for concurrent residency operations
        # (the simulator's equivalent of the real driver's va_block locks):
        # maps a block index to an event that fires when the in-flight
        # operation on that block completes.  The event is materialized
        # lazily — a lock with no waiter is just a ``None`` entry — so the
        # common uncontended case allocates nothing.
        self._inflight: Dict[int, object] = {}
        # Per-GPU sequential-stream detection state for auto-prefetch.
        self._stream_state: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # snapshot/fork support
    # ------------------------------------------------------------------

    def snapshot_precheck(self) -> None:
        """Raise :class:`~repro.errors.SnapshotError` unless the driver's
        state is safe to deep-snapshot.

        Beyond engine quiescence this means no residency operation may be
        mid-flight (``_inflight`` locks held) and no copy engine may hold
        or queue a request — conditions that are implied by an empty
        event heap but checked explicitly so a violated invariant names
        the culprit.
        """
        from repro.errors import SnapshotError

        if not self.env.quiescent:
            raise SnapshotError(
                "driver snapshot with events still on the heap; drain the "
                "simulation first"
            )
        if self._inflight:
            raise SnapshotError(
                "driver snapshot with in-flight residency operations on "
                f"blocks {sorted(self._inflight)}"
            )
        for g in self._gpus.values():
            for engine in (g.engines.h2d, g.engines.d2h):
                if engine.in_use or engine.queue_length:
                    raise SnapshotError(
                        f"driver snapshot with busy copy engine on {g.name}"
                    )

    def reconfigure(self, config: UvmDriverConfig) -> None:
        """Swap in a new config on a forked driver.

        A snapshot carries the *prefix* point's configuration; each fork
        re-applies its own point's knobs before the measured body runs.
        Derived objects that latch config values at construction time
        (migration coalescing, event-log gating) are updated in place;
        accumulated instrument state is deliberately untouched — it is
        part of the simulation history being continued.
        """
        config.validate()
        self.config = config
        self.migration.coalesce = config.coalesce_transfers
        self.migration.max_retries = config.transfer_max_retries
        self.migration.retry_backoff = config.transfer_retry_backoff
        self.log.enabled = config.event_log_enabled
        self.traffic._keep_records = config.keep_transfer_records

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_gpu(
        self,
        name: str,
        capacity_bytes: int,
        zero_model: Optional[ZeroFillModel] = None,
        mapping_costs: Optional[MappingCosts] = None,
    ) -> None:
        """Attach a GPU with ``capacity_bytes`` of device memory."""
        if name in self._gpus or name == CPU:
            raise ConfigurationError(f"duplicate or reserved processor name {name!r}")
        self._gpus[name] = _GpuState(
            self.env,
            name,
            capacity_bytes,
            zero_model or ZeroFillModel(),
            mapping_costs or MappingCosts(),
            vectorized=self.config.vectorized,
        )

    def gpu_names(self) -> List[str]:
        return list(self._gpus)

    def _gpu(self, name: str) -> _GpuState:
        try:
            return self._gpus[name]
        except KeyError:
            raise ConfigurationError(f"unknown GPU {name!r}") from None

    def gpu_free_bytes(self, name: str) -> int:
        """Bytes obtainable without eviction (free frames + unused queue)."""
        g = self._gpu(name)
        from repro.units import BIG_PAGE

        return g.allocator.free_bytes + len(g.queues.unused) * BIG_PAGE

    def gpu_queues(self, name: str) -> GpuPageQueues:
        return self._gpu(name).queues

    def inspect(self) -> DriverInspection:
        """Build an immutable snapshot of all driver-visible state.

        The public inspection API: validators and tests consume this
        instead of reaching into ``_gpus``/``_blocks``/``_inflight``.
        Safe to call between any two engine events (not only at
        quiescence); the returned views never alias live driver objects.
        """
        gpus: Dict[str, GpuView] = {}
        for name, g in self._gpus.items():
            gpus[name] = GpuView(
                name=name,
                capacity_frames=g.allocator.capacity_frames,
                free_frames=g.allocator.free_frames,
                used_frames=g.allocator.used_frames,
                retired_frames=g.allocator.retired_frames,
                unused_queue_frames=len(g.queues.unused),
                used_queue_blocks=tuple(b.index for b in g.queues.used),
                discarded_queue_blocks=tuple(
                    b.index for b in g.queues.discarded
                ),
                mapped_blocks=g.page_table.mapped_indices(),
            )
        blocks: Dict[int, BlockView] = {}
        for index, block in self._blocks.items():
            frame = block.frame
            blocks[index] = BlockView(
                index=index,
                used_bytes=block.used_bytes,
                residency=block.residency,
                has_frame=frame is not None,
                frame_owner=None if frame is None else frame.owner,
                frame_allocated=frame is not None and frame.allocated,
                populated=block.populated,
                discarded=block.discarded,
                discard_kind=(
                    None
                    if block.discard_kind is None
                    else block.discard_kind.value
                ),
                sw_dirty=block.sw_dirty,
                written_since_discard=block.written_since_discard,
            )
        return DriverInspection(
            gpus=gpus,
            blocks=blocks,
            inflight=frozenset(self._inflight),
            cpu_mapped=self.cpu_page_table.mapped_indices(),
            event_log_entries=len(self.log),
            event_log_dropped=self.log.dropped,
        )

    def sample_occupancy(self) -> List[tuple]:
        """Lightweight per-GPU occupancy tuples for the metrics sampler.

        Returns ``(name, free_frames, used_frames, unused_queue,
        discarded_queue, used_queue)`` per GPU.  Unlike :meth:`inspect`
        this allocates no per-block views, so it is cheap enough to call
        every few engine events.
        """
        return [
            (
                name,
                g.allocator.free_frames,
                g.allocator.used_frames,
                len(g.queues.unused),
                len(g.queues.discarded),
                len(g.queues.used),
            )
            for name, g in self._gpus.items()
        ]

    def sample_engines(self) -> List[tuple]:
        """Per-copy-engine ``(label, in_use, queue_length)`` tuples."""
        out = []
        for name, g in self._gpus.items():
            for engine in (g.engines.h2d, g.engines.d2h):
                out.append(
                    (f"{name}/{engine.name}", engine.in_use, engine.queue_length)
                )
        return out

    def gpu_page_table(self, name: str) -> AnyPageTable:
        return self._gpu(name).page_table

    def reserve_gpu_memory(self, name: str, nbytes: int) -> None:
        """Pin ``nbytes`` of GPU memory outside UVM's reach.

        Models both the oversubscription occupant of §7.1 and `cudaMalloc`
        device allocations coexisting with managed memory.
        """
        from repro.units import BIG_PAGE, align_up

        frames = align_up(nbytes, BIG_PAGE) // BIG_PAGE
        self._gpu(name).allocator.reserve(frames)

    def release_gpu_memory(self, name: str, nbytes: int) -> None:
        """Undo a :meth:`reserve_gpu_memory` (the `cudaFree` path).

        Clamped to what is still reserved: under absolute memory
        pressure the driver may have commandeered part of a reservation
        already (see :meth:`_acquire_frame`), in which case the holder
        frees only what it still owns.
        """
        from repro.units import BIG_PAGE, align_up

        allocator = self._gpu(name).allocator
        frames = align_up(nbytes, BIG_PAGE) // BIG_PAGE
        allocator.unreserve(min(frames, allocator.reserved_frames))

    def reserve_gpu_frames(self, gpu: str, nframes: int) -> Generator:
        """Evict-to-reserve: pin up to ``nframes`` frames, vacating first.

        Unlike :meth:`reserve_gpu_memory` (which needs the frames to be
        free already), this models a co-tenant allocation landing on a
        busy GPU: resident blocks are evicted through the ordinary
        machinery to make room.  Best-effort — returns the number of
        frames actually reserved, which may fall short when nothing is
        evictable.  A generator process; charges the eviction time.
        """
        g = self._gpu(gpu)
        if nframes < 0:
            raise ValueError(f"negative reservation: {nframes}")
        reserved = 0
        stalls = 0
        while reserved < nframes:
            if g.allocator.free_frames > 0:
                g.allocator.reserve(1)
                reserved += 1
                stalls = 0
                continue
            try:
                evicted = yield from self._evict_one(g)
            except OutOfMemoryError:
                break  # the pool is exhausted; keep what we got
            if evicted:
                stalls = 0
                continue
            foreign_index = next(iter(self._inflight), None)
            if foreign_index is None:
                break  # nothing evictable and nothing in flight: give up
            stalls += 1
            if stalls > 10_000:
                break
            event = self._inflight[foreign_index]
            if event is None:
                event = self.env.event()
                self._inflight[foreign_index] = event
            yield event  # type: ignore[misc]
        return reserved

    def retire_frames(self, gpu: str, nframes: int = 1) -> Generator:
        """ECC-style page retirement: permanently remove ``nframes`` (§ chaos).

        Models the driver's response to uncorrectable ECC errors: the
        afflicted physical frames are taken out of service for the rest
        of the run.  Each retirement first *vacates* a frame through the
        ordinary eviction machinery (unused → discarded → used-LRU), so
        a resident block backed by a failing frame is remapped — its
        data migrated or reclaimed — before the frame disappears.  A
        generator process; charges whatever time the forced evictions
        cost.
        """
        g = self._gpu(gpu)
        if nframes < 0:
            raise ValueError(f"negative retirement: {nframes}")
        counters = self.counters
        retired = 0
        stalls = 0
        while retired < nframes:
            if g.allocator.capacity_frames <= 1:
                raise OutOfMemoryError(
                    f"{g.name}: cannot retire the last remaining frame"
                )
            if g.allocator.free_frames == 0:
                displaced_before = (
                    counters[Counters.EVICTED_BLOCKS]
                    + counters[Counters.EVICTED_DISCARDED_BLOCKS]
                )
                evicted = yield from self._evict_one(g)
                if not evicted:
                    # Everything evictable is locked by concurrent
                    # residency operations; wait for one to finish.
                    foreign_index = next(iter(self._inflight), None)
                    if foreign_index is None:
                        raise OutOfMemoryError(
                            f"{g.name}: nothing evictable to vacate a "
                            "frame for ECC retirement"
                        )
                    stalls += 1
                    if stalls > 10_000:
                        raise SimulationError(
                            f"{g.name}: ECC retirement starved by "
                            "concurrent residency operations"
                        )
                    event = self._inflight[foreign_index]
                    if event is None:
                        event = self.env.event()
                        self._inflight[foreign_index] = event
                    yield event  # type: ignore[misc]
                    continue
                stalls = 0
                displaced = (
                    counters[Counters.EVICTED_BLOCKS]
                    + counters[Counters.EVICTED_DISCARDED_BLOCKS]
                    - displaced_before
                )
                if displaced:
                    counters.bump(Counters.ECC_REMAPPED_BLOCKS, displaced)
                continue
            g.allocator.retire(1)
            retired += 1
            counters.bump(Counters.ECC_RETIRED_FRAMES)
            if self.log.enabled:
                self.log.log(
                    self.env.now, "ecc", "retired one frame on %s", g.name
                )
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant(
                    f"{g.name}/evict",
                    "frame_retired",
                    self.env.now,
                    category="chaos",
                )

    def register_blocks(self, blocks: Iterable[VaBlock]) -> None:
        """Make an allocation's blocks known to the driver."""
        for block in blocks:
            if block.index in self._blocks:
                raise SimulationError(f"block {block.index} registered twice")
            self._blocks[block.index] = block

    def block(self, index: int) -> VaBlock:
        try:
            return self._blocks[index]
        except KeyError:
            raise SimulationError(f"unregistered block index {index}") from None

    def release_blocks(self, blocks: Iterable[VaBlock]) -> None:
        """Free an allocation: drop residency with no transfers.

        Freeing implies the data is dead, so any pending transfer records
        resolve as redundant and GPU frames go to the unused queue where
        they can be handed out again with no migration (§5.5).
        """
        for block in blocks:
            self.rmt.on_discard(block.index)
            if block.on_gpu:
                g = self._gpu(block.residency)  # type: ignore[arg-type]
                g.queues.forget(block)
                if g.page_table.is_mapped(block.index):
                    g.page_table.unmap_block(block.index)
                if block.frame is not None:
                    g.queues.unused.append(block.frame)
            if self.cpu_page_table.is_mapped(block.index):
                self.cpu_page_table.unmap_block(block.index)
            block.frame = None
            block.residency = None
            block.populated = False
            self._blocks.pop(block.index, None)

    # ------------------------------------------------------------------
    # frame acquisition and eviction (§5.5)
    # ------------------------------------------------------------------

    def _acquire_frame(self, g: _GpuState, own_indices=frozenset()) -> Generator:
        """Obtain one free frame, evicting if necessary.  Returns the Frame.

        ``own_indices`` are block indices the *calling* operation holds
        locks on; the starvation path must never wait on those.
        """
        stalls = 0
        while True:
            if g.queues.unused:
                frame = g.queues.unused.popleft()
                frame.prepared = False
                return frame
            allocator = g.allocator
            if allocator.free_frames > 0:
                return allocator.allocate()
            # Pool exhausted.  At steady-state oversubscription this is
            # the common case, so it is a cheap counter check rather than
            # letting allocate() raise (the exception with its formatted
            # message dominated the eviction path's host cost).
            evicted = yield from self._evict_one(g)
            if evicted:
                stalls = 0
                continue
            # Everything evictable is locked by concurrent residency
            # operations; wait for one to finish and retry.
            foreign_index = next(
                (i for i in self._inflight if i not in own_indices), None
            )
            if foreign_index is None:
                if self.chaos is not None and allocator.reserved_frames > 0:
                    # Absolute pressure under fault injection: rather
                    # than fail the program, commandeer one frame from
                    # a co-tenant reservation (an injected pressure
                    # spike) — the real driver's managed memory always
                    # wins over a transient occupant.  Never reached
                    # fault-free, so baseline behavior is unchanged.
                    allocator.unreserve(1)
                    self.counters.bump(Counters.RECLAIMED_RESERVED_FRAMES)
                    continue
                raise OutOfMemoryError(
                    f"{g.name}: out of memory — this operation alone "
                    "pins more blocks than the device has frames"
                ) from None
            stalls += 1
            if stalls > 10_000:
                raise SimulationError(
                    f"{g.name}: allocation starved — concurrent "
                    "operations pin more memory than the device has"
                )
            event = self._inflight[foreign_index]
            if event is None:
                event = self.env.event()
                self._inflight[foreign_index] = event
            yield event  # type: ignore[misc]

    def _pop_unlocked(self, pop, restore) -> Optional[VaBlock]:
        """Pop the first queue entry with no in-flight residency operation.

        Locked entries are skipped and restored in their original order —
        the same strategy the real driver's eviction uses for va_blocks
        whose lock it cannot take.
        """
        skipped = []
        found: Optional[VaBlock] = None
        while True:
            try:
                candidate = pop()
            except SimulationError:
                break
            if candidate.index in self._inflight:
                skipped.append(candidate)
                continue
            found = candidate
            break
        for block in reversed(skipped):
            restore(block)
        return found

    def _evict_one(self, g: _GpuState) -> Generator:
        """Reclaim one 2 MiB frame: unused → discarded → used-LRU (§5.5).

        Returns ``True`` if a frame was reclaimed; ``False`` when every
        candidate is locked by a concurrent operation.
        """
        if g.queues.unused:
            g.allocator.free(g.queues.unused.popleft())
            self.counters.bump(Counters.EVICTED_UNUSED_FRAMES)
            return True
        if self.config.discarded_queue_enabled and len(g.queues.discarded):
            block = self._pop_unlocked(
                g.queues.discarded.pop_oldest, g.queues.discarded.restore_oldest
            )
            if block is not None:
                self._inflight[block.index] = None
                try:
                    yield from self._reclaim_discarded(g, block)
                finally:
                    self._unlock_blocks([block])
                return True
        if len(g.queues.used):
            block = self._pop_unlocked(
                g.queues.used.pop_lru, g.queues.used.restore_lru
            )
            if block is not None:
                self._inflight[block.index] = None
                try:
                    yield from self._evict_used(g, block)
                finally:
                    self._unlock_blocks([block])
                return True
        if self._inflight:
            return False
        raise OutOfMemoryError(
            f"{g.name}: nothing evictable; the in-flight working set exceeds "
            f"device capacity ({g.allocator.capacity_frames} frames)"
        )

    def _reclaim_discarded(self, g: _GpuState, block: VaBlock) -> Generator:
        """Reclaim a discarded block's frame without any transfer (§5.3/§5.6)."""
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        cost = 0.0
        if g.page_table.is_mapped(block.index):
            # Lazy discard left the mapping in place; destroy it now
            # (§5.6).  The eviction process batches its TLB shootdowns,
            # so only the PTE clear is charged per block here.
            cost += g.page_table.unmap_block(block.index, invalidate_tlb=False)
        if block.written_since_discard:
            # The program re-purposed the region without the mandatory
            # prefetch: its new values are lost (§5.2 misuse).
            self.counters.bump(Counters.LAZY_MISUSES)
            self.oracle.record_data_loss(
                self.env.now,
                block,
                "lazy-discarded block reclaimed after an unnotified write",
            )
            if self.config.strict_lazy:
                raise DiscardSemanticsError(
                    f"block {block.index} re-purposed after UvmDiscardLazy "
                    "without the mandatory prefetch notification"
                )
        frame = block.frame
        block.frame = None
        block.residency = None
        block.populated = False
        if frame is not None:
            g.allocator.free(frame)
        self.counters.bump(Counters.EVICTED_DISCARDED_BLOCKS)
        if self.log.enabled:
            self.log.log(
                self.env.now, "evict", "reclaimed discarded block %d", block.index
            )
        if cost:
            yield self.env.timeout(cost)
        if tracer.enabled:
            now = self.env.now
            tracer.span(
                f"{g.name}/evict",
                "reclaim_discarded",
                started,
                now,
                category="eviction",
                args={"block": block.index, "transfer_free": True},
            )
            tracer.observe("eviction_seconds", now - started)

    def _evict_used(self, g: _GpuState, block: VaBlock) -> Generator:
        """Swap the LRU used block out to host memory (a real transfer)."""
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        cost = g.page_table.unmap_block(block.index)
        if block.transfer_needed_for_eviction:
            yield self.env.timeout(cost)
            yield from self.migration.transfer_blocks(
                [block], TransferDirection.DEVICE_TO_HOST,
                TransferReason.EVICTION, g.engines,
            )
            block.residency = CPU
            yield self.env.timeout(self._ensure_cpu_mapped(block))
        else:
            block.residency = None
            yield self.env.timeout(cost)
        frame = block.frame
        block.frame = None
        if frame is not None:
            g.allocator.free(frame)
        self.counters.bump(Counters.EVICTED_BLOCKS)
        if self.log.enabled:
            self.log.log(self.env.now, "evict", "swapped out block %d", block.index)
        if tracer.enabled:
            now = self.env.now
            tracer.span(
                f"{g.name}/evict",
                "evict_used",
                started,
                now,
                category="eviction",
                args={"block": block.index, "transfer_free": False},
            )
            tracer.observe("eviction_seconds", now - started)

    # ------------------------------------------------------------------
    # mapping helpers
    # ------------------------------------------------------------------

    def _ensure_cpu_mapped(self, block: VaBlock) -> float:
        if self.cpu_page_table.is_mapped(block.index):
            return 0.0
        return self.cpu_page_table.map_block(block.index)

    def _ensure_cpu_unmapped(self, block: VaBlock) -> float:
        if not self.cpu_page_table.is_mapped(block.index):
            return 0.0
        return self.cpu_page_table.unmap_block(block.index)

    def _touch_used(self, g: _GpuState, block: VaBlock) -> None:
        """Insert/refresh ``block`` in the used queue per eviction policy.

        The paper's driver uses a pseudo-LRU queue (§5.5); the "fifo"
        ablation keeps insertion order, never refreshing recency.
        """
        if self._policy_fifo and block in g.queues.used:
            return
        g.queues.used.touch(block)

    # ------------------------------------------------------------------
    # per-block residency locking
    # ------------------------------------------------------------------

    def _lock_blocks(self, blocks: Sequence[VaBlock]) -> Generator:
        """Wait until no residency operation is in flight on ``blocks``,
        then claim them.  Must be paired with :meth:`_unlock_blocks`."""
        inflight = self._inflight
        while True:
            waiting = set()
            for b in blocks:
                index = b.index
                if index in inflight:
                    event = inflight[index]
                    if event is None:
                        event = self.env.event()
                        inflight[index] = event
                    waiting.add(event)
            if not waiting:
                break
            for event in waiting:
                yield event
        for block in blocks:
            inflight[block.index] = None

    def _unlock_blocks(self, blocks: Sequence[VaBlock]) -> None:
        inflight = self._inflight
        for block in blocks:
            event = inflight.pop(block.index, _MISSING)
            if event is not None and event is not _MISSING:
                event.succeed()  # type: ignore[attr-defined]

    def lock_blocks(self, blocks: Sequence[VaBlock]) -> Generator:
        """Claim ``blocks`` against concurrent residency operations.

        Public entry point for driver clients (the discard managers)
        whose state transitions must not interleave with an in-flight
        eviction or migration of the same block — e.g. a pressure-spike
        eviction that has popped a block from the used queue while a
        discard still expects to find it there.  Yields nothing when no
        block is contended, so uncontended traces are unchanged.  Must
        be paired with :meth:`unlock_blocks`.
        """
        yield from self._lock_blocks(blocks)

    def unlock_blocks(self, blocks: Sequence[VaBlock]) -> None:
        """Release locks taken by :meth:`lock_blocks`."""
        self._unlock_blocks(blocks)

    # ------------------------------------------------------------------
    # making blocks resident on a GPU (faults and prefetch share this)
    # ------------------------------------------------------------------

    def _plan_for(self, g: _GpuState, block: VaBlock) -> Optional[_Plan]:
        """Classify what bringing ``block`` to ``g`` requires."""
        if block.residency == g.name:
            if not block.discarded:
                return None  # already resident and live: recency update only
            if block.discard_kind is DiscardKind.EAGER:
                return _Plan.REVIVE_EAGER
            return _Plan.REVIVE_LAZY
        if block.populated and not block.discarded:
            if block.on_cpu:
                return _Plan.MIGRATE
            if block.on_gpu:
                return _Plan.MIGRATE_PEER
        # Never populated, discarded, or reclaimed: zero-fill fresh memory.
        # This is the H2D transfer the discard directive saves (§5.3).
        return _Plan.ZERO

    def _detach_gpu_residency(self, block: VaBlock) -> float:
        """Drop ``block``'s current GPU residency without any transfer.

        Used when a block that is (dead) on one GPU is re-homed to the
        CPU or a peer: unmaps, forgets queue membership and frees the
        frame.  Returns the accumulated time cost.
        """
        if not block.on_gpu:
            return 0.0
        peer = self._gpu(block.residency)  # type: ignore[arg-type]
        peer.queues.forget(block)
        cost = 0.0
        if peer.page_table.is_mapped(block.index):
            cost += peer.page_table.unmap_block(block.index)
        frame = block.frame
        block.frame = None
        block.residency = None
        if frame is not None:
            peer.allocator.free(frame)
        return cost

    def make_resident_gpu(
        self,
        gpu: str,
        blocks: Sequence[VaBlock],
        reason: TransferReason,
        via_prefetch: bool,
    ) -> Generator:
        """Bring ``blocks`` to GPU residency, evicting/zeroing/migrating.

        Serialized per block against concurrent residency operations from
        other streams (prefetch racing a fault on the same window).

        Operations larger than the device are processed in chunks — the
        real driver walks a prefetch range va_block by va_block, so a
        single `cudaMemPrefetchAsync` of an oversubscribing range streams
        through the GPU rather than deadlocking against itself.
        """
        blocks = list(blocks)
        limit = max(1, self._gpu(gpu).allocator.capacity_frames - 1)
        if len(blocks) > limit:
            for start in range(0, len(blocks), limit):
                yield from self.make_resident_gpu(
                    gpu, blocks[start : start + limit], reason, via_prefetch
                )
            return
        yield from self._lock_blocks(blocks)
        try:
            yield from self._make_resident_gpu_locked(
                gpu, blocks, reason, via_prefetch
            )
        finally:
            self._unlock_blocks(blocks)

    def _make_resident_gpu_locked(
        self,
        gpu: str,
        blocks: Sequence[VaBlock],
        reason: TransferReason,
        via_prefetch: bool,
    ) -> Generator:
        g = self._gpu(gpu)
        tracer = self.tracer
        recency_only = 0
        revive_cost = 0.0
        zero_blocks: List[VaBlock] = []
        migrate_blocks: List[VaBlock] = []
        peer_blocks: List[VaBlock] = []
        for block in blocks:
            # Inline of _plan_for's dominant answers (live block on the
            # CPU -> MIGRATE; already resident -> recency only), saving a
            # call plus two property reads per block on the fault path.
            # Order mirrors _plan_for: own-GPU residency is checked
            # before the peer case.
            if block.populated and not block.discarded:
                res = block.residency
                if res == CPU:
                    migrate_blocks.append(block)
                    continue
                if res == g.name:
                    self._touch_used(g, block)
                    recency_only += 1
                    continue
                if res is not None:
                    peer_blocks.append(block)
                    continue
                zero_blocks.append(block)
                continue
            plan = self._plan_for(g, block)
            if plan is None:
                self._touch_used(g, block)
                recency_only += 1
            elif plan is _Plan.REVIVE_EAGER:
                g.queues.discarded.remove(block)
                revive_cost += g.page_table.map_block(block.index)
                frame = block.frame
                if frame is not None and not frame.prepared:
                    # §5.7: discarded pages cannot be assumed prepared.
                    revive_cost += g.zero_model.block_zero_time()
                    frame.prepared = True
                    self.counters.bump(Counters.ZEROED_BLOCKS)
                block.revive()
                block.populated = True
                self._touch_used(g, block)
                self.counters.bump(Counters.DISCARD_REVIVALS)
                if tracer.enabled:
                    tracer.instant(
                        f"{g.name}/discard",
                        "revive_eager",
                        self.env.now,
                        category="revival",
                        args={"block": block.index},
                    )
            elif plan is _Plan.REVIVE_LAZY:
                g.queues.discarded.remove(block)
                revive_cost += self.config.lazy_dirty_clear_per_block
                block.revive()
                block.populated = True
                self._touch_used(g, block)
                self.counters.bump(Counters.DISCARD_REVIVALS)
                if tracer.enabled:
                    tracer.instant(
                        f"{g.name}/discard",
                        "revive_lazy",
                        self.env.now,
                        category="revival",
                        args={"block": block.index},
                    )
            elif plan is _Plan.ZERO:
                # A dead block on a peer GPU is reclaimed there first.
                revive_cost += self._detach_gpu_residency(block)
                zero_blocks.append(block)
            elif plan is _Plan.MIGRATE_PEER:
                peer_blocks.append(block)
            else:
                migrate_blocks.append(block)
        if via_prefetch and recency_only:
            # §7.5.1: prefetches of already-resident data still walk the
            # range and refresh recency — pure overhead.
            self.counters.bump(Counters.PREFETCH_RECENCY_ONLY, recency_only)
            yield self.env.timeout(
                recency_only * self.config.recency_update_per_block
            )
        if revive_cost:
            yield self.env.timeout(revive_cost)

        # Acquire frames for everything that needs fresh physical memory.
        # In-flight blocks are in no queue yet, so eviction cannot steal
        # them out from under this batch.
        own_indices = frozenset(b.index for b in blocks)
        need_frames = zero_blocks + migrate_blocks
        if need_frames:
            env = self.env
            inflight = self._inflight
            queues = g.queues
            allocator = g.allocator
            migration = self.migration
            # The dominant steady-state case — evict one unlocked LRU
            # used block whose data must move — is serviced inline in
            # *this* generator frame.  The _acquire_frame → _evict_one →
            # _evict_used → transfer_blocks delegation chain produced
            # byte-identical events but made every simulated event resume
            # four extra generator frames; flattening it is the single
            # biggest host-side win on the fault path.  Every branch
            # below mirrors that chain exactly (same timeouts, same
            # ordering of counter/traffic/log side effects); anything
            # off the fast case falls back to the original generators.
            fast_evict = (
                self.chaos is None
                and not tracer.enabled
                and migration.coalesce
                and migration.link._armed_faults == 0
            )
            # Loop-invariant attribute chains, hoisted: in the evicting
            # steady state every one of these is read once per block.
            timeout = env.timeout
            unused_q = queues.unused
            used_q = queues.used
            discarded_q = (
                queues.discarded
                if self.config.discarded_queue_enabled
                else None
            )
            page_table = g.page_table
            cpu_table = self.cpu_page_table
            d2h_engine = g.engines.d2h
            link = migration.link
            traffic = migration.traffic
            rmt = migration.rmt
            counters = self.counters
            log = self.log
            d2h = TransferDirection.DEVICE_TO_HOST
            evict_reason = TransferReason.EVICTION
            evicted_counter = Counters.EVICTED_BLOCKS
            for block in need_frames:
                if unused_q:
                    frame = unused_q.popleft()
                    frame.prepared = False
                    block.frame = frame
                    continue
                if allocator.free_frames > 0:
                    block.frame = allocator.allocate()
                    continue
                victim = None
                if (
                    fast_evict
                    and not discarded_q
                    and len(used_q)
                ):
                    candidate = used_q.pop_lru()
                    if candidate.index not in inflight:
                        victim = candidate
                    else:
                        used_q.restore_lru(candidate)
                if victim is None:
                    frame = yield from self._acquire_frame(g, own_indices)
                    block.frame = frame
                    continue
                index = victim.index
                inflight[index] = None
                try:
                    cost = page_table.unmap_block(index)
                    if victim.populated and not victim.discarded:
                        yield timeout(cost)
                        request = d2h_engine.try_acquire()
                        if request is None:
                            request = d2h_engine.request()
                            yield request
                        span_bytes = victim.used_bytes
                        try:
                            chunk = (
                                SMALL_PAGE
                                if victim.split
                                else (
                                    span_bytes
                                    if span_bytes < BIG_PAGE
                                    else BIG_PAGE
                                )
                            )
                            yield timeout(
                                link.transfer_time(span_bytes, chunk=chunk)
                            )
                            rec = traffic.record(
                                env.now,
                                d2h,
                                span_bytes,
                                evict_reason,
                                first_block=index,
                                num_blocks=1,
                                blocks=(victim,),
                            )
                            rmt.on_transfer(
                                index, span_bytes, d2h, evict_reason, rec, victim
                            )
                        finally:
                            d2h_engine.release(request)
                        victim.residency = CPU
                        yield timeout(
                            0.0
                            if cpu_table.is_mapped(index)
                            else cpu_table.map_block(index)
                        )
                    else:
                        victim.residency = None
                        yield timeout(cost)
                    vframe = victim.frame
                    victim.frame = None
                    if vframe is not None:
                        allocator.free(vframe)
                    counters.bump(evicted_counter)
                    if log.enabled:
                        log.log(env.now, "evict", "swapped out block %d", index)
                finally:
                    event = inflight.pop(index, _MISSING)
                    if event is not None and event is not _MISSING:
                        event.succeed()  # type: ignore[attr-defined]
                if unused_q:
                    frame = unused_q.popleft()
                    frame.prepared = False
                    block.frame = frame
                elif allocator.free_frames > 0:
                    block.frame = allocator.allocate()
                else:
                    frame = yield from self._acquire_frame(g, own_indices)
                    block.frame = frame

        if zero_blocks:
            cost = 0.0
            for block in zero_blocks:
                cost += self._ensure_cpu_unmapped(block)
                cost += g.zero_model.zero_time(block.used_bytes)
                cost += g.page_table.map_block(block.index)
                block.frame.prepared = True  # type: ignore[union-attr]
                block.residency = g.name
                was_discarded = block.discarded
                block.revive()
                block.populated = True
                self._touch_used(g, block)
                self.counters.bump(Counters.ZEROED_BLOCKS)
                if was_discarded and self.log.enabled:
                    self.log.log(
                        self.env.now, "zero",
                        "skipped H2D transfer for discarded block %d", block.index,
                    )
                if was_discarded and tracer.enabled:
                    tracer.instant(
                        f"{g.name}/discard",
                        "zero_fill_saved_h2d",
                        self.env.now,
                        category="discard",
                        args={"block": block.index},
                    )
            yield self.env.timeout(cost)

        if migrate_blocks:
            cost = 0.0
            cpu_table = self.cpu_page_table
            page_table = g.page_table
            gpu_name = g.name
            for block in migrate_blocks:
                index = block.index
                if cpu_table.is_mapped(index):
                    cost += cpu_table.unmap_block(index)
                cost += page_table.map_block(index)
            yield self.env.timeout(cost)
            yield from self.migration.transfer_blocks(
                migrate_blocks,
                TransferDirection.HOST_TO_DEVICE,
                reason,
                g.engines,
            )
            if self._policy_fifo:
                for block in migrate_blocks:
                    block.frame.prepared = True  # type: ignore[union-attr]
                    block.residency = gpu_name
                    self._touch_used(g, block)
            else:
                touch = g.queues.used.touch
                for block in migrate_blocks:
                    block.frame.prepared = True  # type: ignore[union-attr]
                    block.residency = gpu_name
                    touch(block)

        if peer_blocks:
            yield from self._migrate_from_peers(g, peer_blocks, reason, own_indices)

    def _migrate_from_peers(
        self,
        g: _GpuState,
        peer_blocks: Sequence[VaBlock],
        reason: TransferReason,
        own_indices,
    ) -> Generator:
        """Move live blocks from other GPUs to ``g`` (D2D migration).

        With a peer link (NVLink/NVSwitch, §2.3) the data moves in one
        D2D hop occupying both GPUs' copy engines; without one it
        bounces through host memory — two transfers over the host link,
        both of which the traffic recorder sees (as on real PCIe systems
        without P2P).
        """
        by_source: Dict[str, List[VaBlock]] = {}
        for block in peer_blocks:
            by_source.setdefault(block.residency, []).append(block)  # type: ignore[arg-type]
        for source_name, group in by_source.items():
            source = self._gpu(source_name)
            cost = 0.0
            for block in group:
                source.queues.forget(block)
                if source.page_table.is_mapped(block.index):
                    cost += source.page_table.unmap_block(block.index)
            if cost:
                yield self.env.timeout(cost)
            if self.config.coalesce_transfers:
                # Batched path: acquire every destination frame, move the
                # whole group as coalesced spans (one ranged operation per
                # run of contiguous blocks), then remap in one batch —
                # how the real driver services a multi-block range.
                source_frames = []
                new_frames = []
                for block in group:
                    source_frames.append(block.frame)
                    block.frame = None
                for block in group:
                    frame = yield from self._acquire_frame(g, own_indices)
                    new_frames.append(frame)
                if self.p2p_link is not None:
                    yield from self.migration.transfer_blocks_peer(
                        group, self.p2p_link, source.engines, g.engines
                    )
                else:
                    yield from self.migration.transfer_blocks(
                        group,
                        TransferDirection.DEVICE_TO_HOST,
                        reason,
                        source.engines,
                    )
                    yield from self.migration.transfer_blocks(
                        group,
                        TransferDirection.HOST_TO_DEVICE,
                        reason,
                        g.engines,
                    )
                map_cost = 0.0
                for block, source_frame, new_frame in zip(
                    group, source_frames, new_frames
                ):
                    source.allocator.free(source_frame)
                    block.frame = new_frame
                    new_frame.prepared = True
                    block.residency = g.name
                    map_cost += g.page_table.map_block(block.index)
                    self._touch_used(g, block)
                if map_cost:
                    yield self.env.timeout(map_cost)
                continue
            # Legacy path: one transfer command and remap per block.
            for block in group:
                source_frame = block.frame
                block.frame = None
                new_frame = yield from self._acquire_frame(g, own_indices)
                if self.p2p_link is not None:
                    yield from self.migration.transfer_blocks_peer(
                        [block], self.p2p_link, source.engines, g.engines
                    )
                else:
                    yield from self.migration.transfer_blocks(
                        [block],
                        TransferDirection.DEVICE_TO_HOST,
                        reason,
                        source.engines,
                    )
                    yield from self.migration.transfer_blocks(
                        [block],
                        TransferDirection.HOST_TO_DEVICE,
                        reason,
                        g.engines,
                    )
                source.allocator.free(source_frame)
                block.frame = new_frame
                new_frame.prepared = True
                block.residency = g.name
                map_cost = g.page_table.map_block(block.index)
                yield self.env.timeout(map_cost)
                self._touch_used(g, block)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------

    def handle_gpu_faults(
        self,
        gpu: str,
        blocks: Sequence[VaBlock],
        reason: TransferReason = TransferReason.FAULT_MIGRATION,
    ) -> Generator:
        """Service one batch of replayable GPU faults."""
        blocks = list(blocks)
        if not blocks:
            return
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        chaos = self.chaos
        if chaos is not None:
            blocks = yield from chaos.on_fault_batch(self, gpu, blocks)
        self.counters.bump(Counters.GPU_FAULT_BATCHES)
        self.counters.bump(Counters.GPU_FAULTED_BLOCKS, len(blocks))
        yield self.env.timeout(
            self.config.fault_batch_overhead
            + len(blocks) * self.config.fault_per_block
        )
        if self.config.auto_prefetch_enabled:
            self._maybe_auto_prefetch(gpu, blocks)
        # Inlined make_resident_gpu for the no-chunking case: the fault
        # path is the hottest caller, and the wrapper frame would sit in
        # the resume chain of every event the residency operation emits.
        if len(blocks) > max(1, self._gpu(gpu).allocator.capacity_frames - 1):
            yield from self.make_resident_gpu(
                gpu, blocks, reason, via_prefetch=False
            )
        else:
            yield from self._lock_blocks(blocks)
            try:
                yield from self._make_resident_gpu_locked(
                    gpu, blocks, reason, via_prefetch=False
                )
            finally:
                self._unlock_blocks(blocks)
        if tracer.enabled:
            now = self.env.now
            tracer.span(
                f"{gpu}/faults",
                "fault_batch",
                started,
                now,
                category="fault",
                args={"blocks": len(blocks)},
            )
            tracer.observe("fault_batch_seconds", now - started)
            tracer.observe("fault_batch_blocks", len(blocks))

    def _maybe_auto_prefetch(self, gpu: str, faulted: Sequence[VaBlock]) -> None:
        """Stream detection + prefetch-ahead (extension, [21, 22]).

        If the fault batch continues an ascending contiguous run of block
        indices, the faulting buffer is being streamed; kick off a
        background prefetch of the next blocks so the following waves hit
        resident memory.  Runs as a separate process: it overlaps the
        fault service it was triggered by.
        """
        indices = sorted(b.index for b in faulted)
        contiguous = all(b - a == 1 for a, b in zip(indices, indices[1:]))
        state = self._stream_state.setdefault(gpu, {"next": -1, "streak": 0})
        if contiguous and indices[0] == state["next"]:
            state["streak"] += len(indices)
        elif contiguous:
            state["streak"] = len(indices)
        else:
            state["streak"] = 0
        state["next"] = indices[-1] + 1
        if state["streak"] < self.config.auto_prefetch_trigger:
            return
        buffer = faulted[-1].buffer
        if buffer is None:
            return
        ahead = [
            b
            for b in buffer.blocks
            if indices[-1] < b.index <= indices[-1] + self.config.auto_prefetch_depth
            and b.residency != gpu
        ]
        if not ahead:
            return
        self.counters.bump(Counters.AUTO_PREFETCHED_BLOCKS, len(ahead))
        self.env.process(
            self.make_resident_gpu(
                gpu, ahead, TransferReason.PREFETCH, via_prefetch=True
            )
        )

    def gpu_needs_fault(self, gpu: str, block: VaBlock) -> bool:
        """Whether a GPU access to ``block`` would fault right now.

        Faults occur when the GPU has no valid mapping — either the block
        is remote, or `UvmDiscard` eagerly destroyed the mapping (§5.1).
        A lazily-discarded resident block is still mapped, so accesses
        sail through without the driver noticing (the §5.2 hazard).
        """
        g = self._gpu(gpu)
        return not g.page_table.is_mapped(block.index)

    # ------------------------------------------------------------------
    # making blocks resident on the CPU
    # ------------------------------------------------------------------

    def make_resident_cpu(
        self,
        blocks: Sequence[VaBlock],
        reason: TransferReason,
        charge_faults: bool,
    ) -> Generator:
        """Bring ``blocks`` to host residency (CPU faults or prefetch)."""
        blocks = list(blocks)
        yield from self._lock_blocks(blocks)
        try:
            yield from self._make_resident_cpu_locked(blocks, reason, charge_faults)
        finally:
            self._unlock_blocks(blocks)

    def _make_resident_cpu_locked(
        self,
        blocks: Sequence[VaBlock],
        reason: TransferReason,
        charge_faults: bool,
    ) -> Generator:
        needed = [b for b in blocks if b.residency != CPU]
        cost = 0.0
        if charge_faults and needed:
            cost += len(needed) * self.config.cpu_fault_overhead
            self.counters.bump(Counters.CPU_FAULTED_BLOCKS, len(needed))
        migrate_by_gpu: Dict[str, List[VaBlock]] = {}
        for block in needed:
            if block.on_gpu:
                g = self._gpu(block.residency)  # type: ignore[arg-type]
                g.queues.forget(block)
                if g.page_table.is_mapped(block.index):
                    cost += g.page_table.unmap_block(block.index)
                if block.populated and not block.discarded:
                    migrate_by_gpu.setdefault(g.name, []).append(block)
                else:
                    # Discarded or unpopulated: reclaim with no transfer.
                    frame = block.frame
                    block.frame = None
                    if frame is not None:
                        g.allocator.free(frame)
                    block.residency = CPU
                    if block.discarded:
                        block.revive()
                    block.populated = False
                    cost += self._ensure_cpu_mapped(block)
            else:
                # First touch on the host: zero-filled CPU pages (Fig. 1 ①).
                block.residency = CPU
                if block.discarded:
                    block.revive()
                block.populated = False
                cost += self._ensure_cpu_mapped(block)
        if cost:
            yield self.env.timeout(cost)
        for gpu_name, group in migrate_by_gpu.items():
            g = self._gpu(gpu_name)
            yield from self.migration.transfer_blocks(
                group, TransferDirection.DEVICE_TO_HOST, reason, g.engines
            )
            map_cost = 0.0
            for block in group:
                frame = block.frame
                block.frame = None
                if frame is not None:
                    g.allocator.free(frame)
                block.residency = CPU
                map_cost += self._ensure_cpu_mapped(block)
            if map_cost:
                yield self.env.timeout(map_cost)

    # ------------------------------------------------------------------
    # prefetch (`cudaMemPrefetchAsync`)
    # ------------------------------------------------------------------

    def prefetch(self, blocks: Sequence[VaBlock], destination: str) -> Generator:
        """Pre-fault ``blocks`` at ``destination`` (§2.1).

        On a GPU destination this also performs `UvmDiscardLazy`'s
        mandatory dirty-bit notification (§5.2) via the lazy-revival path
        in :meth:`make_resident_gpu`.
        """
        blocks = list(blocks)
        if not blocks:
            return
        tracer = self.tracer
        started = self.env.now if tracer.enabled else 0.0
        yield self.env.timeout(
            self.config.prefetch_command_overhead
            + len(blocks) * self.config.prefetch_per_block
        )
        self.counters.bump(Counters.PREFETCHED_BLOCKS, len(blocks))
        if destination == CPU:
            yield from self.make_resident_cpu(
                blocks, TransferReason.PREFETCH, charge_faults=False
            )
        else:
            yield from self.make_resident_gpu(
                destination, blocks, TransferReason.PREFETCH, via_prefetch=True
            )
        if tracer.enabled:
            tracer.span(
                f"{destination}/prefetch",
                "prefetch",
                started,
                self.env.now,
                category="prefetch",
                args={"blocks": len(blocks)},
            )
            tracer.observe("prefetch_blocks", len(blocks))

    # ------------------------------------------------------------------
    # discard state transitions (driven by repro.core managers)
    # ------------------------------------------------------------------

    def discard_block_eager(self, block: VaBlock) -> float:
        """Apply `UvmDiscard` to one block; returns the time cost (§5.1).

        Eagerly destroys every mapping so that any re-access faults.  The
        caller batches blocks and charges one TLB invalidation per GPU per
        call on top.
        """
        cost = 0.0
        self.rmt.on_discard(block.index)
        self.oracle.record_discard(self.env.now, block)
        if block.on_gpu:
            g = self._gpu(block.residency)  # type: ignore[arg-type]
            if g.page_table.is_mapped(block.index):
                cost += g.page_table.unmap_block(block.index, invalidate_tlb=False)
            if not block.discarded:
                g.queues.used.remove(block)
                if self.config.discarded_queue_enabled:
                    g.queues.discarded.push(block)
                else:
                    frame = block.frame
                    block.frame = None
                    block.residency = None
                    if frame is not None:
                        g.allocator.free(frame)
        cost += self._ensure_cpu_unmapped(block)
        block.mark_discarded(DiscardKind.EAGER)
        if not self.config.discarded_queue_enabled and not block.on_gpu:
            block.residency = block.residency if block.on_cpu else None
        self.counters.bump(Counters.DISCARDED_BLOCKS)
        return cost

    def discard_block_lazy(self, block: VaBlock) -> float:
        """Apply `UvmDiscardLazy` to one block; returns the time cost (§5.2).

        Clears the software dirty bit without touching any mapping — far
        cheaper than the eager variant, but the program must prefetch
        before re-purposing the region.
        """
        self.rmt.on_discard(block.index)
        self.oracle.record_discard(self.env.now, block)
        if block.on_gpu and not block.discarded:
            g = self._gpu(block.residency)  # type: ignore[arg-type]
            g.queues.used.remove(block)
            if self.config.discarded_queue_enabled:
                g.queues.discarded.push(block)
            else:
                if g.page_table.is_mapped(block.index):
                    g.page_table.unmap_block(block.index)
                frame = block.frame
                block.frame = None
                block.residency = None
                if frame is not None:
                    g.allocator.free(frame)
        block.mark_discarded(DiscardKind.LAZY)
        self.counters.bump(Counters.DISCARDED_BLOCKS)
        return self.config.lazy_dirty_clear_per_block

    # ------------------------------------------------------------------
    # program-access bookkeeping (RMT + semantics oracle)
    # ------------------------------------------------------------------

    def note_access(self, block: VaBlock, mode: AccessMode) -> None:
        """Record a program access for RMT classification and the oracle.

        Must be called after residency is established (post-fault), in
        program order.
        """
        oracle = self.oracle
        if mode.reads:
            self.rmt.on_read(block.index)
            # Inline guard for the overwhelmingly common clean read; the
            # oracle handles corrupted and discarded-read bookkeeping.
            if block.discarded or block.index in oracle._corrupted:
                oracle.validate_read(self.env.now, block)
        elif mode is AccessMode.WRITE:
            self.rmt.on_overwrite(block.index)
        if mode.writes:
            block.record_write()
            oracle.record_write(self.env.now, block)

    def finalize(self) -> None:
        """End-of-run accounting: resolve all still-pending transfers."""
        self.rmt.finalize()
