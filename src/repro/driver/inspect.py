"""Read-only structured views of UVM driver state.

The public inspection API: :meth:`repro.driver.driver.UvmDriver.inspect`
returns a :class:`DriverInspection` built from these frozen dataclasses,
so validators, tests and tools can examine driver state without reaching
into private attributes (``_gpus``, ``_blocks``, ``_inflight``).

Every view is an immutable *snapshot*: mutating the driver after
``inspect()`` does not change a previously returned inspection, and the
views expose no handles back into live driver objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class GpuView:
    """One GPU's allocator, queue and page-table state."""

    name: str
    #: Current pool size in 2 MiB frames (shrinks under ECC retirement).
    capacity_frames: int
    free_frames: int
    used_frames: int
    #: Frames permanently lost to ECC retirement (not counted in capacity).
    retired_frames: int
    #: Frames parked on the unused FIFO (detached from any block).
    unused_queue_frames: int
    #: Block indices on the used queue, LRU side first.
    used_queue_blocks: Tuple[int, ...]
    #: Block indices on the discarded queue, FIFO (oldest) side first.
    discarded_queue_blocks: Tuple[int, ...]
    #: Block indices with a live PTE in this GPU's page table.
    mapped_blocks: FrozenSet[int]


@dataclass(frozen=True)
class BlockView:
    """One va_block's residency and discard state."""

    index: int
    used_bytes: int
    residency: Optional[str]
    has_frame: bool
    frame_owner: Optional[str]
    frame_allocated: bool
    populated: bool
    discarded: bool
    #: ``"eager"`` / ``"lazy"`` / ``None`` — mirrors ``DiscardKind.value``.
    discard_kind: Optional[str]
    sw_dirty: bool
    written_since_discard: bool


@dataclass(frozen=True)
class DriverInspection:
    """A complete point-in-time snapshot of driver-visible state."""

    gpus: Dict[str, GpuView]
    blocks: Dict[int, BlockView]
    #: Block indices with a residency operation currently in flight.
    inflight: FrozenSet[int]
    #: Block indices mapped in the CPU page table.
    cpu_mapped: FrozenSet[int]
    #: EventLog entries currently held in the ring buffer.
    event_log_entries: int = 0
    #: EventLog entries evicted by the ring buffer — a non-zero value
    #: means the log is a *suffix* of the run, not a complete record.
    event_log_dropped: int = 0

    def gpu(self, name: str) -> GpuView:
        return self.gpus[name]

    def block(self, index: int) -> BlockView:
        return self.blocks[index]
