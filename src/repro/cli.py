"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — enumerate the reproducible experiments,
- ``run <experiment>`` — run one experiment and print its paper-style
  table (``--scale``, ``--link``, ``--csv`` options),
- ``demo`` — the VectorAdd quickstart with verified results.

The heavyweight regeneration of *every* table and figure lives in
``pytest benchmarks/ --benchmark-only``; the CLI is the fast,
exploratory front end.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.cuda.device import rtx_3080ti
from repro.harness.results import ExperimentResult, ResultTable
from repro.harness.runner import ratio_label
from repro.harness.systems import System
from repro.instrument.report import results_to_csv
from repro.interconnect import pcie_gen3, pcie_gen4
from repro.workloads.dl import (
    DarknetTrainer,
    TrainerConfig,
    darknet19,
    resnet53,
    rnn_shakespeare,
    vgg16,
)
from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload

RATIOS = (0.99, 2.0, 3.0, 4.0)
MICRO_SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)
DL_NETWORKS = {
    "vgg16": (vgg16, (50, 75, 100, 125, 150)),
    "darknet19": (darknet19, (86, 171, 260, 360)),
    "resnet53": (resnet53, (28, 56, 100, 150)),
    "rnn": (rnn_shakespeare, (75, 150, 225, 300)),
}

EXPERIMENTS = {
    "fir": "FIR sliding-window filter (Tables 3/4)",
    "radix": "Radix-sort with irregular access (Tables 5/6)",
    "hashjoin": "GPU database hash-join (Tables 7/8)",
    "dl:vgg16": "VGG-16 training sweep (Figures 5/6/7)",
    "dl:darknet19": "Darknet-19 training sweep (Figures 5/6/7)",
    "dl:resnet53": "ResNet-53 training sweep (Figures 3/5/6/7)",
    "dl:rnn": "Character-RNN training sweep (Figures 5/6/7)",
}


def _link_factory(name: str) -> Callable:
    if name == "gen3":
        return pcie_gen3
    if name == "gen4":
        return pcie_gen4
    raise SystemExit(f"unknown link {name!r}; expected gen3 or gen4")


def _run_micro(
    kind: str, scale: float, link_name: str
) -> List[ExperimentResult]:
    workloads = {
        "fir": lambda: FirWorkload(FirConfig().scaled(scale)),
        "radix": lambda: RadixSortWorkload(RadixSortConfig().scaled(scale)),
        "hashjoin": lambda: HashJoinWorkload(HashJoinConfig().scaled(scale)),
    }
    workload = workloads[kind]()
    gpu = rtx_3080ti().scaled(scale)
    link = _link_factory(link_name)
    results = []
    table = ResultTable(kind, [ratio_label(r) for r in RATIOS])
    for ratio in RATIOS:
        for system in MICRO_SYSTEMS:
            result = workload.run(system, ratio, gpu, link())
            table.add(result)
            results.append(result)
    print(table.render("normalized_runtime", baseline=System.UVM_OPT.value))
    print()
    print(table.render("traffic_gb"))
    return results


def _run_dl(network: str, scale: float, link_name: str) -> List[ExperimentResult]:
    factory, batches = DL_NETWORKS[network]
    spec = factory().scaled(scale)
    gpu = rtx_3080ti().scaled(scale)
    link = _link_factory(link_name)
    results = []
    table = ResultTable(spec.name, [str(b) for b in batches])
    for batch in batches:
        for system in MICRO_SYSTEMS:
            trainer = DarknetTrainer(spec, TrainerConfig(batch_size=batch), system)
            result = trainer.run(gpu, link(), config_label=str(batch))
            table.add(result)
            results.append(result)
    print(table.render("metric", fmt="{:.1f}"))
    print()
    print(table.render("traffic_gb"))
    return results


def cmd_list(_args) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    if name.startswith("dl:"):
        results = _run_dl(name.split(":", 1)[1], args.scale, args.link)
    else:
        results = _run_micro(name, args.scale, args.link)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(results_to_csv(results))
        print(f"\nwrote {len(results)} rows to {args.csv}")
    return 0


def cmd_reproduce(args) -> int:
    """Run every experiment at a fast scale; write one markdown report."""
    from repro.instrument.report import results_to_markdown, speedup_summary

    sections = []
    for name in EXPERIMENTS:
        print(f"== {name}")
        if name.startswith("dl:"):
            results = _run_dl(name.split(":", 1)[1], args.scale, args.link)
        else:
            results = _run_micro(name, args.scale, args.link)
        sections.append(
            results_to_markdown(results, title=f"{name} — {EXPERIMENTS[name]}")
        )
        summary = speedup_summary(results, System.UVM_OPT.value)
        if summary:
            sections.append("```\n" + summary + "\n```")
        print()
    report = "# UVM Discard reproduction report\n\n" + "\n\n".join(sections) + "\n"
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output}")
    return 0


def cmd_demo(_args) -> int:
    import numpy as np

    from repro.cuda.runtime import CudaRuntime
    from repro.workloads.vector_add import uvm_vector_add

    n = 1024 * 1024
    runtime = CudaRuntime()
    out = {}

    def program(cuda):
        out["result"] = yield from uvm_vector_add(
            cuda, n, reuse_with_discard="eager"
        )

    runtime.run(program)
    expected = np.arange(n, dtype=np.float32) + 4.0
    ok = np.allclose(out["result"], expected)
    stats = runtime.stats()
    print(
        f"VectorAdd with discard+reuse: result {'OK' if ok else 'WRONG'}, "
        f"{stats['traffic_gb'] * 1e3:.1f} MB of traffic in "
        f"{stats['elapsed_seconds'] * 1e3:.2f} ms simulated"
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UVM Discard reproduction (IISWC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see 'list')")
    run.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="workload/GPU scale factor (1.0 = paper scale)",
    )
    run.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4"), help="PCIe generation"
    )
    run.add_argument("--csv", help="also write raw rows to this CSV file")
    run.set_defaults(func=cmd_run)

    reproduce = sub.add_parser(
        "reproduce", help="run every experiment and write a markdown report"
    )
    reproduce.add_argument("--scale", type=float, default=0.0625)
    reproduce.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4")
    )
    reproduce.add_argument(
        "--output", default="reproduction_report.md", help="report path"
    )
    reproduce.set_defaults(func=cmd_reproduce)

    sub.add_parser("demo", help="run the VectorAdd demo").set_defaults(
        func=cmd_demo
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
