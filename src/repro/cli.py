"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — enumerate the reproducible experiments,
- ``run <experiment>`` — run one experiment and print its paper-style
  table (``--scale``, ``--link``, ``--csv`` options),
- ``sweep`` — expand a declarative grid of (workload, system, link,
  ratio/batch) points, execute it across a worker pool with on-disk
  result caching, and print a summary table,
- ``profile`` — benchmark the simulator itself (engine event churn,
  driver fault storm, the Figure 5 macro point), write
  ``BENCH_engine.json`` and optionally gate against a baseline,
- ``chaos`` — the deterministic fault-injection suite: every workload
  runs fault-free and twice under the same chaos seed with online
  invariant validation, asserting byte-identical outputs and a
  reproducible event trace (see ``docs/VALIDATION.md``),
- ``trace`` — run one experiment point with the simulated-time tracer
  installed and export a Perfetto-loadable Chrome trace plus an
  optional metrics time-series CSV (see ``docs/OBSERVABILITY.md``),
- ``serve`` — the long-running simulation-as-a-service frontend: a
  JSON-over-HTTP API with content-hash dedup, warm snapshot pools,
  backpressure and per-client rate limits (see ``docs/SERVING.md``),
- ``loadgen`` — replay a seeded mix of concurrent requests against a
  running server and report p50/p99 latency plus dedup/pool hit rates,
- ``demo`` — the VectorAdd quickstart with verified results.

The heavyweight regeneration of *every* table and figure lives in
``pytest benchmarks/ --benchmark-only``; the CLI is the fast,
exploratory front end.  ``run``, ``reproduce`` and ``sweep`` all execute
through the same :mod:`repro.harness.sweep` engine.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.harness.results import ExperimentResult, ResultTable
from repro.harness.runner import ratio_label
from repro.harness.sweep import (
    CACHE_ENV,
    DL_BATCH_GRID,
    MICRO_WORKLOADS,
    ResultCache,
    SweepGrid,
    SweepPoint,
    default_cache_dir,
    run_sweep,
)
from repro.harness.systems import System
from repro.instrument.report import results_to_csv, sweep_summary_table

RATIOS = (0.99, 2.0, 3.0, 4.0)
MICRO_SYSTEMS = (System.UVM_OPT, System.UVM_DISCARD, System.UVM_DISCARD_LAZY)
DL_DISPLAY_NAMES = {
    "vgg16": "VGG-16",
    "darknet19": "Darknet-19",
    "resnet53": "ResNet-53",
    "rnn": "RNN",
}

EXPERIMENTS = {
    "fir": "FIR sliding-window filter (Tables 3/4)",
    "radix": "Radix-sort with irregular access (Tables 5/6)",
    "hashjoin": "GPU database hash-join (Tables 7/8)",
    "bfs": "BFS graph traversal, UVMBench-style (docs/WORKLOADS.md)",
    "kmeans": "k-means clustering, UVMBench-style (docs/WORKLOADS.md)",
    "knn": "k-nearest-neighbor search, UVMBench-style (docs/WORKLOADS.md)",
    "stencil": "2D Jacobi stencil, UVMBench-style (docs/WORKLOADS.md)",
    "reduction": "Tree reduction, UVMBench-style (docs/WORKLOADS.md)",
    "dl:vgg16": "VGG-16 training sweep (Figures 5/6/7)",
    "dl:darknet19": "Darknet-19 training sweep (Figures 5/6/7)",
    "dl:resnet53": "ResNet-53 training sweep (Figures 3/5/6/7)",
    "dl:rnn": "Character-RNN training sweep (Figures 5/6/7)",
}


def _write_trace_json(path: str, payload: dict) -> None:
    """Write a trace dict deterministically (sorted keys, compact)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        handle.write("\n")


def _execute_points(
    points: List[SweepPoint], trace: Optional[str]
) -> List[ExperimentResult]:
    """Run experiment points — via the sweep engine, or individually
    traced (merged into one multi-process trace file) when ``trace``."""
    if trace is None:
        report = run_sweep(points)
        return [result for result in report.results if result is not None]
    from repro.harness.tracerun import trace_point
    from repro.instrument.trace import merge_chrome_traces

    results: List[ExperimentResult] = []
    traced = []
    for point in points:
        result, tracer = trace_point(point)
        if result is not None:
            results.append(result)
        traced.append((point.label, tracer))
    _write_trace_json(trace, merge_chrome_traces(traced))
    print(f"wrote merged trace of {len(traced)} points to {trace}")
    return results


def _report_log_dropped(results: List[ExperimentResult]) -> None:
    """Surface ring-buffer losses: a dropped entry means the retained
    event log is a suffix, not the whole story."""
    dropped = sum(result.log_dropped for result in results)
    if dropped:
        print(f"event-log ring buffer dropped {dropped} entries across runs")


def _run_micro(
    kind: str, scale: float, link_name: str, trace: Optional[str] = None,
    fast: bool = False,
) -> List[ExperimentResult]:
    points = [
        SweepPoint(
            workload=kind, system=system.value, link=link_name,
            ratio=ratio, scale=scale, mode="fast" if fast else "exact",
        )
        for ratio in RATIOS
        for system in MICRO_SYSTEMS
    ]
    results = _execute_points(points, trace)
    table = ResultTable(kind, [ratio_label(r) for r in RATIOS])
    for result in results:
        table.add(result)
    print(table.render("normalized_runtime", baseline=System.UVM_OPT.value))
    print()
    print(table.render("traffic_gb"))
    return results


def _run_dl(
    network: str, scale: float, link_name: str, trace: Optional[str] = None,
    fast: bool = False,
) -> List[ExperimentResult]:
    batches = DL_BATCH_GRID[network]
    points = [
        SweepPoint(
            workload=f"dl:{network}", system=system.value, link=link_name,
            batch_size=batch, scale=scale, mode="fast" if fast else "exact",
        )
        for batch in batches
        for system in MICRO_SYSTEMS
    ]
    results = _execute_points(points, trace)
    table = ResultTable(DL_DISPLAY_NAMES[network], [f"bs={b}" for b in batches])
    for result in results:
        table.add(result)
    print(table.render("metric", fmt="{:.1f}"))
    print()
    print(table.render("traffic_gb"))
    return results


def cmd_list(_args) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, description in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    fast = getattr(args, "fast", False)
    if fast and args.trace:
        print(
            "--fast and --trace are incompatible: the analytical model "
            "simulates no events to trace",
            file=sys.stderr,
        )
        return 2
    from repro.fastmodel import FastModelError

    try:
        if name.startswith("dl:"):
            results = _run_dl(
                name.split(":", 1)[1], args.scale, args.link, args.trace,
                fast=fast,
            )
        else:
            results = _run_micro(
                name, args.scale, args.link, args.trace, fast=fast
            )
    except FastModelError as exc:
        print(f"fast model unavailable: {exc}", file=sys.stderr)
        return 2
    _report_log_dropped(results)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(results_to_csv(results))
        print(f"\nwrote {len(results)} rows to {args.csv}")
    return 0


def cmd_reproduce(args) -> int:
    """Run every experiment at a fast scale; write one markdown report."""
    from repro.instrument.report import results_to_markdown, speedup_summary

    sections = []
    for name in EXPERIMENTS:
        print(f"== {name}")
        if name.startswith("dl:"):
            results = _run_dl(name.split(":", 1)[1], args.scale, args.link)
        else:
            results = _run_micro(name, args.scale, args.link)
        sections.append(
            results_to_markdown(results, title=f"{name} — {EXPERIMENTS[name]}")
        )
        summary = speedup_summary(results, System.UVM_OPT.value)
        if summary:
            sections.append("```\n" + summary + "\n```")
        print()
    report = "# UVM Discard reproduction report\n\n" + "\n\n".join(sections) + "\n"
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output}")
    return 0


def _split(text: Optional[str]) -> List[str]:
    if not text:
        return []
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_sweep(args) -> int:
    try:
        if args.grid:
            grid = SweepGrid.from_json(pathlib.Path(args.grid).read_text())
        else:
            workloads = _split(args.workloads)
            if not workloads:
                print(
                    "sweep needs --grid FILE or --workloads a,b,c",
                    file=sys.stderr,
                )
                return 2
            batches = _split(args.batches)
            grid = SweepGrid(
                workloads=workloads,
                systems=_split(args.systems),
                links=_split(args.links),
                ratios=[float(r) for r in _split(args.ratios)],
                batch_sizes=[int(b) for b in batches] if batches else None,
                scale=args.scale,
            )
        points = grid.expand()
        if getattr(args, "fast", False):
            points = [
                dataclasses.replace(point, mode="fast") for point in points
            ]
        if args.jobs < 1:
            raise ConfigurationError(f"--jobs must be >= 1: {args.jobs}")
    except (ConfigurationError, OSError, ValueError) as exc:
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    where = "off" if cache is None else str(cache.root)
    print(f"{len(points)} points, jobs={args.jobs}, cache={where}")
    from repro.fastmodel import FastModelError

    try:
        report = run_sweep(
            points,
            jobs=args.jobs,
            cache=cache,
            progress=print,
            snapshot_reuse=not args.no_snapshot_reuse,
            blob_store_dir=args.blob_store,
        )
    except FastModelError as exc:
        print(f"fast model unavailable: {exc}", file=sys.stderr)
        return 2
    print()
    print(sweep_summary_table([(p.label, r) for p, r in report.rows()]))
    print(
        f"\n{report.simulated} simulated, {report.cached} cached, "
        f"{report.wall_seconds:.2f} s wall"
    )
    if report.blob_stats:
        stats = report.blob_stats
        print(
            f"blob store: {stats['builds_distinct']} distinct prefixes, "
            f"{stats['builds_total']} builds, {stats['bytes']} bytes shared"
        )
    _report_log_dropped(
        [result for result in report.results if result is not None]
    )
    if args.csv:
        rows = [result for result in report.results if result is not None]
        with open(args.csv, "w") as handle:
            handle.write(results_to_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    return 0


def cmd_profile(args) -> int:
    """Benchmark the simulation kernel; see docs/PERFORMANCE.md."""
    from repro.harness.perf import (
        BENCHMARKS,
        check_regressions,
        compare_results,
        load_bench_json,
        run_benchmarks,
        results_to_json,
    )

    try:
        names = _split(args.benchmarks) or None
        if args.cprofile:
            import cProfile
            import pstats

            if args.cprofile not in BENCHMARKS:
                raise KeyError(
                    f"unknown benchmark {args.cprofile!r}; "
                    f"have {sorted(BENCHMARKS)}"
                )
            profiler = cProfile.Profile()
            profiler.enable()
            BENCHMARKS[args.cprofile]()
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("tottime").print_stats(25)
            return 0
        results = run_benchmarks(names, repeat=args.repeat, progress=print)
    except (KeyError, ValueError) as exc:
        # KeyError str() wraps its message in quotes; unwrap for stderr.
        message = exc.args[0] if exc.args else exc
        print(f"bad profile spec: {message}", file=sys.stderr)
        return 2
    if args.output:
        payload = results_to_json(results, repeat=args.repeat)
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.output}")
    if args.compare:
        try:
            baseline = load_bench_json(pathlib.Path(args.compare).read_text())
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad baseline {args.compare}: {exc}", file=sys.stderr)
            return 2
        print(f"vs baseline {args.compare}:")
        print(compare_results(results, baseline))
        # --compare is a gate, not just a report: a regression past
        # --max-regression fails the run even without --check (or
        # REPRO_PERF_STRICT), so CI cannot silently pass.
        failures = check_regressions(
            results, baseline, factor=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
    if args.check:
        try:
            baseline = load_bench_json(pathlib.Path(args.check).read_text())
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad baseline {args.check}: {exc}", file=sys.stderr)
            return 2
        failures = check_regressions(
            results, baseline, factor=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"within {args.max_regression:g}x of baseline {args.check} "
            f"({len(results)} benchmarks)"
        )
    return 0


def cmd_fastmodel(args) -> int:
    """Calibrate/validate the analytical fast model; see docs/PERFORMANCE.md."""
    if args.action == "calibrate":
        from repro.fastmodel.calibrate import main
    else:
        from repro.fastmodel.validate import main
    return main(args.rest)


def cmd_chaos(args) -> int:
    """Run the deterministic fault-injection suite; see docs/VALIDATION.md."""
    from repro.chaos import ChaosConfig, run_chaos_suite
    from repro.chaos.runner import CHAOS_WORKLOADS

    try:
        if args.cadence < 1:
            raise ConfigurationError(
                f"--cadence must be >= 1, got {args.cadence}"
            )
        workloads = _split(args.workloads) or None
        if workloads:
            unknown = sorted(set(workloads) - set(CHAOS_WORKLOADS))
            if unknown:
                raise ConfigurationError(
                    f"unknown chaos workloads {unknown}; "
                    f"have {list(CHAOS_WORKLOADS)}"
                )
        overrides = {}
        for item in _split(args.set):
            key, sep, value = item.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"--set wants key=value pairs, got {item!r}"
                )
            overrides[key.strip()] = float(value) if "." in value else int(value)
        if overrides:
            overrides.setdefault("seed", args.seed)
            config = ChaosConfig.from_items(tuple(overrides.items()))
        else:
            config = ChaosConfig.default_storm(seed=args.seed)
    except (ConfigurationError, TypeError, ValueError) as exc:
        print(f"bad chaos spec: {exc}", file=sys.stderr)
        return 2
    trace_config = None
    if args.trace:
        from repro.instrument.trace import TraceConfig

        trace_config = TraceConfig()
    report = run_chaos_suite(
        seed=args.seed,
        workloads=workloads,
        cadence=args.cadence,
        config=config,
        strict=args.strict,
        trace_config=trace_config,
    )
    for line in report.summary_lines():
        print(line)
    if args.counters:
        for result in report.results:
            active = {k: v for k, v in sorted(result.counters.items()) if v}
            print(f"{result.workload}: {active}")
    if args.trace:
        from repro.instrument.trace import merge_chrome_traces

        traced = [
            (result.workload, result.chaos_tracer)
            for result in report.results
            if result.chaos_tracer is not None
        ]
        _write_trace_json(args.trace, merge_chrome_traces(traced))
        print(f"wrote merged chaos trace of {len(traced)} workloads to {args.trace}")
    return 0 if report.ok else 1


#: ``trace`` accepts the paper's figure names as experiment aliases.
TRACE_ALIASES = {f"fig5-{net}": f"dl:{net}" for net in DL_BATCH_GRID}


def cmd_trace(args) -> int:
    """Trace one experiment point; see docs/OBSERVABILITY.md."""
    from repro.instrument.report import phase_breakdown_table
    from repro.instrument.trace import TraceConfig, validate_chrome_trace

    if args.validate:
        try:
            data = json.loads(pathlib.Path(args.validate).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.validate}: {exc}", file=sys.stderr)
            return 2
        problems = validate_chrome_trace(data)
        if problems:
            for problem in problems[:25]:
                print(problem, file=sys.stderr)
            print(
                f"{args.validate}: INVALID ({len(problems)} problems)",
                file=sys.stderr,
            )
            return 1
        count = len(data.get("traceEvents", []))
        print(f"{args.validate}: valid Chrome trace ({count} events)")
        return 0
    if not args.experiment:
        print("trace needs an experiment name (or --validate FILE)", file=sys.stderr)
        return 2
    name = TRACE_ALIASES.get(args.experiment, args.experiment)
    if name not in EXPERIMENTS:
        known = ", ".join([*EXPERIMENTS, *TRACE_ALIASES])
        print(f"unknown experiment {args.experiment!r}; have {known}", file=sys.stderr)
        return 2
    from repro.harness.tracerun import trace_point

    try:
        system = System(args.system)
        if system is System.NO_UVM:
            raise ConfigurationError("No-UVM has no driver to trace")
        if name.startswith("dl:"):
            network = name.split(":", 1)[1]
            # Default to the grid's most oversubscribed batch: the
            # richest timeline (faults, evictions, discards, revivals).
            batch = args.batch or DL_BATCH_GRID[network][-1]
            point = SweepPoint(
                workload=name, system=system.value, link=args.link,
                batch_size=batch, scale=args.scale,
            )
        else:
            point = SweepPoint(
                workload=name, system=system.value, link=args.link,
                ratio=args.ratio, scale=args.scale,
            )
        config = TraceConfig(metrics_cadence=args.cadence)
        result, tracer = trace_point(point, config, via_fork=args.fork)
    except (ConfigurationError, ValueError) as exc:
        print(f"bad trace spec: {exc}", file=sys.stderr)
        return 2
    # Write both artifacts before any summary printing, so a closed
    # stdout (e.g. piping into head) can never truncate the outputs.
    tracer.write(args.out)
    if args.metrics_csv:
        with open(args.metrics_csv, "w", encoding="utf-8") as handle:
            handle.write(tracer.metrics.to_csv())
    spans = sum(1 for record in tracer.events if record[0] == "X")
    instants = len(tracer.events) - spans
    print(
        f"wrote {args.out}: {spans} spans, {instants} instants, "
        f"{tracer.dropped} dropped trace records"
    )
    print(f"trace_digest: {tracer.digest()}")
    if result is None:
        print(f"{point.label}: OOM — configuration does not fit")
    else:
        print(
            f"{point.label}: {result.elapsed_seconds:.6f} s simulated, "
            f"{result.traffic_gb:.3f} GB traffic"
        )
        _report_log_dropped([result])
        print()
        print(
            phase_breakdown_table(
                tracer.phase_seconds(),
                result.elapsed_seconds,
                title="phase breakdown (simulated seconds; tracks overlap)",
            )
        )
    if args.metrics_csv:
        print(f"wrote metrics time-series to {args.metrics_csv}")
    return 0


def cmd_explain(args) -> int:
    """Byte attribution, waste analysis and discard-opportunity reports;
    see the "Attribution & waste analysis" section of
    docs/OBSERVABILITY.md."""
    from repro.analysis.explain import (
        check_discard_inference,
        diff_reports,
        explain_point,
        render_check,
        render_diff,
        render_report,
    )

    if args.diff:
        path_a, path_b = args.diff
        try:
            report_a = json.loads(pathlib.Path(path_a).read_text())
            report_b = json.loads(pathlib.Path(path_b).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot load diff inputs: {exc}", file=sys.stderr)
            return 2
        diff = diff_reports(report_a, report_b)
        print(json.dumps(diff, indent=2) if args.json else render_diff(diff))
        return 0
    if not args.experiment:
        print(
            "explain needs an experiment name (or --diff A B)",
            file=sys.stderr,
        )
        return 2
    name = TRACE_ALIASES.get(args.experiment, args.experiment)
    if name not in EXPERIMENTS:
        known = ", ".join([*EXPERIMENTS, *TRACE_ALIASES])
        print(
            f"unknown experiment {args.experiment!r}; have {known}",
            file=sys.stderr,
        )
        return 2

    def point_for(system_name: str) -> SweepPoint:
        if name.startswith("dl:"):
            network = name.split(":", 1)[1]
            batch = args.batch or DL_BATCH_GRID[network][-1]
            return SweepPoint(
                workload=name, system=system_name, link=args.link,
                batch_size=batch, scale=args.scale,
            )
        return SweepPoint(
            workload=name, system=system_name, link=args.link,
            ratio=args.ratio, scale=args.scale,
        )

    try:
        system = System(args.system)
        if system is System.NO_UVM:
            raise ConfigurationError("No-UVM has no driver to explain")
        if args.check:
            # Verify inferred discards against the hand-placed ones:
            # trace the discard-free baseline, infer, replay, and demand
            # byte-equal savings with the hand-discard run.
            check_system = (
                System.UVM_DISCARD if system is System.UVM_OPT else system
            )
            check = check_discard_inference(
                point_for(System.UVM_OPT.value),
                point_for(check_system.value),
                check_system.value,
                via_fork=args.fork,
            )
            if args.json:
                print(json.dumps(check, indent=2))
            else:
                print(render_check(check, name))
            return 0 if check["ok"] else 1
        report = explain_point(point_for(system.value), via_fork=args.fork)
        if args.out:
            pathlib.Path(args.out).write_text(
                json.dumps(report, indent=2) + "\n"
            )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_report(report))
        if args.out and not args.json:
            print(f"\nwrote report to {args.out}")
        return 0
    except (ConfigurationError, ValueError) as exc:
        print(f"bad explain spec: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"explain failed: {exc}", file=sys.stderr)
        return 2


def cmd_replay(args) -> int:
    """Replay an access trace as a workload; see docs/WORKLOADS.md."""
    from repro.workloads.replay import (
        check_replay,
        load_replay_trace,
        per_buffer_transfer_totals,
        replay_trace_to_csv,
        run_replay,
    )

    try:
        trace = load_replay_trace(args.trace)
    except (ReproError, OSError) as exc:
        print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    if args.convert:
        out = pathlib.Path(args.convert)
        if out.suffix == ".csv":
            out.write_text(replay_trace_to_csv(trace))
        else:
            out.write_text(trace.to_json() + "\n")
        print(
            f"wrote replay trace ({len(trace.buffers)} buffers, "
            f"{len(trace.ops)} ops) to {out}"
        )
        return 0
    keep_records = args.per_buffer
    try:
        result, runtime = run_replay(trace, keep_transfer_records=keep_records)
    except ReproError as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 2
    check = check_replay(trace, runtime)
    if args.json:
        payload = {
            "meta": {k: v for k, v in trace.meta.items() if k != "expected"},
            "ops": len(trace.ops),
            "elapsed_seconds": result.elapsed_seconds,
            "check": check,
        }
        if keep_records:
            payload["per_buffer"] = per_buffer_transfer_totals(runtime)
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        meta = trace.meta
        print(
            f"replayed {meta.get('workload', '?')}/{meta.get('system', '?')} "
            f"({len(trace.ops)} ops): {result.elapsed_seconds:.6f} s simulated"
        )
        actual = check["actual"]
        print(
            f"traffic: h2d={actual['bytes_h2d']} d2h={actual['bytes_d2h']} "
            f"transfers={actual['transfer_count']}"
        )
        if keep_records:
            for name, bucket in sorted(per_buffer_transfer_totals(runtime).items()):
                print(f"  {name}: h2d={bucket['h2d']} d2h={bucket['d2h']}")
        if check["checked"]:
            verdict = "MATCH" if check["ok"] else "MISMATCH"
            print(f"recorded totals: {verdict}")
            if not check["ok"]:
                print(f"  expected: {check['expected']}")
                print(f"  actual:   {check['actual']}")
    if args.check and not check["checked"]:
        print("--check: trace carries no expected totals", file=sys.stderr)
        return 2
    return 0 if (check["ok"] or not args.check) else 1


def cmd_serve(args) -> int:
    """Run the experiment server; see docs/SERVING.md."""
    from repro.serve.server import ServeConfig, serve_forever

    try:
        cache_dir: Optional[pathlib.Path] = None
        if not args.no_cache:
            cache_dir = pathlib.Path(args.cache_dir or default_cache_dir())
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            executor=args.executor,
            pool_bytes=args.pool_bytes,
            blob_bytes=args.blob_bytes,
            blob_dir=pathlib.Path(args.blob_dir) if args.blob_dir else None,
            queue_limit=args.queue_limit,
            rate=args.rate,
            burst=args.burst,
            cache_dir=cache_dir,
            drain_seconds=args.drain_seconds,
        )
        config.validate()
    except (ConfigurationError, ValueError) as exc:
        print(f"bad serve spec: {exc}", file=sys.stderr)
        return 2
    try:
        return serve_forever(config)
    except OSError as exc:
        print(f"cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2


def cmd_loadgen(args) -> int:
    """Drive a running server with concurrent load; see docs/SERVING.md."""
    from repro.serve.loadgen import run_load

    try:
        report = run_load(
            args.url,
            requests=args.requests,
            clients=args.clients,
            duplicate_fraction=args.duplicates,
            seed=args.seed,
            scale=args.scale,
            timeout=args.timeout,
            verify_identity=args.verify_identity,
        )
    except (OSError, ValueError) as exc:
        print(f"load run failed: {exc}", file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.to_dict(), sort_keys=True, indent=1))
            handle.write("\n")
        print(f"wrote {args.report}")
    ok = report.failed == 0 and report.identity_mismatches == 0
    return 0 if ok else 1


def cmd_demo(_args) -> int:
    import numpy as np

    from repro.cuda.runtime import CudaRuntime
    from repro.workloads.vector_add import uvm_vector_add

    n = 1024 * 1024
    runtime = CudaRuntime()
    out = {}

    def program(cuda):
        out["result"] = yield from uvm_vector_add(
            cuda, n, reuse_with_discard="eager"
        )

    runtime.run(program)
    expected = np.arange(n, dtype=np.float32) + 4.0
    ok = np.allclose(out["result"], expected)
    stats = runtime.stats()
    print(
        f"VectorAdd with discard+reuse: result {'OK' if ok else 'WRONG'}, "
        f"{stats['traffic_gb'] * 1e3:.1f} MB of traffic in "
        f"{stats['elapsed_seconds'] * 1e3:.2f} ms simulated"
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UVM Discard reproduction (IISWC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see 'list')")
    run.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="workload/GPU scale factor (1.0 = paper scale)",
    )
    run.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4"), help="PCIe generation"
    )
    run.add_argument("--csv", help="also write raw rows to this CSV file")
    run.add_argument(
        "--trace",
        metavar="PATH",
        help="trace every point and write one merged Chrome trace "
        "(bypasses the sweep cache)",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="answer from the calibrated analytical model instead of "
        "simulating (see docs/PERFORMANCE.md, 'two-speed mode')",
    )
    run.set_defaults(func=cmd_run)

    reproduce = sub.add_parser(
        "reproduce", help="run every experiment and write a markdown report"
    )
    reproduce.add_argument("--scale", type=float, default=0.0625)
    reproduce.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4")
    )
    reproduce.add_argument(
        "--output", default="reproduction_report.md", help="report path"
    )
    reproduce.set_defaults(func=cmd_reproduce)

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative grid of points with caching and workers",
    )
    sweep.add_argument(
        "--grid", help="JSON grid-spec file (see docs/SWEEPS.md)"
    )
    sweep.add_argument(
        "--workloads",
        help="comma list: "
        + ",".join(MICRO_WORKLOADS)
        + ","
        + ",".join(f"dl:{network}" for network in sorted(DL_BATCH_GRID)),
    )
    sweep.add_argument(
        "--systems",
        default="UVM-opt,UvmDiscard,UvmDiscardLazy",
        help="comma list of evaluated systems",
    )
    sweep.add_argument("--links", default="gen4", help="comma list: gen3,gen4")
    sweep.add_argument(
        "--ratios",
        default="2.0",
        help="comma list of oversubscription ratios (micro workloads)",
    )
    sweep.add_argument(
        "--batches",
        help="comma list of DL batch sizes (default: each network's "
        "paper grid)",
    )
    sweep.add_argument("--scale", type=float, default=0.125)
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for cache misses"
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="always re-simulate"
    )
    sweep.add_argument(
        "--no-snapshot-reuse",
        action="store_true",
        help="run every point cold instead of forking shared setup "
        "prefixes from a snapshot (results are identical either way)",
    )
    sweep.add_argument(
        "--cache-dir",
        help=f"cache root (default .repro_cache/sweeps, or ${CACHE_ENV})",
    )
    sweep.add_argument(
        "--blob-store",
        metavar="DIR",
        help="shared snapshot blob-store directory for multi-job sweeps "
        "(default: $REPRO_BLOB_STORE, else a temporary directory); a "
        "named directory persists builds.log for build-count auditing",
    )
    sweep.add_argument("--csv", help="also write raw rows to this CSV file")
    sweep.add_argument(
        "--fast",
        action="store_true",
        help="answer every point from the calibrated analytical model "
        "instead of simulating; fast results are cached under their "
        "own keys and never alias exact ones",
    )
    sweep.set_defaults(func=cmd_sweep)

    profile = sub.add_parser(
        "profile",
        help="benchmark the simulator and write BENCH_engine.json",
    )
    profile.add_argument(
        "--benchmarks",
        help="comma list: engine_churn,fault_storm,macro_vgg16,"
        "sweep_prefix (default all)",
    )
    profile.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="repeats per benchmark; wall time is the best (default 3)",
    )
    profile.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="results file (default BENCH_engine.json; '' to skip)",
    )
    profile.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    profile.add_argument(
        "--compare",
        metavar="BASELINE",
        help="print per-benchmark wall-time deltas against a baseline "
        "JSON (informational; never fails)",
    )
    profile.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail --check when wall time exceeds this factor (default 2.0)",
    )
    profile.add_argument(
        "--cprofile",
        metavar="BENCH",
        help="run one benchmark under cProfile and print the top 25",
    )
    profile.set_defaults(func=cmd_profile)

    fastmodel = sub.add_parser(
        "fastmodel",
        help="calibrate or differentially validate the analytical "
        "fast model (mode='fast')",
    )
    fastmodel.add_argument(
        "action",
        choices=("calibrate", "validate"),
        help="calibrate: pin the model to simulator runs; validate: "
        "check predictions against fresh simulator runs",
    )
    fastmodel.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments for the action (try 'fastmodel validate -- --help')",
    )
    fastmodel.set_defaults(func=cmd_fastmodel)

    chaos = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection suite with online "
        "invariant validation",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="master chaos seed (default 0)"
    )
    from repro.chaos.catalog import CHAOS_WORKLOADS as _CHAOS_WORKLOADS

    chaos.add_argument(
        "--workloads",
        help="comma list: "
        + ",".join(_CHAOS_WORKLOADS)
        + f" (default all {len(_CHAOS_WORKLOADS)})",
    )
    chaos.add_argument(
        "--cadence",
        type=int,
        default=32,
        help="engine events between online invariant checks (default 32)",
    )
    chaos.add_argument(
        "--strict",
        action="store_true",
        help="abort at the first invariant violation instead of recording",
    )
    chaos.add_argument(
        "--set",
        help="comma list of ChaosConfig key=value overrides "
        "(replaces the default storm preset)",
    )
    chaos.add_argument(
        "--counters",
        action="store_true",
        help="also print each workload's nonzero chaos counters",
    )
    chaos.add_argument(
        "--trace",
        metavar="PATH",
        help="also trace the chaos runs and write one merged Chrome trace",
    )
    chaos.set_defaults(func=cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="run one experiment point with the simulated-time tracer "
        "and export a Perfetto-loadable Chrome trace",
    )
    trace.add_argument(
        "experiment",
        nargs="?",
        help="experiment name (see 'list'; fig5-<net> aliases dl:<net>)",
    )
    trace.add_argument(
        "--system",
        default=System.UVM_DISCARD.value,
        help="system under trace (default UvmDiscard)",
    )
    trace.add_argument(
        "--ratio",
        type=float,
        default=2.0,
        help="oversubscription ratio for micro workloads (default 2.0)",
    )
    trace.add_argument(
        "--batch",
        type=int,
        help="DL batch size (default: the network grid's largest, i.e. "
        "most oversubscribed, batch)",
    )
    trace.add_argument("--scale", type=float, default=0.125)
    trace.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4")
    )
    trace.add_argument(
        "--out", default="trace.json", help="Chrome trace output path"
    )
    trace.add_argument(
        "--metrics-csv",
        metavar="PATH",
        help="also dump the sampled metrics time series as CSV",
    )
    trace.add_argument(
        "--cadence",
        type=int,
        default=256,
        help="engine events between metric samples; 0 disables (default 256)",
    )
    trace.add_argument(
        "--fork",
        action="store_true",
        help="run the measured body on a snapshot fork of the setup "
        "prefix (the trace must be identical to a cold run)",
    )
    trace.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing trace file instead of running",
    )
    trace.set_defaults(func=cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="post-run byte attribution: waste decomposition, missed "
        "discard opportunities, and run-to-run diffs",
    )
    explain.add_argument(
        "experiment",
        nargs="?",
        help="experiment name (see 'list'; fig5-<net> aliases dl:<net>)",
    )
    explain.add_argument(
        "--system",
        default=System.UVM_OPT.value,
        help="system to explain (default UVM-opt, the discard-free "
        "baseline with the most to say)",
    )
    explain.add_argument(
        "--ratio",
        type=float,
        default=2.0,
        help="oversubscription ratio for micro workloads (default 2.0)",
    )
    explain.add_argument(
        "--batch",
        type=int,
        help="DL batch size (default: the network grid's largest batch)",
    )
    explain.add_argument("--scale", type=float, default=0.125)
    explain.add_argument(
        "--link", default="gen4", choices=("gen3", "gen4")
    )
    explain.add_argument(
        "--check",
        action="store_true",
        help="verify inferred discards against the hand-placed ones "
        "(byte-exact savings); exits non-zero on mismatch",
    )
    explain.add_argument(
        "--diff",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        help="diff two saved explain reports (JSON files from --out)",
    )
    explain.add_argument(
        "--out", metavar="PATH", help="also save the JSON report to PATH"
    )
    explain.add_argument(
        "--fork",
        action="store_true",
        help="run the measured body on a snapshot fork of the setup prefix",
    )
    explain.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    explain.set_defaults(func=cmd_explain)

    replay = sub.add_parser(
        "replay",
        help="replay an access trace (a 'trace' export, or replay "
        "JSON/CSV — see docs/WORKLOADS.md) as a workload",
    )
    replay.add_argument(
        "trace",
        help="trace file: a Chrome export from 'repro trace', or a "
        "replay-schema JSON/CSV document",
    )
    replay.add_argument(
        "--convert",
        metavar="OUT",
        help="convert to a standalone replay trace (.csv for the CSV "
        "form, JSON otherwise) instead of running",
    )
    replay.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the replayed migration totals match "
        "the totals recorded in the trace",
    )
    replay.add_argument(
        "--per-buffer",
        action="store_true",
        help="keep per-transfer records and print per-buffer H2D/D2H totals",
    )
    replay.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    replay.set_defaults(func=cmd_replay)

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service experiment server "
        "(JSON-over-HTTP, warm snapshot pools, result-cache dedup)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8731,
        help="TCP port (0 = ephemeral; the chosen port is printed)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="simulation workers in the executor (default 2)",
    )
    serve.add_argument(
        "--executor",
        default="process",
        choices=("process", "thread"),
        help="process executor for true parallelism (default), or the "
        "thread executor (single shared snapshot pool; tests/CI)",
    )
    serve.add_argument(
        "--pool-bytes",
        type=int,
        default=256 * 1024 * 1024,
        help="warm snapshot-pool byte budget per worker "
        "(default 256 MiB; 0 disables pooling)",
    )
    serve.add_argument(
        "--blob-bytes",
        type=int,
        default=512 * 1024 * 1024,
        help="host-shared blob-store byte budget for serialized prefix "
        "snapshots (default 512 MiB; 0 disables cross-worker sharing)",
    )
    serve.add_argument(
        "--blob-dir",
        help="blob-store directory shared by the workers (default: a "
        "per-server temporary directory, removed at shutdown)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="max outstanding (queued + running) points before /run "
        "answers 429 (default 256)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-client token-bucket refill rate in requests/second "
        "(default 0 = unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=20.0,
        help="per-client token-bucket burst capacity (default 20)",
    )
    serve.add_argument(
        "--cache-dir",
        help=f"result-cache root (default .repro_cache/sweeps, or ${CACHE_ENV})",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (in-flight coalescing stays on)",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="graceful-shutdown budget for in-flight requests (default 10)",
    )
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay concurrent requests against a running server and "
        "report latency/dedup/pool statistics",
    )
    loadgen.add_argument("--url", required=True, help="server base URL")
    loadgen.add_argument(
        "--requests", type=int, default=100, help="total requests (default 100)"
    )
    loadgen.add_argument(
        "--clients", type=int, default=8, help="concurrent clients (default 8)"
    )
    loadgen.add_argument(
        "--duplicates",
        type=float,
        default=0.5,
        help="fraction of requests drawn as duplicates (default 0.5)",
    )
    loadgen.add_argument(
        "--scale", type=float, default=0.03125, help="workload scale factor"
    )
    loadgen.add_argument(
        "--seed", type=int, default=0, help="schedule seed (default 0)"
    )
    loadgen.add_argument(
        "--timeout", type=float, default=120.0, help="per-request timeout"
    )
    loadgen.add_argument(
        "--verify-identity",
        type=int,
        default=0,
        help="re-simulate this many served points locally and compare "
        "byte-for-byte (slow; default 0)",
    )
    loadgen.add_argument(
        "--report", metavar="PATH", help="write the full JSON report here"
    )
    loadgen.set_defaults(func=cmd_loadgen)

    sub.add_parser("demo", help="run the VectorAdd demo").set_defaults(
        func=cmd_demo
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
