"""GPU memory oversubscription setup (§7.1).

"For the micro-benchmarks and GPU database application, we fix the input
sizes of the applications and run an idle GPU program that occupies
specific amounts of GPU memory to create oversubscription ratios of
<100%, 200%, 300% and 400%.  The oversubscription ratio is the ratio of
the GPU memory consumption of the application to the available GPU
memory."

The occupant is modelled as a permanent reservation of GPU frames.
"""

from __future__ import annotations

from repro.cuda.runtime import CudaRuntime
from repro.errors import ConfigurationError
from repro.units import BIG_PAGE, align_down


def occupant_bytes(gpu_memory: int, app_bytes: int, ratio: float) -> int:
    """Bytes the idle occupant must pin for the requested ratio.

    ``ratio <= 1`` means "fits" (the paper's "<100%" column): no occupant.
    Otherwise available memory is set to ``app_bytes / ratio``.
    """
    if ratio <= 0:
        raise ConfigurationError(f"oversubscription ratio must be positive: {ratio}")
    if app_bytes <= 0:
        raise ConfigurationError(f"application footprint must be positive: {app_bytes}")
    if ratio <= 1.0:
        return 0
    available = int(app_bytes / ratio)
    occupant = gpu_memory - available
    if occupant <= 0:
        raise ConfigurationError(
            f"cannot reach {ratio:.0%} oversubscription: the application "
            f"({app_bytes} B) already exceeds GPU memory ({gpu_memory} B) "
            "by more than the requested ratio"
        )
    return align_down(occupant, BIG_PAGE)


def apply_oversubscription(
    runtime: CudaRuntime, app_bytes: int, ratio: float
) -> int:
    """Reserve the occupant's memory on the runtime's GPU; returns bytes."""
    nbytes = occupant_bytes(runtime.gpu.memory_bytes, app_bytes, ratio)
    if nbytes:
        runtime.driver.reserve_gpu_memory(runtime.gpu.name, nbytes)
    return nbytes
