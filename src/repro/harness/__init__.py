"""Experiment harness.

Shared machinery for the paper's evaluation methodology (§7.1): the
idle-occupant oversubscription setup, the three compared systems
(UVM-opt / UvmDiscard / UvmDiscardLazy), result records, the text
tables the benchmarks print, and the declarative sweep engine
(:mod:`repro.harness.sweep`) that batches points across a worker pool
with on-disk result caching.
"""

from repro.harness.oversubscribe import apply_oversubscription, occupant_bytes
from repro.harness.results import ExperimentResult, ResultTable
from repro.harness.sweep import (
    ResultCache,
    SweepGrid,
    SweepPoint,
    SweepReport,
    execute_point,
    run_sweep,
)
from repro.harness.systems import DiscardPolicy, System
from repro.harness.validation import (
    check_driver_invariants,
    check_transfer_conservation,
)

__all__ = [
    "apply_oversubscription",
    "occupant_bytes",
    "ExperimentResult",
    "ResultTable",
    "ResultCache",
    "SweepGrid",
    "SweepPoint",
    "SweepReport",
    "execute_point",
    "run_sweep",
    "System",
    "DiscardPolicy",
    "check_driver_invariants",
    "check_transfer_conservation",
]
