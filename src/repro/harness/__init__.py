"""Experiment harness.

Shared machinery for the paper's evaluation methodology (§7.1): the
idle-occupant oversubscription setup, the three compared systems
(UVM-opt / UvmDiscard / UvmDiscardLazy), result records and the text
tables the benchmarks print.
"""

from repro.harness.oversubscribe import apply_oversubscription, occupant_bytes
from repro.harness.results import ExperimentResult, ResultTable
from repro.harness.systems import DiscardPolicy, System
from repro.harness.validation import check_driver_invariants

__all__ = [
    "apply_oversubscription",
    "occupant_bytes",
    "ExperimentResult",
    "ResultTable",
    "System",
    "DiscardPolicy",
    "check_driver_invariants",
]
