"""Performance benchmarks for the simulation kernel itself.

The rest of ``repro.harness`` measures the *simulated* machine; this
module measures the *simulator* — how many host-side seconds one
simulated experiment costs.  Five benchmarks cover the layers the fast
path touches:

- ``engine_churn`` — pure :mod:`repro.engine` event traffic (timeouts,
  resource handoffs, store put/get) with no driver on top.  Tracks the
  slotted-event / timeout-recycling / synchronous-continuation work.
- ``fault_storm`` — a 2x-oversubscribed :class:`UvmDriver` serviced by
  round-robin fault batches, so every batch migrates and evicts.
  Tracks the coalesced-transfer and lazy-lock driver paths.
- ``macro_vgg16`` — the paper's Figure 5 VGG-16 point (batch 125,
  ``UvmDiscard``) through :func:`repro.harness.sweep.execute_point`,
  cold (no result cache).  The end-to-end number CI trends.
- ``snapshot_fork`` — the snapshot transport in isolation: serialize
  one warm VGG-16 prefix once, then fork it repeatedly via the blob
  (``pickle.loads``) and via ``copy.deepcopy``; ``fork_speedup``
  records blob-over-deepcopy and is gated >= 2x in perf-smoke.
- ``sweep_prefix`` — a 12-point DL grid sharing one setup prefix, run
  grouped (snapshot/fork + steady-state fast-forward) and cold; the
  gated wall time is the grouped run, with ``cold_wall_seconds`` and
  ``speedup`` recording the win over per-point execution.

``python -m repro profile`` runs the suite and writes
``BENCH_engine.json``; ``--check`` compares against a committed
baseline and fails on a regression (see docs/PERFORMANCE.md).

Wall-clock results are machine-dependent; the deterministic companion
metrics (simulated events, traffic bytes) must be bit-identical across
runs and act as a canary for accidental behaviour changes.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, Iterable, List, Optional

#: Bump when the JSON layout of BENCH_engine.json changes.
BENCH_SCHEMA = 1

#: Default regression gate: fail when a benchmark's wall time exceeds
#: ``factor`` times the committed baseline.  Generous because CI runners
#: are noisy; real regressions from lost fast paths are 2-10x.
DEFAULT_MAX_REGRESSION = 2.0


# ----------------------------------------------------------------------
# benchmark bodies — each returns its metrics dict (without wall time)
# ----------------------------------------------------------------------


def _bench_engine_churn() -> Dict[str, float]:
    """Pure engine event churn: timeouts + resource + store traffic."""
    from repro.engine.core import Environment
    from repro.engine.resources import Resource, Store

    env = Environment()
    resource = Resource(env, capacity=4)
    store = Store(env)
    workers = 50
    rounds = 400

    def worker(wid: int):
        for _ in range(rounds):
            yield env.timeout(1e-6)
            request = resource.try_acquire()
            if request is None:
                request = resource.request()
                yield request
            yield env.timeout(1e-7)
            resource.release(request)
            store.put(wid)
            yield store.get()

    for wid in range(workers):
        env.process(worker(wid))
    env.run()
    return {"sim_events": float(env._sequence), "sim_now": env.now}


def _bench_fault_storm() -> Dict[str, float]:
    """Driver fault/evict churn at 2x oversubscription, no workload.

    Runs with a deliberately small event-log ring buffer so the
    ``log_dropped`` companion metric exercises (and pins) the
    overflow-accounting path under load.
    """
    from repro.driver.config import UvmDriverConfig
    from repro.driver.driver import UvmDriver
    from repro.driver.va_block import VaBlock
    from repro.engine.core import Environment
    from repro.interconnect import pcie_gen4
    from repro.units import BIG_PAGE

    env = Environment()
    driver = UvmDriver(
        env,
        pcie_gen4(),
        config=UvmDriverConfig(event_log_enabled=True, event_log_capacity=200),
    )
    gpu_blocks = 64
    total_blocks = gpu_blocks * 2
    driver.register_gpu("gpu0", gpu_blocks * BIG_PAGE)
    blocks = [VaBlock(i, BIG_PAGE) for i in range(total_blocks)]
    driver.register_blocks(blocks)
    batch = 16
    sweeps = 6

    def storm():
        for sweep in range(sweeps):
            for start in range(0, total_blocks, batch):
                yield from driver.handle_gpu_faults(
                    "gpu0", blocks[start : start + batch]
                )

    env.process(storm())
    env.run()
    driver.finalize()
    return {
        "sim_events": float(env._sequence),
        "traffic_bytes": float(driver.traffic.total_bytes),
        "fault_batches": float(
            driver.counters[driver.counters.GPU_FAULT_BATCHES]
        ),
        "log_dropped": float(driver.log.dropped),
    }


def _bench_macro_vgg16() -> Dict[str, float]:
    """Figure 5 VGG-16 point (batch 125, UvmDiscard), cold cache."""
    from repro.harness.sweep import SweepPoint, execute_point

    point = SweepPoint(
        workload="dl:vgg16",
        system="UvmDiscard",
        batch_size=125,
        scale=0.125,
    )
    result = execute_point(point)
    assert result is not None
    return {
        "traffic_gb": result.traffic_gb,
        "sim_elapsed_seconds": result.elapsed_seconds,
    }


def _bench_snapshot_fork() -> Dict[str, float]:
    """The snapshot transport in isolation: blob fork vs deepcopy fork.

    Builds one warm VGG-16 setup prefix, serializes it exactly once
    (:class:`~repro.engine.snapshot.EngineSnapshot`), then forks it
    repeatedly both ways.  ``wall_seconds`` — the gated metric — is the
    blob-fork loop; ``deepcopy_wall_seconds`` times the transport the
    blob replaced and ``fork_speedup`` is the ratio perf-smoke gates
    at >= 2x.  ``serialize_wall_seconds`` (paid once per prefix) and
    ``prefix_build_wall_seconds`` (the simulation cost a shared blob
    amortizes away per worker) size the build amortization.
    """
    import copy

    from repro.engine.snapshot import EngineSnapshot
    from repro.harness.runner import run_uvm_prefix
    from repro.harness.sweep import (
        SweepPoint,
        _driver_config,
        _gpu_spec,
        _link,
        _point_plan,
    )

    point = SweepPoint(
        workload="dl:vgg16",
        system="UvmDiscard",
        batch_size=8,
        scale=0.03125,
        batches=12,
    )
    plan = _point_plan(point)
    start = time.perf_counter()
    runtime = run_uvm_prefix(
        plan.setup, _gpu_spec(point), _link(point),
        driver_config=_driver_config(point),
    )
    prefix_wall = time.perf_counter() - start
    start = time.perf_counter()
    snapshot = EngineSnapshot(runtime)
    serialize_wall = time.perf_counter() - start
    forks = 40
    start = time.perf_counter()
    for _ in range(forks):
        copy.deepcopy(runtime)
    deepcopy_wall = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(forks):
        snapshot.fork()
    blob_wall = time.perf_counter() - start
    return {
        # Overrides the harness's whole-body timing: the gated wall
        # time is the blob-fork loop, not the comparison scaffolding.
        "wall_seconds": blob_wall,
        "deepcopy_wall_seconds": deepcopy_wall,
        "fork_speedup": deepcopy_wall / blob_wall if blob_wall > 0 else 0.0,
        "serialize_wall_seconds": serialize_wall,
        "prefix_build_wall_seconds": prefix_wall,
        "blob_bytes": float(snapshot.payload_nbytes()),
        "forks": float(forks),
    }


def _sweep_prefix_points() -> List["object"]:
    """The 12-point grid behind ``sweep_prefix``: one shared setup
    prefix (VGG-16, batch 8, 20 mini-batches) fanned across 3 UVM
    systems x 4 setup-inert driver variants."""
    from repro.harness.sweep import SweepPoint

    systems = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")
    variants = (
        {},
        {"eviction_policy": "fifo"},
        {"coalesce_transfers": False},
        {"discarded_queue_enabled": False},
    )
    return [
        SweepPoint(
            workload="dl:vgg16",
            system=system,
            batch_size=8,
            scale=0.03125,
            batches=20,
            driver={"steady_state_fastforward": True, **variant},
        )
        for system in systems
        for variant in variants
    ]


def _bench_sweep_prefix() -> Dict[str, float]:
    """Shared-prefix forking + steady-state fast-forward vs cold runs.

    Times a 12-point DL grid twice: cold (per-point ``execute_point``
    with fast-forward stripped) and grouped (``execute_group``: one
    setup prefix, snapshot, 12 forks, fast-forwarded training loops).
    ``wall_seconds`` — the gated metric — is the *grouped* time;
    ``cold_wall_seconds`` and the derived ``speedup`` give CI the
    ISSUE-level ">= 3x faster than per-point execution" check.  The
    deterministic companions sum simulated traffic and elapsed time
    over the grouped results.
    """
    import dataclasses

    from repro.harness.sweep import SweepPoint, execute_group, execute_point

    points = _sweep_prefix_points()
    cold_points = [
        dataclasses.replace(
            p,
            driver=tuple(
                (k, v) for k, v in p.driver if k != "steady_state_fastforward"
            ),
        )
        for p in points
    ]
    start = time.perf_counter()
    cold = [execute_point(p) for p in cold_points]
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    grouped = execute_group(points)
    forked_wall = time.perf_counter() - start
    assert all(r is not None for r in grouped)
    # Integer observables must agree between the cold and grouped runs;
    # a mismatch means the optimization changed simulation results.
    for c, g in zip(cold, grouped):
        assert c.counters == g.counters, "fork/fast-forward diverged"
    return {
        # Overrides the harness's whole-body timing (the body times two
        # variants internally): the gated wall time is the grouped run.
        "wall_seconds": forked_wall,
        "cold_wall_seconds": cold_wall,
        "speedup": cold_wall / forked_wall if forked_wall > 0 else 0.0,
        "traffic_gb": sum(r.traffic_gb for r in grouped),
        "sim_elapsed_seconds": sum(r.elapsed_seconds for r in grouped),
    }


BENCHMARKS: Dict[str, Callable[[], Dict[str, float]]] = {
    "engine_churn": _bench_engine_churn,
    "fault_storm": _bench_fault_storm,
    "macro_vgg16": _bench_macro_vgg16,
    "snapshot_fork": _bench_snapshot_fork,
    "sweep_prefix": _bench_sweep_prefix,
}

#: Metrics that legitimately differ run-to-run (host wall clock and its
#: derivatives, plus pickle sizes — container hash order can perturb
#: the blob byte-for-byte).  Everything else in a benchmark entry is
#: deterministic simulation output and must be bit-identical across
#: runs/machines.
NONDETERMINISTIC_KEYS = (
    "wall_seconds",
    "cold_wall_seconds",
    "speedup",
    "deepcopy_wall_seconds",
    "fork_speedup",
    "serialize_wall_seconds",
    "prefix_build_wall_seconds",
    "blob_bytes",
)


# ----------------------------------------------------------------------
# runner + JSON + regression gate
# ----------------------------------------------------------------------


def run_benchmarks(
    names: Optional[Iterable[str]] = None,
    repeat: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the selected benchmarks; wall time is best-of-``repeat``.

    Returns ``{name: {"wall_seconds": ..., <metrics>...}}``.  The
    deterministic metrics come from the fastest repeat (they are
    identical across repeats by construction).  A body that times
    sub-phases itself (``sweep_prefix``) may return its own
    ``wall_seconds``, which overrides the harness's whole-body timing.
    """
    selected = list(names) if names is not None else list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown}; have {sorted(BENCHMARKS)}"
        )
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1: {repeat}")
    results: Dict[str, Dict[str, float]] = {}
    for name in selected:
        body = BENCHMARKS[name]
        best_wall: Optional[float] = None
        metrics: Dict[str, float] = {}
        for _ in range(repeat):
            start = time.perf_counter()
            run_metrics = body()
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
                metrics = run_metrics
        entry = {"wall_seconds": best_wall}
        entry.update(metrics)
        results[name] = entry
        if progress is not None:
            note = ""
            if metrics.get("log_dropped"):
                note = f", log_dropped={metrics['log_dropped']:.0f}"
            progress(f"{name}: {best_wall:.4f} s (best of {repeat}{note})")
    return results


def results_to_json(
    results: Dict[str, Dict[str, float]],
    repeat: int,
    reference: Optional[Dict[str, float]] = None,
) -> str:
    """Render results as the BENCH_engine.json payload."""
    payload = {
        "schema": BENCH_SCHEMA,
        "suite": "repro-simulation-kernel",
        "repeat": repeat,
        "python": platform.python_version(),
        "benchmarks": results,
    }
    if reference:
        payload["reference"] = reference
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_bench_json(text: str) -> Dict[str, Dict[str, float]]:
    """Extract the per-benchmark results from a BENCH_engine.json blob."""
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported bench schema {schema!r} (want {BENCH_SCHEMA})"
        )
    return payload["benchmarks"]


def check_regressions(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    factor: float = DEFAULT_MAX_REGRESSION,
) -> List[str]:
    """Compare wall times against a baseline; return failure messages.

    A benchmark fails when its wall time exceeds ``factor`` times the
    baseline's.  Benchmarks present on only one side are skipped — the
    gate tracks regressions, not suite membership.
    """
    failures: List[str] = []
    for name, entry in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            continue
        wall = entry["wall_seconds"]
        limit = base["wall_seconds"] * factor
        if wall > limit:
            failures.append(
                f"{name}: {wall:.4f} s exceeds {factor:g}x baseline "
                f"({base['wall_seconds']:.4f} s -> limit {limit:.4f} s)"
            )
    return failures


def compare_results(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
) -> str:
    """Render per-benchmark wall-time deltas against a baseline.

    One line per benchmark: baseline and current wall seconds, the
    absolute delta, the percent change (negative = faster) and the
    speedup factor.  Benchmarks present on only one side are listed as
    such.  Informational only — gating lives in
    :func:`check_regressions`.
    """
    names = sorted(set(current) | set(baseline))
    width = max((len(n) for n in names), default=4)
    lines = [
        f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}"
        f"  {'delta':>10}  {'change':>8}  {'speedup':>7}"
    ]
    for name in names:
        entry, base = current.get(name), baseline.get(name)
        if entry is None or base is None:
            side = "baseline" if entry is None else "current"
            lines.append(f"{name:<{width}}  (only in {side})")
            continue
        wall, ref = entry["wall_seconds"], base["wall_seconds"]
        delta = wall - ref
        percent = (delta / ref * 100.0) if ref else float("inf")
        speedup = (ref / wall) if wall else float("inf")
        lines.append(
            f"{name:<{width}}  {ref:>9.4f}s  {wall:>9.4f}s"
            f"  {delta:>+9.4f}s  {percent:>+7.1f}%  {speedup:>6.2f}x"
        )
    return "\n".join(lines)
