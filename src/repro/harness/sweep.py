"""Declarative experiment sweeps: grids, caching, parallel execution.

Every table and figure in the paper is a grid of independent simulation
points — (workload x system x link x oversubscription ratio / batch size
x driver config).  This module is the one engine that runs such grids:

- :class:`SweepPoint` names one cell declaratively (plain strings and
  numbers, picklable and JSON-able),
- :class:`SweepGrid` expands a compact grid spec into points,
- :func:`execute_point` runs one point to an
  :class:`~repro.harness.results.ExperimentResult` (or ``None`` when the
  configuration does not fit, e.g. No-UVM under oversubscription),
- :class:`ResultCache` memoizes finished points on disk, keyed by a
  stable content hash of the *full* point configuration, so re-running a
  sweep only simulates points whose inputs changed,
- :func:`run_sweep` drives a batch of points through a
  ``multiprocessing`` worker pool (each point is a CPU-bound
  deterministic simulation, so processes — not threads — scale it).

The CLI's ``sweep`` subcommand, the ``run``/``reproduce`` commands and
the ``benchmarks/`` figure regenerators all go through this API.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label
from repro.harness.systems import System

#: Bump when the cache entry schema or simulator semantics change in a
#: way that must invalidate previously stored results.
CACHE_VERSION = 2

#: Environment variable overriding the default on-disk cache location.
CACHE_ENV = "REPRO_SWEEP_CACHE"

#: Environment variable naming a shared :class:`~repro.engine.snapshot.
#: BlobStore` directory for multi-process sweeps.  When set, the store
#: (and its ``builds.log`` build counter) survives the sweep for
#: inspection; otherwise a per-sweep temporary directory is used and
#: cleaned up.
BLOB_STORE_ENV = "REPRO_BLOB_STORE"

#: Byte budget for each sweep worker's in-process snapshot pool (the
#: zero-deserialization layer above the shared blob store).
SWEEP_POOL_BYTES = 256 * 1024 * 1024

#: The paper's per-network batch-size grids (Figures 5/6/7, §7.5).
DL_BATCH_GRID: Dict[str, Tuple[int, ...]] = {
    "vgg16": (50, 75, 100, 125, 150),
    "darknet19": (86, 171, 260, 360),
    "resnet53": (28, 56, 100, 150),
    "rnn": (75, 150, 225, 300),
}

#: The paper's own micro-benchmarks (§7.2-7.4) — the calibrated set the
#: analytical fast model ships curves for.
PAPER_MICRO_WORKLOADS = ("fir", "radix", "hashjoin")

#: UVMBench-style workload categories (arXiv 2007.09822): irregular
#: graph traversal, random-access ML, HPC stencil and tree reduction.
#: Sweepable like the paper micros but NOT pre-calibrated — fast-model
#: queries refuse with :class:`~repro.fastmodel.UncalibratedPointError`
#: until a calibration covers them.
UVMBENCH_WORKLOADS = ("bfs", "kmeans", "knn", "stencil", "reduction")

#: Every ratio-configured (non-DL) workload the sweep engine accepts.
MICRO_WORKLOADS = PAPER_MICRO_WORKLOADS + UVMBENCH_WORKLOADS

LINK_NAMES = ("gen3", "gen4")
GPU_NAMES = ("rtx3080ti", "gtx1070", "a100")

_SYSTEM_VALUES = {s.value for s in System}
_SYSTEM_BY_NAME = {s.name: s.value for s in System}


def default_cache_dir() -> Path:
    """Where sweep results are cached (override: ``REPRO_SWEEP_CACHE``)."""
    return Path(os.environ.get(CACHE_ENV, ".repro_cache/sweeps"))


def _normalize_system(system: Union[System, str]) -> str:
    if isinstance(system, System):
        return system.value
    if system in _SYSTEM_VALUES:
        return system
    if system in _SYSTEM_BY_NAME:
        return _SYSTEM_BY_NAME[system]
    raise ConfigurationError(
        f"unknown system {system!r}; expected one of {sorted(_SYSTEM_VALUES)}"
    )


def _normalize_driver(
    driver: Union[Mapping[str, object], Sequence, None]
) -> Tuple[Tuple[str, object], ...]:
    if not driver:
        return ()
    items = driver.items() if isinstance(driver, Mapping) else driver
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class SweepPoint:
    """One cell of an experiment grid, as plain picklable data.

    ``workload`` is a micro-benchmark name (``fir``/``radix``/
    ``hashjoin``, configured by ``ratio``) or ``dl:<network>``
    (configured by ``batch_size``).  ``driver`` holds
    :class:`~repro.driver.config.UvmDriverConfig` field overrides.
    """

    workload: str
    system: str
    link: str = "gen4"
    ratio: float = 2.0
    batch_size: Optional[int] = None
    scale: float = 0.125
    gpu: str = "rtx3080ti"
    driver: Tuple[Tuple[str, object], ...] = ()
    #: DL-only override of the trainer's mini-batch count (``None`` =
    #: the :class:`~repro.workloads.dl.TrainerConfig` default).  Omitted
    #: from serialized dicts (and hence cache keys) when unset, so the
    #: field's introduction invalidates no existing cache entries.
    batches: Optional[int] = None
    #: Chaos-injection overrides (:class:`repro.chaos.ChaosConfig`
    #: fields), normalized like ``driver``.  Omitted from serialized
    #: dicts (and cache keys) when empty, so the field's introduction
    #: invalidates no existing cache entries.  Chaos applies to the
    #: measured body only — setup prefixes stay chaos-free — so chaos
    #: points share prefix snapshots with fault-free ones.
    chaos: Tuple[Tuple[str, object], ...] = ()
    #: ``"exact"`` simulates the point; ``"fast"`` answers it from the
    #: calibrated analytical model (:mod:`repro.fastmodel`) without
    #: simulating.  Serialized (and hashed into the cache key) only
    #: when not ``"exact"``, so exact keys are unchanged and fast
    #: results live in a disjoint cache namespace — the two can never
    #: alias each other in either direction.
    mode: str = "exact"

    def __post_init__(self) -> None:
        object.__setattr__(self, "system", _normalize_system(self.system))
        object.__setattr__(self, "driver", _normalize_driver(self.driver))
        object.__setattr__(self, "chaos", _normalize_driver(self.chaos))
        if self.mode not in ("exact", "fast"):
            raise ConfigurationError(
                f"mode must be 'exact' or 'fast', got {self.mode!r}"
            )
        if self.mode == "fast" and self.chaos:
            raise ConfigurationError(
                "chaos points cannot use the analytical fast model; "
                "fault injection needs the event-level simulator"
            )
        if self.chaos:
            if System(self.system) is System.NO_UVM:
                raise ConfigurationError(
                    "chaos injection requires a UVM system; No-UVM has no "
                    "fault-handling driver to perturb"
                )
            from repro.chaos.schedule import ChaosConfig

            try:
                ChaosConfig.from_items(self.chaos)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(f"bad chaos override: {exc}") from None
        if self.is_dl:
            network = self.workload.split(":", 1)[1]
            if network not in DL_BATCH_GRID:
                raise ConfigurationError(
                    f"unknown network {network!r}; expected one of "
                    f"{sorted(DL_BATCH_GRID)}"
                )
            if self.batch_size is None or self.batch_size < 1:
                raise ConfigurationError(
                    f"DL point {self.workload!r} needs a positive batch_size"
                )
            if self.batches is not None and self.batches < 2:
                raise ConfigurationError(
                    "batches must leave at least one measured batch after "
                    f"warm-up (>= 2), got {self.batches}"
                )
        elif self.workload in MICRO_WORKLOADS:
            if self.batch_size is not None:
                raise ConfigurationError(
                    f"micro workload {self.workload!r} takes a ratio, "
                    "not a batch_size"
                )
            if self.batches is not None:
                raise ConfigurationError(
                    f"micro workload {self.workload!r} has no batches knob"
                )
            if self.ratio <= 0:
                raise ConfigurationError(f"ratio must be positive: {self.ratio}")
        else:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; expected one of "
                f"{MICRO_WORKLOADS} or dl:<{'|'.join(sorted(DL_BATCH_GRID))}>"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive: {self.scale}")
        if self.link not in LINK_NAMES:
            raise ConfigurationError(
                f"unknown link {self.link!r}; expected one of {LINK_NAMES}"
            )
        if self.gpu not in GPU_NAMES:
            raise ConfigurationError(
                f"unknown gpu {self.gpu!r}; expected one of {GPU_NAMES}"
            )

    @property
    def is_dl(self) -> bool:
        return self.workload.startswith("dl:")

    @property
    def config_label(self) -> str:
        """The paper-style column label of this point."""
        if self.is_dl:
            return f"bs={self.batch_size}"
        return ratio_label(self.ratio)

    @property
    def label(self) -> str:
        """Human-readable one-line identity, for progress output."""
        return (
            f"{self.workload}/{self.system}/{self.link}/"
            f"{self.config_label}@x{self.scale:g}"
            f"{'+chaos' if self.chaos else ''}"
            f"{'+fast' if self.mode == 'fast' else ''}"
        )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "link": self.link,
            "ratio": self.ratio,
            "batch_size": self.batch_size,
            "scale": self.scale,
            "gpu": self.gpu,
            "driver": dict(self.driver),
        }
        if self.batches is not None:
            data["batches"] = self.batches
        if self.chaos:
            data["chaos"] = dict(self.chaos)
        if self.mode != "exact":
            data["mode"] = self.mode
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepPoint":
        unknown = set(data) - {
            "workload", "system", "link", "ratio", "batch_size",
            "scale", "gpu", "driver", "batches", "chaos", "mode",
        }
        if unknown:
            raise ConfigurationError(f"unknown sweep-point keys: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]

    def cache_key(self) -> str:
        """Stable content hash of the full point configuration."""
        canonical = json.dumps(
            {"version": CACHE_VERSION, **self.to_dict()}, sort_keys=True
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class SweepGrid:
    """A declarative grid that expands to the cartesian set of points.

    ``batch_sizes=None`` means each DL workload uses its paper grid
    (:data:`DL_BATCH_GRID`); micro workloads always use ``ratios``.
    """

    workloads: Sequence[str]
    systems: Sequence[str] = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")
    links: Sequence[str] = ("gen4",)
    ratios: Sequence[float] = (2.0,)
    batch_sizes: Optional[Sequence[int]] = None
    scale: float = 0.125
    gpus: Sequence[str] = ("rtx3080ti",)
    driver: Mapping[str, object] = field(default_factory=dict)

    def expand(self) -> List[SweepPoint]:
        """All points, ordered workload-major then link, system, config."""
        if not self.workloads:
            raise ConfigurationError("a sweep grid needs at least one workload")
        for workload in self.workloads:
            if not isinstance(workload, str):
                raise ConfigurationError(
                    f"workloads must be strings, got {workload!r}"
                )
        points: List[SweepPoint] = []
        for workload in self.workloads:
            for gpu in self.gpus:
                for link in self.links:
                    for system in self.systems:
                        for point in self._configs(workload, gpu, link, system):
                            points.append(point)
        return points

    def _configs(
        self, workload: str, gpu: str, link: str, system: str
    ) -> Iterable[SweepPoint]:
        common = dict(
            workload=workload, system=system, link=link,
            scale=self.scale, gpu=gpu, driver=dict(self.driver),
        )
        if workload.startswith("dl:"):
            batches = self.batch_sizes
            if batches is None:
                batches = DL_BATCH_GRID[workload.split(":", 1)[1]]
            for batch in batches:
                yield SweepPoint(batch_size=batch, **common)
        else:
            for ratio in self.ratios:
                yield SweepPoint(ratio=ratio, **common)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepGrid":
        unknown = set(data) - {
            "workloads", "systems", "links", "ratios", "batch_sizes",
            "scale", "gpus", "driver",
        }
        if unknown:
            raise ConfigurationError(f"unknown sweep-grid keys: {sorted(unknown)}")
        if "workloads" not in data:
            raise ConfigurationError("grid spec must name 'workloads'")
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "SweepGrid":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid grid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("grid spec must be a JSON object")
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# point execution
# ----------------------------------------------------------------------


def _gpu_spec(point: SweepPoint):
    from repro.cuda.device import a100_40gb, gtx_1070, rtx_3080ti

    factory = {"rtx3080ti": rtx_3080ti, "gtx1070": gtx_1070, "a100": a100_40gb}
    return factory[point.gpu]().scaled(point.scale)


def _link(point: SweepPoint):
    from repro.interconnect import pcie_gen3, pcie_gen4

    return {"gen3": pcie_gen3, "gen4": pcie_gen4}[point.link]()


def _driver_config(point: SweepPoint):
    if not point.driver:
        return None
    from repro.driver.config import UvmDriverConfig

    try:
        return UvmDriverConfig(**dict(point.driver))
    except TypeError as exc:
        raise ConfigurationError(f"bad driver override: {exc}") from None


def _dl_trainer(point: SweepPoint, system: System):
    from repro.workloads.dl import DarknetTrainer, TrainerConfig
    from repro.workloads.dl import darknet19, resnet53, rnn_shakespeare, vgg16

    factory = {
        "vgg16": vgg16, "darknet19": darknet19,
        "resnet53": resnet53, "rnn": rnn_shakespeare,
    }[point.workload.split(":", 1)[1]]
    if point.batches is None:
        trainer_config = TrainerConfig(batch_size=point.batch_size)
    else:
        trainer_config = TrainerConfig(
            batch_size=point.batch_size, batches=point.batches
        )
    return DarknetTrainer(factory().scaled(point.scale), trainer_config, system)


def _micro_factories():
    from repro.workloads.bfs import BfsConfig, BfsWorkload
    from repro.workloads.fir import FirConfig, FirWorkload
    from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload
    from repro.workloads.kmeans import KMeansConfig, KMeansWorkload
    from repro.workloads.knn import KnnConfig, KnnWorkload
    from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload
    from repro.workloads.reduction import ReductionConfig, ReductionWorkload
    from repro.workloads.stencil import StencilConfig, StencilWorkload

    return {
        "fir": (FirWorkload, FirConfig),
        "radix": (RadixSortWorkload, RadixSortConfig),
        "hashjoin": (HashJoinWorkload, HashJoinConfig),
        "bfs": (BfsWorkload, BfsConfig),
        "kmeans": (KMeansWorkload, KMeansConfig),
        "knn": (KnnWorkload, KnnConfig),
        "stencil": (StencilWorkload, StencilConfig),
        "reduction": (ReductionWorkload, ReductionConfig),
    }


def _micro_workload(point: SweepPoint):
    workload_cls, config_cls = _micro_factories()[point.workload]
    return workload_cls(config_cls().scaled(point.scale))


def _install_chaos(runtime, point: SweepPoint):
    """Build and install the point's injector; ``None`` when chaos-free."""
    if not point.chaos:
        return None
    from repro.chaos.injector import ChaosInjector
    from repro.chaos.schedule import ChaosConfig

    return ChaosInjector(ChaosConfig.from_items(point.chaos)).install(runtime)


def _execute_chaos_point(
    point: SweepPoint, gpu, link, driver_config
) -> Optional[ExperimentResult]:
    """Cold run of a chaos point, always split-phase.

    The injector attaches only after the (chaos-free) setup prefix —
    exactly where :func:`execute_group` attaches it on a snapshot fork —
    so cold and forked chaos runs see identical injection schedules.
    """
    from repro.harness.runner import run_uvm_body, run_uvm_prefix

    plan = _point_plan(point)
    if plan is None:  # pragma: no cover - chaos+No-UVM rejected earlier
        raise ConfigurationError(f"{point.label}: chaos needs a UVM system")
    try:
        runtime = run_uvm_prefix(plan.setup, gpu, link, driver_config=driver_config)
    except OutOfMemoryError:
        return None
    injector = _install_chaos(runtime, point)
    try:
        return run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
    except OutOfMemoryError:
        return None
    finally:
        if injector is not None:
            injector.uninstall()


def execute_point(point: SweepPoint) -> Optional[ExperimentResult]:
    """Resolve one point; ``None`` when the configuration does not fit
    (the paper's No-UVM OOM crash under oversubscription).

    ``mode="exact"`` simulates; ``mode="fast"`` answers from the
    calibrated analytical model without simulating (raising
    :class:`~repro.fastmodel.FastModelError` when no calibration
    covers the point).
    """
    if point.mode == "fast":
        from repro.fastmodel import predict_point

        return predict_point(point)
    system = System(point.system)
    gpu = _gpu_spec(point)
    link = _link(point)
    driver_config = _driver_config(point)
    if point.chaos:
        return _execute_chaos_point(point, gpu, link, driver_config)
    try:
        if point.is_dl:
            trainer = _dl_trainer(point, system)
            return trainer.run(gpu, link, driver_config=driver_config)
        workload = _micro_workload(point)
        return workload.run(
            system, point.ratio, gpu, link, driver_config=driver_config
        )
    except OutOfMemoryError:
        return None


# ----------------------------------------------------------------------
# shared-prefix group execution (snapshot/fork reuse)
# ----------------------------------------------------------------------

#: Driver-config fields that influence the *setup* prefix (CPU faults
#: during host initialization, instrumentation that records them).  Two
#: points may share one prefix snapshot only when these agree; every
#: other knob is setup-inert and is re-applied per fork via
#: :meth:`~repro.driver.driver.UvmDriver.reconfigure`.
SETUP_AFFECTING_DRIVER_KEYS = frozenset(
    {
        "cpu_fault_overhead",
        "event_log_enabled",
        "event_log_capacity",
        "keep_transfer_records",
    }
)


def prefix_key(point: SweepPoint) -> Optional[Tuple]:
    """Grouping key for points that can share one setup-prefix snapshot,
    or ``None`` when the point must run cold.

    ``None`` cases: No-UVM (monolithic program, no split), and points
    that opt out via a ``snapshot_reuse=False`` driver override.  The
    key deliberately excludes ``system`` (all UVM systems share the
    same CPU-only setup), ``ratio`` (the oversubscription occupant is
    reserved after forking and costs no simulated time), and ``chaos``
    (the injector installs per fork, after the shared prefix — setup is
    always simulated fault-free).
    """
    if point.mode == "fast":
        # Analytical points never simulate, so there is no prefix to
        # share; keeping them out also steers the serve workers'
        # snapshot pools onto the plain execute_point dispatch.
        return None
    if System(point.system) is System.NO_UVM:
        return None
    overrides = dict(point.driver)
    if overrides.get("snapshot_reuse") is False:
        return None
    setup_overrides = tuple(
        (k, v)
        for k, v in point.driver
        if k in SETUP_AFFECTING_DRIVER_KEYS
    )
    return (
        point.workload,
        point.link,
        point.scale,
        point.gpu,
        point.batch_size,
        point.batches,
        setup_overrides,
    )


@dataclass
class _PointPlan:
    """A point decomposed into the split-phase protocol."""

    setup: Callable
    body: Callable
    system: str
    config_label: str
    app_bytes: int
    ratio: float
    metric: Optional[Callable] = None


def _point_plan(point: SweepPoint) -> Optional[_PointPlan]:
    """Split-phase plan for ``point``; ``None`` when unsupported."""
    system = System(point.system)
    if system is System.NO_UVM:
        return None
    if point.is_dl:
        trainer = _dl_trainer(point, system)
        return _PointPlan(
            setup=trainer.setup_program(),
            body=trainer.body_program(),
            system=system.value,
            config_label=f"bs={point.batch_size}",
            app_bytes=trainer.app_bytes,
            ratio=1.0,  # DL oversubscribes via batch size, not an occupant
            metric=trainer.images_per_second,
        )
    workload = _micro_workload(point)
    return _PointPlan(
        setup=workload.setup_program(),
        body=workload.body_program(system),
        system=system.value,
        config_label=ratio_label(point.ratio),
        app_bytes=workload.config.app_bytes,
        ratio=point.ratio,
    )


def execute_group(
    points: Sequence[SweepPoint],
    pool=None,
    blob_store=None,
) -> List[Optional[ExperimentResult]]:
    """Simulate a group of points sharing one :func:`prefix_key`.

    The shared setup prefix is simulated once, snapshotted at its
    quiescent boundary, and forked per point; each fork re-applies the
    point's full driver config and runs the measured body.  Forked runs
    are bit-for-bit identical to cold ones (``tests/test_snapshot_fork``
    pins that down), so this is purely a wall-clock optimization.  Any
    failure to establish the snapshot degrades to cold per-point runs.

    ``pool`` (a :class:`~repro.engine.snapshot.SnapshotPool`) and
    ``blob_store`` (a :class:`~repro.engine.snapshot.BlobStore`) widen
    the reuse scope: the snapshot is resolved through the pool →
    blob-store → build hierarchy, so sweep workers on one host share
    each prefix build instead of repeating it.  With either set, even a
    single-point group forks from the shared snapshot (that is the
    whole point of splitting groups across workers).
    """
    from repro.driver.config import UvmDriverConfig
    from repro.engine.snapshot import resolve_prefix_snapshot
    from repro.harness.runner import run_uvm_body, run_uvm_prefix

    points = list(points)
    plans = [_point_plan(point) for point in points]
    shared = pool is not None or blob_store is not None
    if len(points) < (1 if shared else 2) or any(
        plan is None for plan in plans
    ):
        return [execute_point(point) for point in points]
    key = prefix_key(points[0])
    if key is None:
        # Ungroupable points (fast mode, No-UVM, opted out) have no
        # prefix to share at any scope.
        if shared:
            return [execute_point(point) for point in points]
        pool = blob_store = None

    def build():
        try:
            return run_uvm_prefix(
                plans[0].setup,
                _gpu_spec(points[0]),
                _link(points[0]),
                driver_config=_driver_config(points[0]),
            )
        except OutOfMemoryError:
            return None

    snapshot, _origin = resolve_prefix_snapshot(
        key, build, pool=pool, store=blob_store
    )
    if snapshot is None:
        return [execute_point(point) for point in points]
    results: List[Optional[ExperimentResult]] = []
    for point, plan in zip(points, plans):
        forked = snapshot.fork()
        forked.driver.reconfigure(_driver_config(point) or UvmDriverConfig())
        # Chaos installs per fork, after the shared chaos-free prefix, so
        # chaos points group with fault-free points (see prefix_key).
        injector = _install_chaos(forked, point)
        try:
            results.append(
                run_uvm_body(
                    forked,
                    plan.body,
                    plan.system,
                    plan.config_label,
                    plan.app_bytes,
                    plan.ratio,
                    metric=plan.metric,
                )
            )
        except OutOfMemoryError:
            results.append(None)
        finally:
            if injector is not None:
                injector.uninstall()
    return results


def _outcome_to_dict(result: Optional[ExperimentResult]) -> Dict[str, object]:
    if result is None:
        return {"status": "oom"}
    return {"status": "ok", "result": result.to_dict()}


def _outcome_from_dict(outcome: object) -> Optional[ExperimentResult]:
    """Decode a stored outcome; raises on any corrupt/foreign shape."""
    if not isinstance(outcome, dict):
        raise ValueError(f"outcome is not an object: {outcome!r}")
    status = outcome.get("status")
    if status == "oom":
        return None
    if status != "ok":
        raise ValueError(f"unknown outcome status: {status!r}")
    return ExperimentResult.from_dict(outcome["result"])


def _pool_worker(item: Tuple[int, Dict[str, object]]) -> Tuple[int, Dict[str, object]]:
    """Top-level (picklable) worker: simulate one point in a subprocess."""
    index, point_dict = item
    point = SweepPoint.from_dict(point_dict)
    return index, _outcome_to_dict(execute_point(point))


#: Per-worker-process snapshot pool, lazily built on first grouped work
#: item.  Sits above the shared blob store: a worker that sees the same
#: prefix twice forks from memory without touching disk.
_SWEEP_WORKER_POOL = None


def _sweep_worker_pool():
    global _SWEEP_WORKER_POOL
    if _SWEEP_WORKER_POOL is None:
        from repro.engine.snapshot import SnapshotPool

        _SWEEP_WORKER_POOL = SnapshotPool(SWEEP_POOL_BYTES)
    return _SWEEP_WORKER_POOL


def _pool_group_worker(
    item: Tuple[
        Tuple[int, ...], Tuple[Dict[str, object], ...], Optional[str]
    ]
) -> List[Tuple[int, Dict[str, object]]]:
    """Top-level (picklable) worker: simulate one prefix-sharing group
    (or one chunk of a split group) in a subprocess.  Only plain dicts
    and the blob-store path cross the process boundary — snapshots are
    resolved through the worker pool / shared blob store inside the
    worker, so each prefix is built once per host."""
    indices, point_dicts, store_dir = item
    points = [SweepPoint.from_dict(d) for d in point_dicts]
    if store_dir is None:
        if len(points) == 1:
            outcomes = [_outcome_to_dict(execute_point(points[0]))]
        else:
            outcomes = [
                _outcome_to_dict(result) for result in execute_group(points)
            ]
    else:
        from repro.engine.snapshot import BlobStore

        outcomes = [
            _outcome_to_dict(result)
            for result in execute_group(
                points,
                pool=_sweep_worker_pool(),
                blob_store=BlobStore(store_dir),
            )
        ]
    return list(zip(indices, outcomes))


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------


#: Distinguishes concurrent writers' temp files within one process; the
#: pid alone is not enough once the experiment server's thread pool and
#: the sweep's process pool share a cache root.
_TMP_COUNTER = itertools.count()


class ResultCache:
    """Content-addressed on-disk store of finished sweep points.

    Entries live at ``<root>/<key[:2]>/<key>.json``; a key is the
    sha256 of the point's canonical JSON plus :data:`CACHE_VERSION`, so
    *any* input change — workload, system, link, ratio, batch, scale,
    GPU, driver override, or cache schema — misses and re-simulates.
    Unreadable or corrupt entries are treated as misses, never errors.

    The store is safe under concurrent readers and writers from any mix
    of threads and processes (the experiment server hammers it from
    both): each writer stages to a uniquely-named temp file (pid +
    thread id + counter) and publishes with the atomic ``os.replace``,
    so a reader observes either the old complete entry or the new one,
    never a partial write.  Reads retry briefly on transient
    ``OSError`` and fall back to a miss.  Concurrent writers of the
    same key are idempotent — both write the identical deterministic
    outcome — so last-replace-wins is correct.
    """

    #: Read attempts before treating a transient error as a miss.
    READ_RETRIES = 3

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, point: SweepPoint, key: Optional[str] = None) -> Path:
        # The sha256 over canonical JSON is the expensive part of a cache
        # probe; callers that already hold the key pass it to avoid
        # hashing the same point two or three times per lookup.
        if key is None:
            key = point.cache_key()
        return self.root / key[:2] / f"{key}.json"

    def get(self, point: SweepPoint) -> Optional[Dict[str, object]]:
        """The stored outcome dict, or ``None`` on miss/corruption."""
        key = point.cache_key()
        path = self.path_for(point, key)
        payload = None
        for attempt in range(self.READ_RETRIES):
            try:
                payload = json.loads(path.read_text())
                break
            except FileNotFoundError:
                return None
            except (OSError, ValueError):
                # A transient read failure (e.g. replace-in-progress on a
                # filesystem without atomic rename semantics); back off
                # briefly, then treat as a miss.
                if attempt + 1 < self.READ_RETRIES:
                    time.sleep(0.005 * (attempt + 1))
        if payload is None:
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if payload.get("key") != key:
            return None
        outcome = payload.get("outcome")
        try:
            _outcome_from_dict(outcome)
        except (KeyError, TypeError, ValueError):
            return None
        return outcome  # type: ignore[return-value]

    def put(self, point: SweepPoint, outcome: Dict[str, object]) -> None:
        """Atomically persist one outcome (write temp file, then rename).

        The temp name is unique per (process, thread, call) so two
        concurrent writers — even threads sharing a pid — never
        interleave bytes in one staging file.
        """
        key = point.cache_key()
        path = self.path_for(point, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "point": point.to_dict(),
            "outcome": outcome,
        }
        tmp = path.with_suffix(
            f".tmp-{os.getpid()}-{threading.get_ident()}-{next(_TMP_COUNTER)}"
        )
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError:
            # Cache writes are best-effort; never fail the simulation.
            try:
                tmp.unlink()
            except OSError:
                pass


# ----------------------------------------------------------------------
# the sweep runner
# ----------------------------------------------------------------------


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` learned, aligned index-for-index."""

    points: List[SweepPoint]
    results: List[Optional[ExperimentResult]]
    #: Per-point provenance: ``"cache"`` or ``"run"``.
    provenance: List[str]
    wall_seconds: float
    #: Host-wide blob-store stats when the sweep shared prefix builds
    #: across worker processes (entries/bytes/builds_total/
    #: builds_distinct — see :meth:`BlobStore.stats`); ``None`` when the
    #: sweep ran without a shared store.
    blob_stats: Optional[Dict[str, object]] = None

    @property
    def cached(self) -> int:
        return sum(1 for p in self.provenance if p == "cache")

    @property
    def simulated(self) -> int:
        return sum(1 for p in self.provenance if p == "run")

    def rows(self) -> List[Tuple[SweepPoint, Optional[ExperimentResult]]]:
        return list(zip(self.points, self.results))

    def to_json(self) -> str:
        """Canonical serialization of (point, outcome) pairs.

        Independent of execution order, job count and cache state — two
        reports over the same points compare byte-for-byte equal exactly
        when every simulated value matches.
        """
        return json.dumps(
            [
                {"point": point.to_dict(), "outcome": _outcome_to_dict(result)}
                for point, result in self.rows()
            ],
            sort_keys=True,
            indent=1,
        )


def run_sweep(
    points: Union[SweepGrid, Iterable[SweepPoint]],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    snapshot_reuse: bool = True,
    blob_store_dir: Optional[Union[str, Path]] = None,
) -> SweepReport:
    """Execute a batch of sweep points, using the cache and worker pool.

    ``jobs > 1`` simulates cache misses across a process pool; hits are
    served inline.  Results are returned in point order regardless of
    completion order, so output is deterministic for any job count.

    ``snapshot_reuse`` groups cache-missing points by
    :func:`prefix_key`, simulates each group's shared setup prefix
    once, and forks the remaining points from a snapshot (see
    :func:`execute_group`).  Reports are byte-identical with the knob
    on or off; ``False`` forces every point to run cold.

    With ``jobs > 1``, multi-point prefix groups are additionally
    *split across workers* and their snapshots shared through a
    host-wide :class:`~repro.engine.snapshot.BlobStore` (serialize-once
    transport): each distinct prefix is built by exactly one worker
    process and every other worker forks from the published blob.
    Chunks are dispatched prefix-affine — one leader chunk per prefix
    first, follower chunks after — so followers land when their blob
    is already hot.  ``blob_store_dir`` (or ``$REPRO_BLOB_STORE``)
    names a persistent store directory; by default a per-sweep
    temporary directory is used and removed afterwards.
    """
    if isinstance(points, SweepGrid):
        points = points.expand()
    points = list(points)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1: {jobs}")
    started = time.monotonic()
    total = len(points)
    results: List[Optional[ExperimentResult]] = [None] * total
    provenance: List[str] = ["run"] * total
    done = 0

    def note(index: int, source: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            point = points[index]
            if source == "cache":
                suffix = "cached"
            elif point.mode == "fast":
                suffix = "predicted"
            else:
                suffix = "simulated"
            progress(f"[{done}/{total}] {suffix} {point.label}")

    pending: List[int] = []
    for index, point in enumerate(points):
        outcome = cache.get(point) if cache is not None else None
        if outcome is not None:
            results[index] = _outcome_from_dict(outcome)
            provenance[index] = "cache"
            note(index, "cache")
        else:
            pending.append(index)

    def finish(index: int, outcome: Dict[str, object]) -> None:
        results[index] = _outcome_from_dict(outcome)
        if cache is not None:
            cache.put(points[index], outcome)
        note(index, "run")

    # Analytical fast-mode points resolve in microseconds; answer them
    # inline instead of shipping them through the worker pool.
    simulated_pending: List[int] = []
    for index in pending:
        if points[index].mode == "fast":
            finish(index, _outcome_to_dict(execute_point(points[index])))
        else:
            simulated_pending.append(index)
    pending = simulated_pending

    # Partition the misses into prefix-sharing groups.  Ungroupable
    # points (prefix_key None) and singleton groups run cold; each group
    # is one unit of pool work so its snapshot never crosses a process
    # boundary.
    groups: List[List[int]] = []
    if snapshot_reuse:
        keyed: Dict[Tuple, List[int]] = {}
        solo: List[int] = []
        for index in pending:
            key = prefix_key(points[index])
            if key is None:
                solo.append(index)
            else:
                keyed.setdefault(key, []).append(index)
        for members in keyed.values():
            if len(members) > 1:
                groups.append(members)
            else:
                solo.extend(members)
        groups.extend([index] for index in solo)
    else:
        groups = [[index] for index in pending]

    # With several jobs, split multi-point groups into per-worker chunks
    # that share the prefix through a host-wide blob store instead of
    # serializing the whole group onto one worker.  Chunks are ordered
    # leaders-first (chunk rank 0 of every prefix, then rank 1, ...):
    # imap dispatches in list order, so each prefix's single builder
    # starts before its followers and the followers fork a hot blob.
    units: List[List[int]] = groups
    store_dir: Optional[str] = None
    store_cleanup = None
    if jobs > 1 and any(len(members) > 1 for members in groups):
        explicit = blob_store_dir or os.environ.get(BLOB_STORE_ENV)
        if explicit:
            store_dir = str(explicit)
        else:
            import tempfile

            store_cleanup = tempfile.TemporaryDirectory(prefix="repro-blobs-")
            store_dir = store_cleanup.name
        ranked: List[Tuple[int, List[int]]] = []
        for members in groups:
            parts = min(jobs, len(members)) if len(members) > 1 else 1
            for rank in range(parts):
                ranked.append((rank, members[rank::parts]))
        ranked.sort(key=lambda item: item[0])
        units = [chunk for _, chunk in ranked]

    blob_stats: Optional[Dict[str, object]] = None
    try:
        if len(units) > 1 and jobs > 1:
            work = [
                (
                    tuple(members),
                    tuple(points[index].to_dict() for index in members),
                    store_dir,
                )
                for members in units
            ]
            with multiprocessing.Pool(processes=min(jobs, len(units))) as pool:
                for batch in pool.imap_unordered(_pool_group_worker, work):
                    for index, outcome in batch:
                        finish(index, outcome)
        else:
            for members in units:
                if len(members) == 1:
                    index = members[0]
                    finish(
                        index, _outcome_to_dict(execute_point(points[index]))
                    )
                else:
                    group_results = execute_group([points[i] for i in members])
                    for index, result in zip(members, group_results):
                        finish(index, _outcome_to_dict(result))
        if store_dir is not None:
            from repro.engine.snapshot import BlobStore

            blob_stats = BlobStore(store_dir).stats()
    finally:
        if store_cleanup is not None:
            store_cleanup.cleanup()

    return SweepReport(
        points,
        results,
        provenance,
        time.monotonic() - started,
        blob_stats=blob_stats,
    )
