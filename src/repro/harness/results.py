"""Experiment result records and text-table rendering.

Every benchmark collects :class:`ExperimentResult` rows and renders a
:class:`ResultTable` shaped like the corresponding table in the paper, so
``pytest benchmarks/ --benchmark-only`` output can be compared line by
line with the published numbers (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence

from repro.cuda.runtime import CudaRuntime
from repro.units import to_gb


@dataclass
class ExperimentResult:
    """One (system, configuration) cell of an evaluation table."""

    system: str
    config: str  # e.g. "200%" or "batch=75"
    elapsed_seconds: float
    traffic_gb: float
    traffic_h2d_gb: float
    traffic_d2h_gb: float
    redundant_gb: float
    useful_gb: float
    counters: Dict[str, int] = field(default_factory=dict)
    #: Workload-specific headline metric (e.g. images/second).
    metric: Optional[float] = None
    #: EventLog entries evicted by the ring buffer during the run; > 0
    #: means the retained log is a suffix, not a complete record.
    log_dropped: int = 0
    #: Byte-attribution summary (waste decomposition + per-buffer
    #: totals) — populated only when the driver retained transfer
    #: records (``keep_transfer_records=True``); ``None`` on the
    #: benchmark hot path.  See :mod:`repro.analysis`.
    attribution: Optional[Dict[str, object]] = None

    @classmethod
    def from_runtime(
        cls,
        runtime: CudaRuntime,
        system: str,
        config: str,
        metric: Optional[float] = None,
    ) -> "ExperimentResult":
        """Snapshot a finished runtime into a result row."""
        traffic = runtime.driver.traffic
        rmt = runtime.driver.rmt
        attribution = None
        if traffic.records:
            from repro.analysis.attribution import attribution_summary

            attribution = attribution_summary(runtime)
        return cls(
            system=system,
            config=config,
            elapsed_seconds=runtime.measured_seconds,
            traffic_gb=traffic.total_gb,
            traffic_h2d_gb=to_gb(traffic.bytes_h2d),
            traffic_d2h_gb=to_gb(traffic.bytes_d2h),
            redundant_gb=to_gb(rmt.redundant_bytes),
            useful_gb=to_gb(rmt.useful_bytes),
            counters=runtime.driver.counters.as_dict(),
            metric=metric,
            log_dropped=runtime.driver.log.dropped,
            attribution=attribution,
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form, for the sweep cache and report files.

        ``attribution`` is omitted when ``None`` (the hot path) so
        pre-attribution caches and golden snapshots stay valid
        byte-for-byte — the same convention as an empty chaos tuple on
        :class:`SweepPoint`."""
        data = asdict(self)
        if data["attribution"] is None:
            del data["attribution"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; rejects unknown/missing fields so
        corrupt cache entries surface as errors, not garbage rows."""
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown result fields: {sorted(unknown)}")
        optional = ("counters", "metric", "log_dropped", "attribution")
        missing = {
            f.name
            for f in fields(cls)
            if f.name not in data and f.name not in optional
        }
        if missing:
            raise ValueError(f"missing result fields: {sorted(missing)}")
        return cls(**data)  # type: ignore[arg-type]


class ResultTable:
    """Systems x configurations grid of results, renderable as text."""

    def __init__(self, title: str, configs: Sequence[str]) -> None:
        self.title = title
        self.configs = list(configs)
        self._rows: "Dict[str, Dict[str, ExperimentResult]]" = {}

    def add(self, result: ExperimentResult) -> None:
        self._rows.setdefault(result.system, {})[result.config] = result

    def get(self, system: str, config: str) -> ExperimentResult:
        return self._rows[system][config]

    def systems(self) -> List[str]:
        return list(self._rows)

    def normalized_runtime(self, system: str, config: str, baseline: str) -> float:
        """Runtime relative to ``baseline`` in the same configuration."""
        base = self.get(baseline, config).elapsed_seconds
        if base == 0:
            return float("inf")
        return self.get(system, config).elapsed_seconds / base

    def render(
        self,
        value: str = "traffic_gb",
        baseline: Optional[str] = None,
        fmt: str = "{:.2f}",
    ) -> str:
        """Render one metric as a paper-style text table.

        ``value`` is an :class:`ExperimentResult` attribute name, or
        ``"normalized_runtime"`` (requires ``baseline``).
        """
        width = max(14, max((len(s) for s in self._rows), default=0) + 2)
        col = 10
        lines = [self.title]
        header = " " * width + "".join(f"{c:>{col}}" for c in self.configs)
        lines.append(header)
        for system, by_config in self._rows.items():
            cells = []
            for config in self.configs:
                result = by_config.get(config)
                if result is None:
                    cells.append(f"{'-':>{col}}")
                    continue
                if value == "normalized_runtime":
                    if baseline is None:
                        raise ValueError("normalized_runtime needs a baseline")
                    number = self.normalized_runtime(system, config, baseline)
                else:
                    number = getattr(result, value)
                if number is None:
                    cells.append(f"{'-':>{col}}")
                else:
                    cells.append(f"{fmt.format(number):>{col}}")
            lines.append(f"{system:<{width}}" + "".join(cells))
        return "\n".join(lines)
