"""Traced execution of a single sweep point.

:func:`trace_point` is the harness entry behind ``python -m repro trace``
and the ``--trace`` flags on ``run``/``chaos``: it simulates one
:class:`~repro.harness.sweep.SweepPoint` with a
:class:`~repro.instrument.trace.Tracer` installed and returns both the
usual :class:`~repro.harness.results.ExperimentResult` and the tracer
holding the timeline.

The tracer attaches *after* the setup prefix — exactly where
:func:`~repro.harness.sweep.execute_group` attaches a chaos injector on
a snapshot fork — so a cold traced run and a fork-traced run of the same
point produce byte-identical trace JSON and equal ``trace_digest``
values (pinned by ``tests/test_trace.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.harness.results import ExperimentResult
from repro.instrument.trace import TraceConfig, Tracer


def trace_point(
    point,
    trace_config: Optional[TraceConfig] = None,
    via_fork: bool = False,
) -> Tuple[Optional[ExperimentResult], Tracer]:
    """Simulate ``point`` with tracing enabled.

    Returns ``(result, tracer)``; ``result`` is ``None`` on the paper's
    No-UVM-style OOM.  ``via_fork=True`` routes the measured body
    through an :class:`~repro.engine.snapshot.EngineSnapshot` fork of
    the setup prefix instead of continuing the cold runtime — the trace
    must be identical either way.

    Raises :class:`~repro.errors.ConfigurationError` for points without
    a split-phase plan (No-UVM has no driver to trace).
    """
    from repro.harness.runner import run_uvm_body, run_uvm_prefix
    from repro.harness.sweep import (
        _driver_config,
        _gpu_spec,
        _install_chaos,
        _link,
        _point_plan,
    )

    plan = _point_plan(point)
    if plan is None:
        raise ConfigurationError(
            f"{point.label}: tracing needs a UVM system (No-UVM has no driver)"
        )
    tracer = Tracer(trace_config or TraceConfig())
    driver_config = _driver_config(point)
    try:
        runtime = run_uvm_prefix(
            plan.setup, _gpu_spec(point), _link(point), driver_config=driver_config
        )
    except OutOfMemoryError:
        return None, tracer
    if via_fork:
        from repro.driver.config import UvmDriverConfig
        from repro.engine.snapshot import EngineSnapshot

        runtime = EngineSnapshot(runtime).fork()
        runtime.driver.reconfigure(driver_config or UvmDriverConfig())
    # The tracer installs after the prefix (and after any fork), in the
    # same slot where chaos attaches, so the measured-body timeline is
    # independent of how the prefix state was produced.
    tracer.install(runtime)
    injector = _install_chaos(runtime, point)
    try:
        result = run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
    except OutOfMemoryError:
        return None, tracer
    finally:
        if injector is not None:
            injector.uninstall()
        tracer.uninstall()
    return result, tracer
