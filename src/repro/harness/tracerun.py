"""Traced execution of a single sweep point.

:func:`trace_point` is the harness entry behind ``python -m repro trace``
and the ``--trace`` flags on ``run``/``chaos``: it simulates one
:class:`~repro.harness.sweep.SweepPoint` with a
:class:`~repro.instrument.trace.Tracer` installed and returns both the
usual :class:`~repro.harness.results.ExperimentResult` and the tracer
holding the timeline.

The tracer attaches *after* the setup prefix — exactly where
:func:`~repro.harness.sweep.execute_group` attaches a chaos injector on
a snapshot fork — so a cold traced run and a fork-traced run of the same
point produce byte-identical trace JSON and equal ``trace_digest``
values (pinned by ``tests/test_trace.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.harness.results import ExperimentResult
from repro.instrument.trace import TraceConfig, Tracer


def populated_spans(buffer) -> List[List[int]]:
    """``[offset, length]`` spans of ``buffer`` holding live program data.

    Adjacent populated blocks merge into one span; offsets are relative
    to the buffer start.  This is what the replay frontend re-creates
    with ``host_write`` before re-enqueuing the measured body's ops.
    """
    spans: List[List[int]] = []
    base = buffer.va_range.start
    for block in buffer.blocks:
        if not block.populated:
            continue
        offset = block.va_start - base
        if spans and spans[-1][0] + spans[-1][1] == offset:
            spans[-1][1] += block.used_bytes
        else:
            spans.append([offset, block.used_bytes])
    return spans


def _record_context(tracer: Tracer, runtime, point, plan) -> None:
    """Emit the replay header: experiment metadata + the buffer table.

    Recorded immediately after install, so these are the first records
    of the program channel in both the cold and the forked timeline.
    """
    if not tracer.enabled:
        return
    now = runtime.env.now
    tracer.instant(
        "program",
        "experiment",
        now,
        category="program",
        args={
            "workload": point.workload,
            "system": plan.system,
            "config": plan.config_label,
            "link": point.link,
            "gpu": point.gpu,
            "scale": point.scale,
            "ratio": plan.ratio,
            "batch_size": point.batch_size,
            "app_bytes": plan.app_bytes,
        },
    )
    for buffer in runtime.managed_buffers():
        tracer.instant(
            "program",
            "buffer",
            now,
            category="program",
            args={
                "buffer": buffer.name,
                "nbytes": buffer.nbytes,
                "spans": populated_spans(buffer),
            },
        )


def _record_totals(tracer: Tracer, runtime) -> None:
    """Emit the measured body's migration totals (the replay check)."""
    if not tracer.enabled:
        return
    traffic = runtime.driver.traffic
    tracer.instant(
        "program",
        "totals",
        runtime.env.now,
        category="program",
        args={
            "bytes_h2d": traffic.bytes_h2d,
            "bytes_d2h": traffic.bytes_d2h,
            "transfer_count": traffic.transfer_count,
        },
    )


def traced_run(
    point,
    trace_config: Optional[TraceConfig] = None,
    via_fork: bool = False,
) -> Tuple[Optional[ExperimentResult], Tracer, Optional[object]]:
    """Simulate ``point`` with tracing enabled, keeping the runtime.

    Returns ``(result, tracer, runtime)``; ``result`` is ``None`` on the
    paper's No-UVM-style OOM (``runtime`` is ``None`` if the *prefix*
    OOMed).  The runtime gives post-run analysis access to retained
    transfer records and the RMT classifier (``repro.analysis``).
    ``via_fork=True`` routes the measured body through an
    :class:`~repro.engine.snapshot.EngineSnapshot` fork of the setup
    prefix instead of continuing the cold runtime — the trace must be
    identical either way.

    Raises :class:`~repro.errors.ConfigurationError` for points without
    a split-phase plan (No-UVM has no driver to trace).
    """
    from repro.harness.runner import run_uvm_body, run_uvm_prefix
    from repro.harness.sweep import (
        _driver_config,
        _gpu_spec,
        _install_chaos,
        _link,
        _point_plan,
    )

    plan = _point_plan(point)
    if plan is None:
        raise ConfigurationError(
            f"{point.label}: tracing needs a UVM system (No-UVM has no driver)"
        )
    tracer = Tracer(trace_config or TraceConfig())
    driver_config = _driver_config(point)
    try:
        runtime = run_uvm_prefix(
            plan.setup, _gpu_spec(point), _link(point), driver_config=driver_config
        )
    except OutOfMemoryError:
        return None, tracer, None
    if via_fork:
        from repro.driver.config import UvmDriverConfig
        from repro.engine.snapshot import EngineSnapshot

        runtime = EngineSnapshot(runtime).fork()
        runtime.driver.reconfigure(driver_config or UvmDriverConfig())
    # The tracer installs after the prefix (and after any fork), in the
    # same slot where chaos attaches, so the measured-body timeline is
    # independent of how the prefix state was produced.
    tracer.install(runtime)
    _record_context(tracer, runtime, point, plan)
    injector = _install_chaos(runtime, point)
    try:
        result = run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
        _record_totals(tracer, runtime)
    except OutOfMemoryError:
        return None, tracer, runtime
    finally:
        if injector is not None:
            injector.uninstall()
        tracer.uninstall()
    return result, tracer, runtime


def trace_point(
    point,
    trace_config: Optional[TraceConfig] = None,
    via_fork: bool = False,
) -> Tuple[Optional[ExperimentResult], Tracer]:
    """Simulate ``point`` with tracing enabled (see :func:`traced_run`)."""
    result, tracer, _ = traced_run(point, trace_config, via_fork)
    return result, tracer
