"""Driver-state invariant checking.

The structural invariants that define a well-formed UVM driver state,
available as a library function so applications (and the property-based
tests) can assert them at any quiescent point::

    check_driver_invariants(runtime.driver)

Raises :class:`~repro.errors.SimulationError` with a description of the
first violated invariant.
"""

from __future__ import annotations

from typing import List

from repro.driver.driver import UvmDriver
from repro.errors import SimulationError


def check_driver_invariants(driver: UvmDriver) -> None:
    """Validate frame conservation, residency exclusivity and queues."""
    problems: List[str] = []
    for name in driver.gpu_names():
        state = driver._gpu(name)
        queues = state.queues
        queued = queues.resident_blocks() + len(queues.unused)
        if queued != state.allocator.used_frames:
            problems.append(
                f"{name}: {queued} frames reachable via queues but the "
                f"allocator has {state.allocator.used_frames} in use"
            )
        if not 0 <= state.allocator.free_frames <= state.allocator.capacity_frames:
            problems.append(f"{name}: free-frame count out of range")
    for index, block in driver._blocks.items():
        if block.on_gpu:
            gpu = driver._gpu(block.residency)  # type: ignore[arg-type]
            in_used = block in gpu.queues.used
            in_discarded = block in gpu.queues.discarded
            if in_used == in_discarded:
                problems.append(
                    f"block {index}: GPU-resident but in "
                    f"{'both queues' if in_used else 'no queue'}"
                )
            if block.frame is None or not block.frame.allocated:
                problems.append(f"block {index}: GPU-resident without a frame")
            if in_discarded != block.discarded:
                problems.append(
                    f"block {index}: queue membership disagrees with its "
                    "discard flag"
                )
            if driver.cpu_page_table.is_mapped(index):
                problems.append(
                    f"block {index}: mapped on the CPU while GPU-resident "
                    "(residency must be exclusive, §2.2)"
                )
        else:
            if block.frame is not None:
                problems.append(f"block {index}: holds a frame while not on a GPU")
            for name in driver.gpu_names():
                if driver.gpu_page_table(name).is_mapped(index):
                    problems.append(
                        f"block {index}: mapped on {name} but resident on "
                        f"{block.residency}"
                    )
    if problems:
        raise SimulationError(
            "driver invariants violated:\n  " + "\n  ".join(problems)
        )
