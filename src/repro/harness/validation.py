"""Driver-state invariant checking.

The structural invariants that define a well-formed UVM driver state,
available as a library function so applications (and the property-based
tests) can assert them at any quiescent point::

    check_driver_invariants(runtime.driver)

and — with ``allow_inflight=True`` — at *any* point between two engine
events, which is how the online validator of :mod:`repro.chaos` runs it
mid-simulation at a configurable cadence.

All checks consume the public inspection API
(:meth:`repro.driver.driver.UvmDriver.inspect`) rather than private
driver attributes.  Raises :class:`~repro.errors.SimulationError` with a
description of every violated invariant.
"""

from __future__ import annotations

from typing import List

from repro.driver.driver import UvmDriver
from repro.driver.inspect import BlockView, DriverInspection
from repro.driver.va_block import CPU
from repro.errors import SimulationError
from repro.instrument.traffic import TransferReason


def _block_on_gpu(view: BlockView) -> bool:
    return view.residency is not None and view.residency != CPU


def collect_invariant_problems(
    inspection: DriverInspection, allow_inflight: bool = False
) -> List[str]:
    """Return every violated structural invariant as a description string.

    With ``allow_inflight=False`` (the quiescent contract) every frame
    must be attributable and every block checked.  With
    ``allow_inflight=True`` the checks tolerate exactly the transient
    states a mid-flight residency operation creates: blocks whose index
    appears in ``inspection.inflight`` are skipped, and each GPU's
    allocator may hold up to one unqueued frame per in-flight block
    (frames acquired or vacated mid-operation).
    """
    problems: List[str] = []
    inflight = inspection.inflight if allow_inflight else frozenset()
    for name, gpu in inspection.gpus.items():
        queued = (
            len(gpu.used_queue_blocks)
            + len(gpu.discarded_queue_blocks)
            + gpu.unused_queue_frames
        )
        slack = gpu.used_frames - queued
        if allow_inflight:
            if not 0 <= slack <= len(inflight):
                problems.append(
                    f"{name}: {queued} frames reachable via queues but the "
                    f"allocator has {gpu.used_frames} in use, a slack of "
                    f"{slack} not explained by {len(inflight)} in-flight "
                    "operations"
                )
        elif slack != 0:
            problems.append(
                f"{name}: {queued} frames reachable via queues but the "
                f"allocator has {gpu.used_frames} in use"
            )
        if not 0 <= gpu.free_frames <= gpu.capacity_frames:
            problems.append(f"{name}: free-frame count out of range")
    for index, block in inspection.blocks.items():
        if index in inflight:
            continue
        if _block_on_gpu(block):
            gpu = inspection.gpus.get(block.residency)  # type: ignore[arg-type]
            if gpu is None:
                problems.append(
                    f"block {index}: resident on unknown GPU {block.residency!r}"
                )
                continue
            in_used = index in gpu.used_queue_blocks
            in_discarded = index in gpu.discarded_queue_blocks
            if in_used == in_discarded:
                problems.append(
                    f"block {index}: GPU-resident but in "
                    f"{'both queues' if in_used else 'no queue'}"
                )
            if not block.has_frame or not block.frame_allocated:
                problems.append(f"block {index}: GPU-resident without a frame")
            if in_discarded != block.discarded:
                problems.append(
                    f"block {index}: queue membership disagrees with its "
                    "discard flag"
                )
            if index in inspection.cpu_mapped:
                problems.append(
                    f"block {index}: mapped on the CPU while GPU-resident "
                    "(residency must be exclusive, §2.2)"
                )
        else:
            if block.has_frame:
                problems.append(f"block {index}: holds a frame while not on a GPU")
            for name, gpu in inspection.gpus.items():
                if index in gpu.mapped_blocks:
                    problems.append(
                        f"block {index}: mapped on {name} but resident on "
                        f"{block.residency}"
                    )
        problems.extend(_discard_semantics_problems(inspection, block))
    return problems


def _discard_semantics_problems(
    inspection: DriverInspection, block: BlockView
) -> List[str]:
    """Invariants of the discard state machine itself (§5.1/§5.2/§5.7)."""
    problems: List[str] = []
    index = block.index
    if block.discarded != (block.discard_kind is not None):
        problems.append(
            f"block {index}: discard flag disagrees with its discard kind "
            f"({block.discarded} vs {block.discard_kind!r})"
        )
    if block.discard_kind == "lazy" and block.sw_dirty:
        problems.append(
            f"block {index}: lazily discarded but its software dirty bit "
            "is still set (§5.2 requires the clear)"
        )
    if block.discard_kind == "eager":
        if index in inspection.cpu_mapped:
            problems.append(
                f"block {index}: eagerly discarded but still mapped on the "
                "CPU (§5.1 destroys every mapping)"
            )
        for name, gpu in inspection.gpus.items():
            if index in gpu.mapped_blocks:
                problems.append(
                    f"block {index}: eagerly discarded but still mapped on "
                    f"{name} (§5.1 destroys every mapping)"
                )
    if block.discarded and block.populated and not block.written_since_discard:
        problems.append(
            f"block {index}: discarded yet populated without a recorded "
            "write-after-discard"
        )
    return problems


def collect_conservation_problems(driver: UvmDriver) -> List[str]:
    """Transfer-byte conservation between the recorder and the classifier.

    Every byte of a block-attributed transfer enters the RMT classifier
    exactly once and stays there — pending, then resolved useful or
    redundant — so at any point between two engine events::

        traffic.block_bytes == rmt.classified_bytes + rmt.pending_bytes

    This holds under any fault-injection schedule because the migration
    engine records bytes only for the *successful* DMA attempt.
    """
    problems: List[str] = []
    traffic = driver.traffic
    rmt = driver.rmt
    accounted = rmt.classified_bytes + rmt.pending_bytes
    if traffic.block_bytes != accounted:
        problems.append(
            f"transfer-byte conservation broken: recorder saw "
            f"{traffic.block_bytes} block-attributed bytes but the RMT "
            f"classifier accounts for {accounted} "
            f"({rmt.classified_bytes} classified + {rmt.pending_bytes} pending)"
        )
    if traffic.block_bytes > traffic.total_bytes:
        problems.append(
            f"block-attributed bytes ({traffic.block_bytes}) exceed total "
            f"recorded traffic ({traffic.total_bytes})"
        )
    by_reason = sum(traffic.bytes_for(r) for r in TransferReason)
    if by_reason != traffic.total_bytes:
        problems.append(
            f"per-reason traffic totals {by_reason} but per-direction "
            f"totals {traffic.total_bytes}"
        )
    if traffic.records and len(traffic.records) == traffic.transfer_count:
        record_bytes = sum(r.nbytes for r in traffic.records)
        if record_bytes != traffic.total_bytes:
            problems.append(
                f"retained records sum to {record_bytes} bytes but the "
                f"running total is {traffic.total_bytes}"
            )
        problems.extend(_attribution_problems(traffic, rmt))
    return problems


def _attribution_problems(traffic, rmt) -> List[str]:
    """Byte-attribution conservation over a complete record set.

    Only meaningful when the recorder retained a record for every
    transfer (the caller checks); then the attributed views — per-buffer
    segments, per-direction/per-reason groupings, and per-record RMT
    fates — must each re-sum to the recorder's running totals.
    """
    problems: List[str] = []
    by_direction: dict = {}
    by_reason: dict = {}
    block_record_bytes = 0
    for record in traffic.records:
        direction = record.direction.value
        by_direction[direction] = by_direction.get(direction, 0) + record.nbytes
        reason = record.reason.value
        by_reason[reason] = by_reason.get(reason, 0) + record.nbytes
        if record.num_blocks > 0:
            block_record_bytes += record.nbytes
            if not record.segments:
                problems.append(
                    f"block-attributed record at t={record.time} has no "
                    "buffer segments"
                )
        if record.segments:
            segment_bytes = sum(nbytes for _, nbytes in record.segments)
            if segment_bytes != record.nbytes:
                problems.append(
                    f"record at t={record.time} moves {record.nbytes} bytes "
                    f"but its buffer segments sum to {segment_bytes}"
                )
    expected_direction = {
        "h2d": traffic.bytes_h2d,
        "d2h": traffic.bytes_d2h,
        "d2d": traffic.bytes_d2d,
    }
    for direction, expected in expected_direction.items():
        attributed = by_direction.get(direction, 0)
        if attributed != expected:
            problems.append(
                f"attributed {direction} bytes ({attributed}) disagree with "
                f"the recorder's running total ({expected})"
            )
    for reason in TransferReason:
        attributed = by_reason.get(reason.value, 0)
        expected = traffic.bytes_for(reason)
        if attributed != expected:
            problems.append(
                f"attributed {reason.value!r} bytes ({attributed}) disagree "
                f"with the recorder's running total ({expected})"
            )
    if block_record_bytes != traffic.block_bytes:
        problems.append(
            f"block-attributed record bytes ({block_record_bytes}) disagree "
            f"with the recorder's block-byte total ({traffic.block_bytes})"
        )
    fate_bytes = rmt.classified_record_bytes + rmt.pending_record_bytes
    if fate_bytes != traffic.block_bytes:
        problems.append(
            f"per-record RMT fates account for {fate_bytes} bytes but the "
            f"recorder saw {traffic.block_bytes} block-attributed bytes"
        )
    useful = sum(t.get("useful", 0) for t in rmt.record_fates.values())
    if useful != rmt.useful_bytes:
        problems.append(
            f"per-record useful bytes ({useful}) disagree with the "
            f"classifier's aggregate ({rmt.useful_bytes})"
        )
    redundant = rmt.classified_record_bytes - useful
    if redundant != rmt.redundant_bytes:
        problems.append(
            f"per-record redundant bytes ({redundant}) disagree with the "
            f"classifier's aggregate ({rmt.redundant_bytes})"
        )
    buffer_bytes = sum(
        sum(tally.values()) for tally in rmt.buffer_fates.values()
    )
    if buffer_bytes != rmt.classified_record_bytes:
        problems.append(
            f"per-buffer fate bytes ({buffer_bytes}) disagree with the "
            f"per-record fate bytes ({rmt.classified_record_bytes})"
        )
    return problems


def check_driver_invariants(
    driver: UvmDriver, allow_inflight: bool = False
) -> None:
    """Validate frame conservation, residency exclusivity and queues."""
    problems = collect_invariant_problems(
        driver.inspect(), allow_inflight=allow_inflight
    )
    if problems:
        raise SimulationError(
            "driver invariants violated:\n  " + "\n  ".join(problems)
        )


def check_transfer_conservation(driver: UvmDriver) -> None:
    """Validate the transfer-byte conservation invariants."""
    problems = collect_conservation_problems(driver)
    if problems:
        raise SimulationError(
            "driver invariants violated:\n  " + "\n  ".join(problems)
        )
