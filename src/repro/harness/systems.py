"""The three evaluated systems (§7.1).

- **UVM-opt**: UVM with prefetching and API/compute overlap; no discard.
- **UvmDiscard**: UVM-opt plus eager discard directives.
- **UvmDiscardLazy**: like UvmDiscard, but every discard that is paired
  with a later prefetch of the same region uses the lazy implementation;
  unpaired discards stay eager (§7.1: "...but not all of them").

Workloads consult a :class:`DiscardPolicy` at each potential discard
site, passing whether that site's region will be re-prefetched before
reuse; the policy returns which discard mode to issue, or ``None``.
"""

from __future__ import annotations

import enum
from typing import Optional


class System(enum.Enum):
    """Which evaluated configuration a run models."""

    NO_UVM = "No-UVM"
    UVM_OPT = "UVM-opt"
    UVM_DISCARD = "UvmDiscard"
    UVM_DISCARD_LAZY = "UvmDiscardLazy"

    @property
    def uses_uvm(self) -> bool:
        return self is not System.NO_UVM

    @property
    def uses_discard(self) -> bool:
        return self in (System.UVM_DISCARD, System.UVM_DISCARD_LAZY)


class DiscardPolicy:
    """Maps a system to the discard mode used at each call site."""

    def __init__(self, system: System) -> None:
        self.system = system

    def mode_for(self, paired_with_prefetch: bool) -> Optional[str]:
        """Discard mode for a site, or ``None`` when the system discards
        nothing.

        `UvmDiscardLazy`'s mandatory-prefetch contract (§5.2) means only
        prefetch-paired sites may go lazy; the rest remain eager even in
        the lazy system.
        """
        if not self.system.uses_discard:
            return None
        if self.system is System.UVM_DISCARD_LAZY and paired_with_prefetch:
            return "lazy"
        return "eager"
