"""One-call experiment runner shared by benchmarks and tests."""

from __future__ import annotations

from decimal import ROUND_HALF_UP, Decimal
from typing import Callable, Optional

from repro.cuda.device import GpuSpec, HostSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.harness.oversubscribe import apply_oversubscription
from repro.harness.results import ExperimentResult
from repro.interconnect.link import Link


def run_uvm_experiment(
    program: Callable,
    system: str,
    config_label: str,
    app_bytes: int,
    ratio: float,
    gpu: GpuSpec,
    link: Link,
    host: Optional[HostSpec] = None,
    driver_config: Optional[UvmDriverConfig] = None,
    metric: Optional[Callable[[CudaRuntime], float]] = None,
) -> ExperimentResult:
    """Run ``program`` under the §7.1 methodology and snapshot the result.

    ``program`` is a host-program generator function taking the runtime;
    ``ratio`` is the oversubscription ratio (<=1 means "fits").
    """
    runtime = CudaRuntime(gpu=gpu, host=host, link=link, driver_config=driver_config)
    apply_oversubscription(runtime, app_bytes, ratio)
    runtime.run(program)
    value = metric(runtime) if metric is not None else None
    return ExperimentResult.from_runtime(runtime, system, config_label, metric=value)


def run_uvm_prefix(
    setup_program: Callable,
    gpu: GpuSpec,
    link: Link,
    host: Optional[HostSpec] = None,
    driver_config: Optional[UvmDriverConfig] = None,
) -> CudaRuntime:
    """Simulate a workload's setup prefix and return the live runtime.

    Unlike :meth:`CudaRuntime.run` this does **not** finalize the driver
    — the RMT classifier must resolve its pending chains exactly once,
    at the end of the measured body.  The returned runtime is quiescent
    (the prefix is CPU-only by construction) and therefore snapshottable
    with :class:`~repro.engine.snapshot.EngineSnapshot`.
    """
    runtime = CudaRuntime(gpu=gpu, host=host, link=link, driver_config=driver_config)
    env = runtime.env
    process = env.process(setup_program(runtime))
    env.run(until=process)
    env.run()  # drain any stragglers to quiescence
    return runtime


def run_uvm_body(
    runtime: CudaRuntime,
    body_program: Callable,
    system: str,
    config_label: str,
    app_bytes: int,
    ratio: float,
    metric: Optional[Callable[[CudaRuntime], float]] = None,
) -> ExperimentResult:
    """Run the measured body on a runtime produced by
    :func:`run_uvm_prefix` (typically a snapshot fork) and snapshot the
    result.

    The oversubscription occupant is reserved here, *after* forking:
    reserving frames is a pure allocator operation costing no simulated
    time, so deferring it past the (time-free, CPU-only) prefix leaves
    every observable identical to a cold run while letting points with
    different ratios share one prefix snapshot.
    """
    apply_oversubscription(runtime, app_bytes, ratio)
    runtime.run(body_program)
    value = metric(runtime) if metric is not None else None
    return ExperimentResult.from_runtime(runtime, system, config_label, metric=value)


def ratio_label(ratio: float) -> str:
    """The paper's column label for an oversubscription ratio.

    Ratios at or below 1.0 are the "fits" column ("<100%"); anything
    above rounds half-up to a whole percent (1.25 -> "125%").  Decimal
    arithmetic keeps binary-float artifacts (2.675 * 100 ==
    267.49999...) from shifting a column name.
    """
    if ratio <= 1.0:
        return "<100%"
    percent = (Decimal(str(ratio)) * 100).quantize(
        Decimal("1"), rounding=ROUND_HALF_UP
    )
    return f"{percent}%"
