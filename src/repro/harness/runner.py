"""One-call experiment runner shared by benchmarks and tests."""

from __future__ import annotations

from typing import Callable, Optional

from repro.cuda.device import GpuSpec, HostSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.harness.oversubscribe import apply_oversubscription
from repro.harness.results import ExperimentResult
from repro.interconnect.link import Link


def run_uvm_experiment(
    program: Callable,
    system: str,
    config_label: str,
    app_bytes: int,
    ratio: float,
    gpu: GpuSpec,
    link: Link,
    host: Optional[HostSpec] = None,
    driver_config: Optional[UvmDriverConfig] = None,
    metric: Optional[Callable[[CudaRuntime], float]] = None,
) -> ExperimentResult:
    """Run ``program`` under the §7.1 methodology and snapshot the result.

    ``program`` is a host-program generator function taking the runtime;
    ``ratio`` is the oversubscription ratio (<=1 means "fits").
    """
    runtime = CudaRuntime(gpu=gpu, host=host, link=link, driver_config=driver_config)
    apply_oversubscription(runtime, app_bytes, ratio)
    runtime.run(program)
    value = metric(runtime) if metric is not None else None
    return ExperimentResult.from_runtime(runtime, system, config_label, metric=value)


def ratio_label(ratio: float) -> str:
    """The paper's column label for an oversubscription ratio."""
    if ratio <= 1.0:
        return "<100%"
    return f"{ratio * 100:.0f}%"
