"""Deterministic snapshot/fork of a quiescent simulation.

A snapshot captures an entire simulation object graph — typically a
:class:`~repro.cuda.runtime.CudaRuntime`, i.e. the
:class:`~repro.engine.core.Environment` (clock, recycled-timeout pool),
the driver (va_blocks, page queues, frame allocators, in-flight locks),
the instruments (traffic, RMT, counters, event log) and the GPU
executors — with one :func:`copy.deepcopy`.  :meth:`EngineSnapshot.fork`
then deep-copies the frozen payload again, yielding an independent
restored simulation that continues *bit-for-bit* like the original
would have.

The one restriction is **quiescence**: Python generator frames (live
processes) cannot be copied, so a snapshot may only be taken when the
event heap is empty and every process has finished.  The sweep harness
arranges exactly that by splitting workloads into a CPU-only setup
prefix and a measured body (see :mod:`repro.harness.sweep`); the
boundary between them is quiescent by construction because host-side
setup is fully synchronous.

Two details make the copy exact:

- :meth:`Process.__deepcopy__ <repro.engine.core.Process.__deepcopy__>`
  keeps a finished process's outcome (streams hold their tail processes
  forever) while shedding the exhausted generator — and raises
  :class:`~repro.errors.SnapshotError` if a *live* process sneaks into
  the graph, so a non-quiescent snapshot fails loudly instead of
  corrupting silently.
- the engine's ``_PENDING`` sentinel preserves identity across copies,
  so ``is``-based "value not set" checks keep working in the fork.

Forked runs are indistinguishable from cold runs in every *observable*:
simulated times, traffic bytes, RMT classification, counters, event-log
entries.  The only divergent internals are event sequence numbers (the
fork's counter continues from the prefix, a cold run's counts setup
bootstrap events too) and the identity of recycled timeout objects —
both are tie-breakers/allocation details with no behavioural effect
when the heap is empty at the boundary, which tests pin down
(``tests/test_snapshot_fork.py``).
"""

from __future__ import annotations

import copy
from typing import Generic, TypeVar

from repro.errors import SnapshotError

T = TypeVar("T")


def assert_quiescent(root: object) -> None:
    """Raise :class:`SnapshotError` unless ``root`` can be snapshotted.

    Duck-typed: if ``root`` exposes a ``snapshot_precheck()`` hook (the
    runtime, the driver), it is invoked; otherwise an ``env`` attribute
    with an empty heap is required.
    """
    precheck = getattr(root, "snapshot_precheck", None)
    if precheck is not None:
        precheck()
        return
    env = getattr(root, "env", root)
    quiescent = getattr(env, "quiescent", None)
    if quiescent is None:
        raise SnapshotError(
            f"{type(root).__name__} exposes neither snapshot_precheck() "
            "nor an environment to check for quiescence"
        )
    if not quiescent:
        raise SnapshotError(
            "snapshot requested with events still on the heap; run the "
            "simulation to quiescence first"
        )


class EngineSnapshot(Generic[T]):
    """A frozen deep copy of a quiescent simulation graph.

    The constructor captures ``root`` (after :func:`assert_quiescent`);
    :meth:`fork` returns a fresh, fully independent restored copy each
    time it is called.  The captured payload itself is never handed out,
    so a snapshot can seed any number of divergent continuations.
    """

    def __init__(self, root: T) -> None:
        assert_quiescent(root)
        self._payload: T = copy.deepcopy(root)

    def fork(self) -> T:
        """An independent restored copy of the captured simulation."""
        return copy.deepcopy(self._payload)
