"""Deterministic snapshot/fork of a quiescent simulation.

A snapshot captures an entire simulation object graph — typically a
:class:`~repro.cuda.runtime.CudaRuntime`, i.e. the
:class:`~repro.engine.core.Environment` (clock, recycled-timeout pool),
the driver (va_blocks, page queues, frame allocators, in-flight locks),
the instruments (traffic, RMT, counters, event log) and the GPU
executors — by pickling it **exactly once** into an immutable blob.
:meth:`EngineSnapshot.fork` is then a single ``pickle.loads`` of that
blob, yielding an independent restored simulation that continues
*bit-for-bit* like the original would have.  Deserializing the blob is
several times cheaper than the :func:`copy.deepcopy` it replaced, and —
critically — the blob is a portable artifact: it can cross process
boundaries through the file-backed :class:`BlobStore`, so a popular
setup prefix is built once per *host* instead of once per worker.

The one restriction is **quiescence**: Python generator frames (live
processes) cannot be copied or pickled, so a snapshot may only be taken
when the event heap is empty and every process has finished.  The sweep
harness arranges exactly that by splitting workloads into a CPU-only
setup prefix and a measured body (see :mod:`repro.harness.sweep`); the
boundary between them is quiescent by construction because host-side
setup is fully synchronous.

Three details make the restored copy exact:

- :meth:`Process.__deepcopy__ <repro.engine.core.Process.__deepcopy__>`
  and its pickle twin ``Process.__getstate__`` keep a finished
  process's outcome (streams hold their tail processes forever) while
  shedding the exhausted generator — and raise
  :class:`~repro.errors.SnapshotError` if a *live* process sneaks into
  the graph, so a non-quiescent snapshot fails loudly instead of
  corrupting silently.
- the engine's ``_PENDING`` sentinel preserves identity across both
  deepcopy and pickling (``_PendingType.__reduce__`` restores the
  module singleton), so ``is``-based "value not set" checks keep
  working in the fork.
- ``NULL_TRACER`` likewise unpickles to the module singleton, so
  untraced runs stay on the zero-cost no-op path after a fork.

Forked runs are indistinguishable from cold runs in every *observable*:
simulated times, traffic bytes, RMT classification, counters, event-log
entries.  The only divergent internals are event sequence numbers (the
fork's counter continues from the prefix, a cold run's counts setup
bootstrap events too) and the identity of recycled timeout objects —
both are tie-breakers/allocation details with no behavioural effect
when the heap is empty at the boundary, which tests pin down
(``tests/test_snapshot_fork.py``, ``tests/test_snapshot_blob.py``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar, Union

from repro.errors import SnapshotError

T = TypeVar("T")

PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def assert_quiescent(root: object) -> None:
    """Raise :class:`SnapshotError` unless ``root`` can be snapshotted.

    Duck-typed: if ``root`` exposes a ``snapshot_precheck()`` hook (the
    runtime, the driver), it is invoked; otherwise an ``env`` attribute
    with an empty heap is required.
    """
    precheck = getattr(root, "snapshot_precheck", None)
    if precheck is not None:
        precheck()
        return
    env = getattr(root, "env", root)
    quiescent = getattr(env, "quiescent", None)
    if quiescent is None:
        raise SnapshotError(
            f"{type(root).__name__} exposes neither snapshot_precheck() "
            "nor an environment to check for quiescence"
        )
    if not quiescent:
        raise SnapshotError(
            "snapshot requested with events still on the heap; run the "
            "simulation to quiescence first"
        )


class EngineSnapshot(Generic[T]):
    """A quiescent simulation graph frozen into one pickle blob.

    The constructor serializes ``root`` exactly once (after
    :func:`assert_quiescent`); :meth:`fork` deserializes a fresh, fully
    independent restored copy each time it is called.  The blob itself
    is immutable ``bytes``, so a snapshot can seed any number of
    divergent continuations — and :meth:`to_blob`/:meth:`from_blob`
    move it across process boundaries without rebuilding the prefix.

    A live (non-quiescent) graph fails the precheck; a graph that
    passes the precheck but still holds an unpicklable object surfaces
    the underlying error as :class:`SnapshotError` so callers can count
    it as a refusal rather than crash.
    """

    def __init__(self, root: T) -> None:
        assert_quiescent(root)
        try:
            self._blob: bytes = pickle.dumps(root, protocol=PICKLE_PROTOCOL)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"quiescent graph failed to serialize: {exc!r}"
            ) from exc

    @classmethod
    def from_blob(cls, blob: bytes) -> "EngineSnapshot[T]":
        """Wrap a blob produced by :meth:`to_blob` (no re-serialization)."""
        snapshot = cls.__new__(cls)
        snapshot._blob = bytes(blob)
        return snapshot

    def to_blob(self) -> bytes:
        """The serialized payload — portable across processes."""
        return self._blob

    def fork(self) -> T:
        """An independent restored copy of the captured simulation."""
        return pickle.loads(self._blob)

    def payload_nbytes(self) -> int:
        """Exact size of the frozen payload blob, in bytes.

        Used by :class:`SnapshotPool` and :class:`BlobStore` byte
        accounting.  Serialize-once makes this free: the blob already
        exists, so no estimation walk is needed.
        """
        return len(self._blob)


def estimate_nbytes(obj: object) -> int:
    """Best-effort deep size of ``obj`` in bytes.

    ``pickle`` length when the graph pickles (a quiescent simulation
    does: finished processes shed their generators), else a recursive
    ``sys.getsizeof`` traversal over ``__dict__``/containers.
    """
    try:
        return len(pickle.dumps(obj, protocol=PICKLE_PROTOCOL))
    except Exception:
        return _getsizeof_walk(obj)


def _getsizeof_walk(root: object) -> int:
    seen = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__"):
            stack.append(obj.__dict__)
        elif hasattr(obj, "__slots__"):
            for slot in obj.__slots__:
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


class _PoolEntry:
    __slots__ = ("snapshot", "nbytes", "forks")

    def __init__(self, snapshot: EngineSnapshot, nbytes: int) -> None:
        self.snapshot = snapshot
        self.nbytes = nbytes
        self.forks = 0


class _BuildClaim:
    """Single-flight token: first thread to miss on a key owns the build."""

    __slots__ = ("event", "owner")

    def __init__(self, owner: int) -> None:
        self.event = threading.Event()
        self.owner = owner


class SnapshotPool:
    """An LRU-bounded, byte-budgeted registry of warm snapshots.

    The experiment server keeps one pool per worker: popular setup
    prefixes (keyed by :func:`repro.harness.sweep.prefix_key`) are
    snapshotted once and then *forked* per request instead of
    cold-starting the whole simulation.  The pool enforces three
    invariants, pinned by ``tests/test_serve_pool_property.py``:

    - the summed ``nbytes`` of admitted entries never exceeds
      ``max_bytes`` (least-recently-used entries are evicted to make
      room; an entry larger than the whole budget is refused),
    - a non-quiescent simulation is never admitted — admission takes an
      :class:`EngineSnapshot`, whose constructor raises
      :class:`~repro.errors.SnapshotError` on live process frames, and
      :meth:`admit` turns that into a counted refusal,
    - eviction is transparent: a missing prefix simply cold-starts, and
      (because forked runs are byte-identical to cold ones) the served
      result is unchanged.

    Misses are **single-flight** per key: the first thread to miss owns
    the build, and concurrent threads missing on the same key block
    until the owner :meth:`admit`\\ s (or :meth:`release`\\ s) the key
    instead of all rebuilding the same prefix.  Two escape hatches keep
    this deadlock-free: the owning thread re-missing on its own key is
    handed the miss again (it is mid-build; making it wait on itself
    would hang — this also preserves the historical ``fork()`` contract
    for single-threaded callers that never admit), and a waiter whose
    builder exceeds ``build_wait_seconds`` steals the build rather than
    stall forever behind a wedged worker.

    All methods are thread-safe; the server's thread executor shares
    one pool, the process executor keeps one per worker process.
    """

    #: How long a waiter trusts another thread's in-flight build before
    #: stealing it.  Prefix builds are milliseconds; a minute means a
    #: genuinely wedged builder, not a slow one.
    BUILD_WAIT_SECONDS = 60.0

    def __init__(
        self, max_bytes: int, build_wait_seconds: Optional[float] = None
    ) -> None:
        if max_bytes < 0:
            raise ValueError(f"pool budget must be >= 0 bytes, got {max_bytes}")
        self.max_bytes = max_bytes
        self.build_wait_seconds = (
            self.BUILD_WAIT_SECONDS
            if build_wait_seconds is None
            else build_wait_seconds
        )
        self._entries: "OrderedDict[Tuple, _PoolEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._building: Dict[Tuple, _BuildClaim] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.steals = 0
        self.admitted = 0
        self.evicted = 0
        self.rejected_live = 0
        self.rejected_oversize = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def admit(
        self,
        key: Tuple,
        root: object,
        nbytes: Optional[int] = None,
    ) -> bool:
        """Snapshot ``root`` (or accept a prebuilt snapshot) under ``key``.

        Returns ``False`` — never raises — when the simulation is not
        quiescent (``rejected_live``) or larger than the entire budget
        (``rejected_oversize``).  Admitting an existing key replaces the
        old entry.  Evicts least-recently-used entries until the budget
        holds.  Always resolves this key's single-flight claim, so
        threads parked in :meth:`lookup` wake up whether admission
        succeeded or was refused.
        """
        try:
            if isinstance(root, EngineSnapshot):
                snapshot = root
            else:
                try:
                    snapshot = EngineSnapshot(root)
                except SnapshotError:
                    with self._lock:
                        self.rejected_live += 1
                    return False
            if nbytes is None:
                nbytes = snapshot.payload_nbytes()
            if nbytes < 0:
                raise ValueError(f"snapshot nbytes must be >= 0, got {nbytes}")
            with self._lock:
                if nbytes > self.max_bytes:
                    self.rejected_oversize += 1
                    return False
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old.nbytes
                self._entries[key] = _PoolEntry(snapshot, nbytes)
                self._bytes += nbytes
                while self._bytes > self.max_bytes:
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.nbytes
                    self.evicted += 1
                self.admitted += 1
            return True
        finally:
            self.release(key)

    def lookup(self, key: Tuple) -> Optional[EngineSnapshot]:
        """The warm snapshot for ``key``, or ``None`` with a build claim.

        A ``None`` return means *this caller* owns the (single-flight)
        build for ``key``: it should construct the prefix and then call
        :meth:`admit` — or :meth:`release` on failure — so waiters
        parked here wake up.  Concurrent callers missing on the same
        key block until then and re-check the pool.
        """
        me = threading.get_ident()
        deadline: Optional[float] = None
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.forks += 1
                    self.hits += 1
                    return entry.snapshot
                claim = self._building.get(key)
                if claim is None or claim.owner == me:
                    if claim is None:
                        self._building[key] = _BuildClaim(me)
                    self.misses += 1
                    return None
                self.coalesced += 1
            if deadline is None:
                deadline = time.monotonic() + self.build_wait_seconds
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not claim.event.wait(remaining):
                # The builder is wedged: steal the build instead of
                # stalling every same-prefix request behind it.
                with self._lock:
                    if self._building.get(key) is claim:
                        self._building[key] = _BuildClaim(me)
                    self.steals += 1
                    self.misses += 1
                return None

    def release(self, key: Tuple) -> None:
        """Resolve ``key``'s single-flight claim without admitting.

        Called by a claim owner whose build failed (OOM, non-quiescent
        root); waiting threads wake and the next one takes the claim.
        A no-op when no claim is outstanding.
        """
        with self._lock:
            claim = self._building.pop(key, None)
        if claim is not None:
            claim.event.set()

    def fork(self, key: Tuple):
        """A fresh runtime forked from the warm snapshot for ``key``, or
        ``None`` on a pool miss (the caller cold-starts — and owns the
        single-flight build claim, resolved by its ``admit``/``release``).
        """
        snapshot = self.lookup(key)
        if snapshot is None:
            return None
        # Fork outside the lock: the deserialization is the expensive
        # part and EngineSnapshot.fork never mutates the frozen blob.
        return snapshot.fork()

    def evict(self, key: Tuple) -> bool:
        """Explicitly drop one entry; ``True`` when it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self.evicted += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self.evicted += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, object]:
        """A JSON-able stats snapshot for ``/metrics``."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "coalesced": self.coalesced,
                "steals": self.steals,
                "admitted": self.admitted,
                "evicted": self.evicted,
                "rejected_live": self.rejected_live,
                "rejected_oversize": self.rejected_oversize,
            }


class BlobClaim:
    """A cross-process single-flight build token from
    :meth:`BlobStore.fetch_or_claim`.

    Exactly one of :meth:`publish` / :meth:`abandon` must be called;
    both drop the on-disk lock so waiting processes proceed.
    """

    __slots__ = ("_store", "_key", "_kid", "_done")

    def __init__(self, store: "BlobStore", key: Tuple, kid: str) -> None:
        self._store = store
        self._key = key
        self._kid = kid
        self._done = False

    def publish(self, blob: bytes) -> bool:
        """Write the built blob for every process on this host to fork.

        Returns ``False`` (refused, counted) when the blob exceeds the
        whole store budget.  Releases the build lock either way.
        """
        if self._done:  # pragma: no cover - double release guard
            return False
        self._done = True
        return self._store._publish(self._kid, blob)

    def abandon(self) -> None:
        """Drop the build lock without publishing (build failed)."""
        if self._done:  # pragma: no cover - double release guard
            return
        self._done = True
        self._store._drop_lock(self._kid)


class BlobStore:
    """A cross-process, file-backed store of snapshot blobs.

    One directory per host (or per sweep) holds serialized prefix
    snapshots, content-addressed by :func:`repro.harness.sweep.prefix_key`
    (``sha256`` of the key's ``repr``).  Sweep pool workers and serve
    process workers share the directory, so each popular prefix is
    *built once per host* and every other worker forks from the
    published blob instead of re-running setup.

    Like :class:`SnapshotPool` it is byte-budgeted with LRU eviction
    (recency = blob file mtime, refreshed on every hit) and refuses
    oversize blobs.  Builds are single-flight *across processes*: the
    first worker to miss atomically creates ``<id>.lock``
    (``O_CREAT | O_EXCL``) and owns the build; others poll until the
    blob appears, the lock goes stale (owner died — the waiter breaks
    it and steals the build), or ``wait_seconds`` expires (the waiter
    falls back to a private local build so one wedged worker cannot
    stall the fleet).  ``builds.log`` records one line per published
    build (append-only, ``O_APPEND`` so concurrent writers never
    interleave), which is exactly the "each prefix built once per
    host" counter CI asserts on.

    Publication is atomic (``os.replace`` of a same-directory temp
    file), so readers only ever observe absent or complete blobs.
    """

    DEFAULT_MAX_BYTES = 512 * 1024 * 1024

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        wait_seconds: float = 60.0,
        poll_seconds: float = 0.002,
        stale_lock_seconds: float = 300.0,
    ) -> None:
        if max_bytes < 0:
            raise ValueError(f"store budget must be >= 0 bytes, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.wait_seconds = wait_seconds
        self.poll_seconds = poll_seconds
        self.stale_lock_seconds = stale_lock_seconds
        # Per-instance (= per-process) counters; the on-disk state
        # (entries, bytes, builds.log) is the cross-process truth.
        self.hits = 0
        self.misses = 0
        self.published = 0
        self.evicted = 0
        self.rejected_oversize = 0
        self.lock_waits = 0
        self.lock_steals = 0
        self.wait_timeouts = 0

    @staticmethod
    def key_id(key: Tuple) -> str:
        """Stable content address for a prefix key."""
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def _blob_path(self, kid: str) -> Path:
        return self.root / f"{kid}.blob"

    def _lock_path(self, kid: str) -> Path:
        return self.root / f"{kid}.lock"

    @property
    def _log_path(self) -> Path:
        return self.root / "builds.log"

    def get(self, key: Tuple) -> Optional[bytes]:
        """The published blob for ``key``, or ``None`` (no claim taken)."""
        path = self._blob_path(self.key_id(key))
        blob = self._read(path)
        if blob is None:
            self.misses += 1
        else:
            self.hits += 1
            self._touch(path)  # a read is a use: keep LRU eviction honest
        return blob

    def fetch_or_claim(
        self, key: Tuple
    ) -> Tuple[Optional[bytes], Optional[BlobClaim]]:
        """Fetch ``key``'s blob, or claim the single-flight build for it.

        Returns one of:

        - ``(blob, None)`` — published blob found (possibly after
          waiting out another process's in-flight build),
        - ``(None, claim)`` — this process owns the build; it must
          ``claim.publish(blob)`` or ``claim.abandon()``,
        - ``(None, None)`` — another process holds the lock past
          ``wait_seconds``; the caller should build privately without
          publishing (availability over dedup).
        """
        kid = self.key_id(key)
        blob_path = self._blob_path(kid)
        lock_path = self._lock_path(kid)
        deadline: Optional[float] = None
        waited = False
        while True:
            blob = self._read(blob_path)
            if blob is not None:
                self.hits += 1
                self._touch(blob_path)
                return blob, None
            try:
                fd = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                pass
            else:
                with os.fdopen(fd, "w") as handle:
                    handle.write(f"{os.getpid()}\n")
                self.misses += 1
                return None, BlobClaim(self, key, kid)
            # Another process is building this prefix: wait for the
            # blob, break stale locks, and eventually give up and
            # build privately.
            if not waited:
                waited = True
                self.lock_waits += 1
                deadline = time.monotonic() + self.wait_seconds
            try:
                age = time.time() - lock_path.stat().st_mtime
            except OSError:
                continue  # lock vanished between open() and stat()
            if age > self.stale_lock_seconds:
                self._drop_lock(kid)
                self.lock_steals += 1
                continue
            if deadline is not None and time.monotonic() > deadline:
                self.misses += 1
                self.wait_timeouts += 1
                return None, None
            time.sleep(self.poll_seconds)

    def _publish(self, kid: str, blob: bytes) -> bool:
        try:
            if len(blob) > self.max_bytes:
                self.rejected_oversize += 1
                return False
            blob_path = self._blob_path(kid)
            tmp_path = blob_path.with_suffix(f".tmp.{os.getpid()}")
            tmp_path.write_bytes(blob)
            os.replace(tmp_path, blob_path)
            self.published += 1
            self._log_build(kid, len(blob))
            self._evict_over_budget(keep=kid)
            return True
        finally:
            self._drop_lock(kid)

    def _log_build(self, kid: str, nbytes: int) -> None:
        line = f"{kid} pid={os.getpid()} bytes={nbytes}\n".encode("ascii")
        fd = os.open(
            self._log_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def _drop_lock(self, kid: str) -> None:
        try:
            os.unlink(self._lock_path(kid))
        except OSError:
            pass

    def _read(self, path: Path) -> Optional[bytes]:
        try:
            return path.read_bytes()
        except OSError:
            return None

    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - concurrent eviction
            pass

    def _entries_by_age(self):
        entries = []
        for path in self.root.glob("*.blob"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        entries = self._entries_by_age()
        total = sum(size for _, size, _ in entries)
        keep_path = self._blob_path(keep) if keep else None
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep_path is not None and path == keep_path:
                continue
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            self.evicted += 1

    def build_counts(self) -> Dict[str, int]:
        """Published builds per key id, parsed from ``builds.log``.

        The host-wide single-flight invariant is that every value here
        is 1 (modulo post-eviction rebuilds); CI asserts exactly that.
        """
        counts: Dict[str, int] = {}
        try:
            text = self._log_path.read_text()
        except OSError:
            return counts
        for line in text.splitlines():
            kid = line.split(" ", 1)[0]
            if kid:
                counts[kid] = counts.get(kid, 0) + 1
        return counts

    def stats(self) -> Dict[str, object]:
        """A JSON-able stats snapshot for ``/metrics``.

        Mixes per-process counters (hits/misses/...) with on-disk,
        host-wide truth (entries, bytes, total/distinct builds).
        """
        entries = self._entries_by_age()
        counts = self.build_counts()
        lookups = self.hits + self.misses
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "published": self.published,
            "evicted": self.evicted,
            "rejected_oversize": self.rejected_oversize,
            "lock_waits": self.lock_waits,
            "lock_steals": self.lock_steals,
            "wait_timeouts": self.wait_timeouts,
            "builds_total": sum(counts.values()),
            "builds_distinct": len(counts),
        }


def resolve_prefix_snapshot(
    key: Tuple,
    build: Callable[[], Optional[object]],
    pool: Optional[SnapshotPool] = None,
    store: Optional[BlobStore] = None,
) -> Tuple[Optional[EngineSnapshot], Optional[str]]:
    """Resolve the warm snapshot for ``key`` through the shared hierarchy.

    Lookup order: per-process :class:`SnapshotPool` (zero-copy hit),
    then the host-wide :class:`BlobStore` (one ``pickle.loads`` away),
    then ``build()`` — a callable returning the quiesced prefix
    runtime, or ``None`` when the prefix itself fails (e.g. setup OOM).
    Both layers are single-flight: concurrent same-key callers block on
    the pool claim, concurrent same-key *processes* block on the store
    lock, so each prefix is built once per host.

    Returns ``(snapshot, origin)`` with origin ``"pool"`` / ``"blob"``
    / ``"built"``, or ``(None, None)`` when ``build()`` declined or the
    built runtime was not quiescent.  All claims are resolved on every
    path, including exceptions.
    """
    if pool is not None:
        snapshot = pool.lookup(key)
        if snapshot is not None:
            return snapshot, "pool"
    # A pool miss leaves this caller holding the pool's build claim;
    # release it on every failure path so waiters are not stranded.
    claim: Optional[BlobClaim] = None
    try:
        blob: Optional[bytes] = None
        if store is not None:
            blob, claim = store.fetch_or_claim(key)
        if blob is not None:
            snapshot = EngineSnapshot.from_blob(blob)
            origin = "blob"
        else:
            root = build()
            if root is None:
                if claim is not None:
                    claim.abandon()
                    claim = None
                if pool is not None:
                    pool.release(key)
                return None, None
            try:
                snapshot = EngineSnapshot(root)
            except SnapshotError:
                if claim is not None:
                    claim.abandon()
                    claim = None
                if pool is not None:
                    pool.release(key)
                return None, None
            if claim is not None:
                claim.publish(snapshot.to_blob())
                claim = None
            origin = "built"
        if pool is not None:
            # admit() resolves the pool claim (success or refusal).
            pool.admit(key, snapshot, nbytes=snapshot.payload_nbytes())
        return snapshot, origin
    except BaseException:
        if claim is not None:
            claim.abandon()
        if pool is not None:
            pool.release(key)
        raise
