"""Deterministic snapshot/fork of a quiescent simulation.

A snapshot captures an entire simulation object graph — typically a
:class:`~repro.cuda.runtime.CudaRuntime`, i.e. the
:class:`~repro.engine.core.Environment` (clock, recycled-timeout pool),
the driver (va_blocks, page queues, frame allocators, in-flight locks),
the instruments (traffic, RMT, counters, event log) and the GPU
executors — with one :func:`copy.deepcopy`.  :meth:`EngineSnapshot.fork`
then deep-copies the frozen payload again, yielding an independent
restored simulation that continues *bit-for-bit* like the original
would have.

The one restriction is **quiescence**: Python generator frames (live
processes) cannot be copied, so a snapshot may only be taken when the
event heap is empty and every process has finished.  The sweep harness
arranges exactly that by splitting workloads into a CPU-only setup
prefix and a measured body (see :mod:`repro.harness.sweep`); the
boundary between them is quiescent by construction because host-side
setup is fully synchronous.

Two details make the copy exact:

- :meth:`Process.__deepcopy__ <repro.engine.core.Process.__deepcopy__>`
  keeps a finished process's outcome (streams hold their tail processes
  forever) while shedding the exhausted generator — and raises
  :class:`~repro.errors.SnapshotError` if a *live* process sneaks into
  the graph, so a non-quiescent snapshot fails loudly instead of
  corrupting silently.
- the engine's ``_PENDING`` sentinel preserves identity across copies,
  so ``is``-based "value not set" checks keep working in the fork.

Forked runs are indistinguishable from cold runs in every *observable*:
simulated times, traffic bytes, RMT classification, counters, event-log
entries.  The only divergent internals are event sequence numbers (the
fork's counter continues from the prefix, a cold run's counts setup
bootstrap events too) and the identity of recycled timeout objects —
both are tie-breakers/allocation details with no behavioural effect
when the heap is empty at the boundary, which tests pin down
(``tests/test_snapshot_fork.py``).
"""

from __future__ import annotations

import copy
import pickle
import sys
import threading
from collections import OrderedDict
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.errors import SnapshotError

T = TypeVar("T")


def assert_quiescent(root: object) -> None:
    """Raise :class:`SnapshotError` unless ``root`` can be snapshotted.

    Duck-typed: if ``root`` exposes a ``snapshot_precheck()`` hook (the
    runtime, the driver), it is invoked; otherwise an ``env`` attribute
    with an empty heap is required.
    """
    precheck = getattr(root, "snapshot_precheck", None)
    if precheck is not None:
        precheck()
        return
    env = getattr(root, "env", root)
    quiescent = getattr(env, "quiescent", None)
    if quiescent is None:
        raise SnapshotError(
            f"{type(root).__name__} exposes neither snapshot_precheck() "
            "nor an environment to check for quiescence"
        )
    if not quiescent:
        raise SnapshotError(
            "snapshot requested with events still on the heap; run the "
            "simulation to quiescence first"
        )


class EngineSnapshot(Generic[T]):
    """A frozen deep copy of a quiescent simulation graph.

    The constructor captures ``root`` (after :func:`assert_quiescent`);
    :meth:`fork` returns a fresh, fully independent restored copy each
    time it is called.  The captured payload itself is never handed out,
    so a snapshot can seed any number of divergent continuations.
    """

    def __init__(self, root: T) -> None:
        assert_quiescent(root)
        self._payload: T = copy.deepcopy(root)

    def fork(self) -> T:
        """An independent restored copy of the captured simulation."""
        return copy.deepcopy(self._payload)

    def payload_nbytes(self) -> int:
        """Estimated in-memory footprint of the frozen payload, in bytes.

        Used by :class:`SnapshotPool` byte accounting.  A quiescent
        payload has no live generator frames, so it normally pickles;
        unpicklable graphs fall back to a recursive ``sys.getsizeof``
        walk.  Either way the estimate is deterministic for a given
        payload shape.
        """
        return estimate_nbytes(self._payload)


def estimate_nbytes(obj: object) -> int:
    """Best-effort deep size of ``obj`` in bytes.

    ``pickle`` length when the graph pickles (a quiescent simulation
    does: finished processes shed their generators), else a recursive
    ``sys.getsizeof`` traversal over ``__dict__``/containers.
    """
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return _getsizeof_walk(obj)


def _getsizeof_walk(root: object) -> int:
    seen = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__"):
            stack.append(obj.__dict__)
        elif hasattr(obj, "__slots__"):
            for slot in obj.__slots__:
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


class _PoolEntry:
    __slots__ = ("snapshot", "nbytes", "forks")

    def __init__(self, snapshot: EngineSnapshot, nbytes: int) -> None:
        self.snapshot = snapshot
        self.nbytes = nbytes
        self.forks = 0


class SnapshotPool:
    """An LRU-bounded, byte-budgeted registry of warm snapshots.

    The experiment server keeps one pool per worker: popular setup
    prefixes (keyed by :func:`repro.harness.sweep.prefix_key`) are
    snapshotted once and then *forked* per request instead of
    cold-starting the whole simulation.  The pool enforces three
    invariants, pinned by ``tests/test_serve_pool_property.py``:

    - the summed ``nbytes`` of admitted entries never exceeds
      ``max_bytes`` (least-recently-used entries are evicted to make
      room; an entry larger than the whole budget is refused),
    - a non-quiescent simulation is never admitted — admission takes an
      :class:`EngineSnapshot`, whose constructor raises
      :class:`~repro.errors.SnapshotError` on live process frames, and
      :meth:`admit` turns that into a counted refusal,
    - eviction is transparent: a missing prefix simply cold-starts, and
      (because forked runs are byte-identical to cold ones) the served
      result is unchanged.

    All methods are thread-safe; the server's thread executor shares
    one pool, the process executor keeps one per worker process.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError(f"pool budget must be >= 0 bytes, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, _PoolEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.evicted = 0
        self.rejected_live = 0
        self.rejected_oversize = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def admit(
        self,
        key: Tuple,
        root: object,
        nbytes: Optional[int] = None,
    ) -> bool:
        """Snapshot ``root`` (or accept a prebuilt snapshot) under ``key``.

        Returns ``False`` — never raises — when the simulation is not
        quiescent (``rejected_live``) or larger than the entire budget
        (``rejected_oversize``).  Admitting an existing key replaces the
        old entry.  Evicts least-recently-used entries until the budget
        holds.
        """
        if isinstance(root, EngineSnapshot):
            snapshot = root
        else:
            try:
                snapshot = EngineSnapshot(root)
            except SnapshotError:
                with self._lock:
                    self.rejected_live += 1
                return False
        if nbytes is None:
            nbytes = snapshot.payload_nbytes()
        if nbytes < 0:
            raise ValueError(f"snapshot nbytes must be >= 0, got {nbytes}")
        with self._lock:
            if nbytes > self.max_bytes:
                self.rejected_oversize += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _PoolEntry(snapshot, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evicted += 1
            self.admitted += 1
        return True

    def fork(self, key: Tuple):
        """A fresh runtime forked from the warm snapshot for ``key``, or
        ``None`` on a pool miss (the caller cold-starts)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.forks += 1
            self.hits += 1
            snapshot = entry.snapshot
        # Fork outside the lock: the deepcopy is the expensive part and
        # EngineSnapshot.fork never mutates the frozen payload.
        return snapshot.fork()

    def evict(self, key: Tuple) -> bool:
        """Explicitly drop one entry; ``True`` when it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self.evicted += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self.evicted += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, object]:
        """A JSON-able stats snapshot for ``/metrics``."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "admitted": self.admitted,
                "evicted": self.evicted,
                "rejected_live": self.rejected_live,
                "rejected_oversize": self.rejected_oversize,
            }
