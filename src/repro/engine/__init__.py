"""Discrete-event simulation engine.

A minimal, dependency-free process-based simulation kernel in the style of
SimPy.  Simulation *processes* are Python generators that ``yield``
awaitable primitives:

- :class:`~repro.engine.core.Timeout` — advance the virtual clock,
- :class:`~repro.engine.core.Event` — wait until another process triggers,
- :class:`~repro.engine.core.Process` — wait for a child process to finish,
- :class:`~repro.engine.resources.Request` — acquire a FIFO resource slot.

The engine drives everything from a single binary heap of scheduled events,
so runs are fully deterministic: identical inputs produce identical traces,
which the test suite relies on heavily.
"""

from repro.engine.core import Environment, Event, Interrupt, Process, Timeout
from repro.engine.resources import Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Resource",
    "Store",
]
