"""Core of the discrete-event engine: environment, events, processes.

The design follows the classic event-loop pattern: an
:class:`Environment` owns a heap of ``(time, sequence, event)`` triples.
Running the simulation pops events in time order and, for each, resumes the
generator-based processes waiting on it.  The ``sequence`` counter breaks
ties deterministically (FIFO among simultaneous events).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules it for processing, after which every waiting process is
    resumed with the event's value (or has the exception thrown into it).
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled for processing."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value read before the event fired")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (no exception)."""
        return self._scheduled and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking waiters with ``value``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._value = value
        self._scheduled = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception, which propagates to waiters."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self._value = exception
        self._scheduled = True
        self.env._schedule(self)
        return self

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._scheduled = True
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an :class:`Event` that fires when the generator
    returns, carrying the generator's return value; this is what makes
    ``yield env.process(child())`` work for fork/join composition.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        initial = Event(env)
        initial._value = None
        initial._scheduled = True
        initial.callbacks.append(self._resume)
        env._schedule(initial)

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._scheduled:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            # Detach from whatever the process was waiting on, so the
            # original event cannot resume the process a second time.
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interruption = Event(self.env)
        interruption._value = Interrupt(cause)
        interruption._exception = Interrupt(cause)
        interruption._scheduled = True
        interruption.callbacks.append(self._resume)
        self.env._schedule(interruption)

    # Used as an event callback, hence the event-shaped signature.
    def __call__(self, event: Event) -> None:
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self._value = getattr(stop, "value", None)
            self._scheduled = True
            self.env._schedule(self)
            return
        except Interrupt:
            # An uncaught interrupt terminates the process quietly.
            self._value = None
            self._scheduled = True
            self.env._schedule(self)
            return
        except Exception as exc:
            if not self.callbacks:
                raise
            self._exception = exc
            self._value = exc
            self._scheduled = True
            self.env._schedule(self)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
        if target.callbacks is None:
            # Already processed: resume immediately via a proxy event.
            proxy = Event(self.env)
            proxy._value = target._value
            proxy._exception = target._exception
            proxy._scheduled = True
            proxy.callbacks.append(self._resume)
            self.env._schedule(proxy)
        else:
            target.callbacks.append(self._resume)
        self._target = target


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.callbacks is None:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._scheduled:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class Environment:
    """The simulation environment: virtual clock plus the event heap."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def step(self) -> None:
        """Process the single next event on the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        time, _seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError(f"time went backwards: {time} < {self._now}")
        self._now = time
        event._process_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain everything), a number (absolute
        simulation time), or an :class:`Event` whose firing stops the run
        and whose value is returned.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation starved before the awaited event fired"
                    )
                self.step()
            if sentinel._exception is not None:
                raise sentinel._exception
            return sentinel._value
        deadline = float(until) if until is not None else None
        while self._heap:
            next_time = self._heap[0][0]
            if deadline is not None and next_time > deadline:
                self._now = deadline
                return None
            self.step()
        if deadline is not None and deadline > self._now:
            self._now = deadline
        return None
