"""Core of the discrete-event engine: environment, events, processes.

The design follows the classic event-loop pattern: an
:class:`Environment` owns a heap of ``(time, sequence, event)`` triples.
Running the simulation pops events in time order and, for each, resumes the
generator-based processes waiting on it.  The ``sequence`` counter breaks
ties deterministically (FIFO among simultaneous events).

Hot-path notes
--------------
This module is the innermost loop of every simulation, so it trades a
little uniformity for speed:

- every event class declares ``__slots__`` (no per-event ``__dict__``),
- :meth:`Environment.run` inlines the step loop (no per-event method
  dispatch through :meth:`Environment.step`, which remains available for
  manual stepping),
- :class:`Process` resumes through already-processed targets
  *synchronously* instead of scheduling a proxy event per yield, so a
  chain of satisfied dependencies costs zero heap traffic,
- :meth:`Environment.timeout` recycles :class:`Timeout` objects through a
  small pool.  A timeout is recycled only when the run loop can prove it
  is unreferenced (``sys.getrefcount``), so holding on to a timeout and
  inspecting it later remains safe,
- plain :class:`Event` objects are recycled through a second arena under
  the same refcount proof, so the succeed/resume churn of stores and
  resources allocates nothing in steady state,
- zero-delay events (the majority under contention: grants, store gets,
  process bootstraps and completions) bypass the heap entirely via a
  FIFO *now-queue*.  Ordering is unchanged: every event still carries a
  global sequence number, and the pop rule compares ``(time, seq)``
  across both structures, so the processed order is bit-identical to a
  single-heap engine — the now-queue only removes the O(log n) sift
  cost from events that could never sort before the current time.

Both arenas live on the :class:`Environment` and are ordinary state to
``deepcopy``, so a forked :class:`~repro.engine.snapshot.EngineSnapshot`
inherits warm pools and keeps reusing them.
"""

from __future__ import annotations

import sys
from collections import deque
from heapq import heappop, heappush
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import SimulationError, SnapshotError


class _PendingType:
    """Sentinel distinguishing "no value yet" from a legitimate ``None``.

    A dedicated class (instead of a bare ``object()``) so that deep
    copies *and pickles* of snapshotted event graphs preserve
    *identity*: ``is`` checks against the sentinel must keep working in
    a forked run, whether the fork came from ``copy.deepcopy`` or from
    the serialize-once blob transport
    (:meth:`repro.engine.snapshot.EngineSnapshot.to_blob`).
    """

    __slots__ = ()

    def __copy__(self) -> "_PendingType":
        return self

    def __deepcopy__(self, memo) -> "_PendingType":
        return self

    def __reduce__(self):
        # Unpickle to the module-level singleton, never a new instance.
        return (_restore_pending, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pending>"


def _restore_pending() -> "_PendingType":
    """Pickle target restoring the :data:`_PENDING` singleton."""
    return _PENDING


_PENDING = _PendingType()

#: Upper bound on the per-environment pool of recycled Timeout objects.
_TIMEOUT_POOL_LIMIT = 128

#: Upper bound on the per-environment arena of recycled plain Events.
_EVENT_POOL_LIMIT = 256


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules it for processing, after which every waiting process is
    resumed with the event's value (or has the exception thrown into it).
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled for processing."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value read before the event fired")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (no exception)."""
        return self._scheduled and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking waiters with ``value``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._value = value
        self._scheduled = True
        # Inlined Environment._schedule(delay=0): firing an event is the
        # hottest scheduling site, and a zero delay always lands on the
        # now-queue.
        env = self.env
        sequence = env._sequence
        env._sequence = sequence + 1
        env._now_queue.append((sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception, which propagates to waiters."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self._value = exception
        self._scheduled = True
        self.env._schedule(self)
        return self

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ — timeouts are the most-allocated event
        # kind, and they are born already triggered.
        self.env = env
        self.callbacks = []
        self._value = value
        self._exception = None
        self._scheduled = True
        self.delay = delay
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an :class:`Event` that fires when the generator
    returns, carrying the generator's return value; this is what makes
    ``yield env.process(child())`` work for fork/join composition.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime: every wait appends
        # this callback, and binding it once avoids a fresh bound-method
        # allocation per yield.
        self._resume_cb = self._resume
        # Bootstrap: resume the generator at the current simulation time.
        # The bootstrap event comes from the arena — it dies as soon as
        # the resume runs, so it is the single most-recycled event kind.
        initial = env.event()
        initial._value = None
        initial._scheduled = True
        initial.callbacks.append(self._resume_cb)
        env._schedule(initial)

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._scheduled:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            # Detach from whatever the process was waiting on, so the
            # original event cannot resume the process a second time.
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        interruption = Event(self.env)
        interruption._value = Interrupt(cause)
        interruption._exception = Interrupt(cause)
        interruption._scheduled = True
        interruption.callbacks.append(self._resume_cb)
        self.env._schedule(interruption)

    # Used as an event callback, hence the event-shaped signature.
    def __call__(self, event: Event) -> None:
        self._resume(event)

    def __deepcopy__(self, memo: dict) -> "Process":
        # Generator frames cannot be deep-copied, so only *finished*
        # processes (whose generators are exhausted and droppable) may
        # appear in a snapshot graph.  Finished processes linger as
        # stream tails and event values; the copy keeps their outcome
        # but sheds the dead generator.
        import copy as _copy

        if self.callbacks is not None:
            raise SnapshotError(
                "cannot deep-copy a live process; snapshots are only "
                "legal at quiescence (empty event heap, every process "
                "finished)"
            )
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        clone.env = _copy.deepcopy(self.env, memo)
        clone.callbacks = None
        clone._value = _copy.deepcopy(self._value, memo)
        clone._exception = _copy.deepcopy(self._exception, memo)
        clone._scheduled = self._scheduled
        clone._generator = None
        clone._target = None
        clone._resume_cb = clone._resume
        return clone

    # Pickle parity with __deepcopy__: the serialize-once snapshot
    # transport (EngineSnapshot.to_blob) pickles the live quiescent
    # graph directly, so pickling must shed the exhausted generator the
    # same way a deep copy does — and refuse live processes with the
    # same SnapshotError instead of pickle's opaque TypeError.

    def __getstate__(self):
        if self.callbacks is not None:
            raise SnapshotError(
                "cannot pickle a live process; snapshots are only "
                "legal at quiescence (empty event heap, every process "
                "finished)"
            )
        return (self.env, self._value, self._exception, self._scheduled)

    def __setstate__(self, state) -> None:
        self.env, self._value, self._exception, self._scheduled = state
        self.callbacks = None
        self._generator = None
        self._target = None
        self._resume_cb = self._resume

    def _resume(self, event: Event) -> None:
        self._target = None
        generator = self._generator
        # Resume the generator, following chains of already-processed
        # targets synchronously: yielding a satisfied event costs one
        # ``send`` and no heap traffic (the previous design scheduled a
        # proxy event per such yield).
        while True:
            try:
                if event._exception is not None:
                    target = generator.throw(event._exception)
                else:
                    target = generator.send(event._value)
            except StopIteration as stop:
                self._value = getattr(stop, "value", None)
                self._scheduled = True
                env = self.env
                sequence = env._sequence
                env._sequence = sequence + 1
                env._now_queue.append((sequence, self))
                return
            except Interrupt:
                # An uncaught interrupt terminates the process quietly.
                self._value = None
                self._scheduled = True
                self.env._schedule(self)
                return
            except Exception as exc:
                if not self.callbacks:
                    raise
                self._exception = exc
                self._value = exc
                self._scheduled = True
                self.env._schedule(self)
                return
            # Duck-typed Event check: one attribute load covers both the
            # "is this an Event" validation (anything else has no
            # ``callbacks`` and raises below) and the processed test.
            try:
                target_callbacks = target.callbacks
            except AttributeError:
                raise SimulationError(
                    f"process yielded {target!r}; processes must yield "
                    "Event instances"
                ) from None
            if target_callbacks is None:
                # Already processed: resume with its outcome immediately.
                event = target
                continue
            target_callbacks.append(self._resume_cb)
            self._target = target
            return


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.callbacks is None:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._scheduled:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class Environment:
    """The simulation environment: virtual clock plus the event heap."""

    __slots__ = ("_now", "_heap", "_buckets", "_now_queue", "_sequence",
                 "_timeout_pool", "_event_pool", "_monitors", "_event_count")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Future events live in per-timestamp FIFO buckets; the heap
        # orders only the *unique* timestamps.  Plain-float heap
        # comparisons are ~3x cheaper than the classic (time, seq, event)
        # tuple compares, and simultaneous events (very common: every
        # config cost is a fixed constant, so co-scheduled processes
        # collide on the same float) skip the sift entirely.  Within one
        # bucket FIFO order *is* sequence order, because sequences are
        # handed out monotonically.
        self._heap: List[float] = []
        self._buckets: Dict[float, List[Tuple[int, Event]]] = {}
        # Zero-delay events in FIFO (= sequence) order.  Every entry was
        # scheduled at the *current* simulation time, and the pop rule
        # drains the queue before the clock may advance, so each entry's
        # implicit timestamp is always ``self._now``.
        self._now_queue: Deque[Tuple[int, Event]] = deque()
        self._sequence = 0
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        # Per-event observers, called after each processed event with
        # (env, event_count).  Kept as a plain list whose *binding* is
        # replaced on mutation, so an in-flight iteration in the run loop
        # never sees a half-updated list.  Empty in the common case: the
        # loops pay one truthiness test per event.
        self._monitors: List[Callable[["Environment", int], None]] = []
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Events processed so far — the monotone injection/cadence clock
        used by the chaos injector and the online validator.  Advances by
        exactly one per processed event, so with a fixed program and a
        fixed seed it is a deterministic schedule coordinate."""
        return self._event_count

    def add_monitor(
        self, monitor: Callable[["Environment", int], None]
    ) -> Callable[["Environment", int], None]:
        """Register a per-event observer; returns it for later removal.

        Monitors run after every processed event, in registration order,
        at the then-current simulation time.  They may schedule new
        events/processes (the chaos injector does) but must not raise
        unless the whole run should abort (the strict validator does).
        """
        self._monitors = self._monitors + [monitor]
        return monitor

    def remove_monitor(
        self, monitor: Callable[["Environment", int], None]
    ) -> None:
        """Unregister a monitor; no-op when it is not installed."""
        self._monitors = [m for m in self._monitors if m is not monitor]

    @property
    def quiescent(self) -> bool:
        """Whether no event is scheduled (nothing can happen without
        outside input) — the only state a snapshot may capture."""
        return not self._heap and not self._now_queue

    @property
    def heap_depth(self) -> int:
        """Number of scheduled events — the engine's backlog gauge,
        sampled by the metrics monitor.  Includes cancelled-but-unpopped
        heap entries, matching what the run loop actually holds."""
        return len(self._now_queue) + sum(map(len, self._buckets.values()))

    def advance(self, delta: float) -> None:
        """Jump the clock forward by ``delta`` seconds.

        Only legal at quiescence: with events on the heap the jump would
        make their scheduled times lie in the past.  Used by the
        steady-state fast-forward to replay a verified per-iteration
        time delta without re-simulating the events behind it.
        """
        if delta < 0:
            raise ValueError(f"cannot advance time backwards: {delta}")
        if self._heap or self._now_queue:
            raise SimulationError(
                "advance() with events on the heap would move scheduled "
                "times into the past"
            )
        self._now += delta

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        sequence = self._sequence
        self._sequence = sequence + 1
        if delay == 0.0:
            self._now_queue.append((sequence, event))
            return
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(sequence, event)]
            heappush(self._heap, time)
        else:
            bucket.append((sequence, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            # Recycled entries carry a cleared callbacks list already.
            timeout._value = value
            timeout._exception = None
            timeout._scheduled = True
            timeout.delay = delay
            # Inlined _schedule: timeouts are the most-scheduled event.
            sequence = self._sequence
            self._sequence = sequence + 1
            if delay == 0.0:
                self._now_queue.append((sequence, timeout))
            else:
                time = self._now + delay
                bucket = self._buckets.get(time)
                if bucket is None:
                    self._buckets[time] = [(sequence, timeout)]
                    heappush(self._heap, time)
                else:
                    bucket.append((sequence, timeout))
            return timeout
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh pending event (arena-recycled when possible)."""
        pool = self._event_pool
        if pool:
            # Recycled entries were reset on their way into the arena
            # (cleared callbacks list, pending value, no exception).
            event = pool.pop()
            event._scheduled = False
            return event
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def _pop_next(self) -> Event:
        """Remove and return the next event in ``(time, sequence)`` order.

        The pop rule that makes the split heap/now-queue representation
        behave exactly like one big heap: a heap entry wins only when its
        timestamp has already been reached *and* its sequence number is
        older than the now-queue head; otherwise the now-queue (implicit
        timestamp ``self._now``) goes first.
        """
        nowq = self._now_queue
        heap = self._heap
        buckets = self._buckets
        if nowq:
            if (
                heap
                and heap[0] <= self._now
                and buckets[heap[0]][0][0] < nowq[0][0]
            ):
                time = heap[0]
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: {time} < {self._now}"
                    )
                bucket = buckets[time]
                event = bucket.pop(0)[1]
                if not bucket:
                    heappop(heap)
                    del buckets[time]
                return event
            return nowq.popleft()[1]
        time = heap[0]
        if time < self._now:
            raise SimulationError(f"time went backwards: {time} < {self._now}")
        bucket = buckets[time]
        event = bucket.pop(0)[1]
        if not bucket:
            heappop(heap)
            del buckets[time]
        self._now = time
        return event

    def step(self) -> None:
        """Process the single next event on the heap."""
        if not self._heap and not self._now_queue:
            raise SimulationError("step() on an empty event heap")
        event = self._pop_next()
        event._process_callbacks()
        self._event_count += 1
        if self._monitors:
            count = self._event_count
            for monitor in self._monitors:
                monitor(self, count)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain everything), a number (absolute
        simulation time), or an :class:`Event` whose firing stops the run
        and whose value is returned.
        """
        heap = self._heap
        nowq = self._now_queue
        buckets = self._buckets
        pool = self._timeout_pool
        arena = self._event_pool
        getrefcount = sys.getrefcount
        pending = _PENDING
        if isinstance(until, Event):
            sentinel = until
            while sentinel.callbacks is not None:
                if nowq:
                    if (
                        heap
                        and heap[0] <= self._now
                        and buckets[heap[0]][0][0] < nowq[0][0]
                    ):
                        time = heap[0]
                        if time < self._now:
                            raise SimulationError(
                                f"time went backwards: {time} < {self._now}"
                            )
                        bucket = buckets[time]
                        event = bucket.pop(0)[1]
                        if not bucket:
                            heappop(heap)
                            del buckets[time]
                    else:
                        event = nowq.popleft()[1]
                elif heap:
                    time = heap[0]
                    if time < self._now:
                        raise SimulationError(
                            f"time went backwards: {time} < {self._now}"
                        )
                    bucket = buckets[time]
                    event = bucket.pop(0)[1]
                    if not bucket:
                        heappop(heap)
                        del buckets[time]
                    self._now = time
                else:
                    raise SimulationError(
                        "simulation starved before the awaited event fired"
                    )
                callbacks = event.callbacks
                event.callbacks = None  # type: ignore[assignment]
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                cls = type(event)
                if cls is Timeout:
                    if len(pool) < _TIMEOUT_POOL_LIMIT and getrefcount(event) == 2:
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                elif cls is Event:
                    if len(arena) < _EVENT_POOL_LIMIT and getrefcount(event) == 2:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = pending
                        event._exception = None
                        arena.append(event)
                self._event_count += 1
                if self._monitors:
                    count = self._event_count
                    for monitor in self._monitors:
                        monitor(self, count)
            if sentinel._exception is not None:
                raise sentinel._exception
            return sentinel._value
        deadline = float(until) if until is not None else None
        while True:
            if nowq:
                if deadline is not None and self._now > deadline:
                    self._now = deadline
                    return None
                if (
                    heap
                    and heap[0] <= self._now
                    and buckets[heap[0]][0][0] < nowq[0][0]
                ):
                    time = heap[0]
                    if time < self._now:
                        raise SimulationError(
                            f"time went backwards: {time} < {self._now}"
                        )
                    bucket = buckets[time]
                    event = bucket.pop(0)[1]
                    if not bucket:
                        heappop(heap)
                        del buckets[time]
                else:
                    event = nowq.popleft()[1]
            elif heap:
                time = heap[0]
                if deadline is not None and time > deadline:
                    self._now = deadline
                    return None
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: {time} < {self._now}"
                    )
                bucket = buckets[time]
                event = bucket.pop(0)[1]
                if not bucket:
                    heappop(heap)
                    del buckets[time]
                self._now = time
            else:
                break
            callbacks = event.callbacks
            event.callbacks = None  # type: ignore[assignment]
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            # Recycle events nobody references anymore: the only live
            # references are the loop variable and getrefcount's
            # argument, so reuse cannot be observed from outside.  Exact
            # types only — subclasses (Process, Request, AllOf) carry
            # extra state and stay garbage-collected.
            cls = type(event)
            if cls is Timeout:
                if len(pool) < _TIMEOUT_POOL_LIMIT and getrefcount(event) == 2:
                    callbacks.clear()
                    event.callbacks = callbacks
                    pool.append(event)
            elif cls is Event:
                if len(arena) < _EVENT_POOL_LIMIT and getrefcount(event) == 2:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = pending
                    event._exception = None
                    arena.append(event)
            self._event_count += 1
            if self._monitors:
                count = self._event_count
                for monitor in self._monitors:
                    monitor(self, count)
        if deadline is not None and deadline > self._now:
            self._now = deadline
        return None
