"""Shared resources for the discrete-event engine.

:class:`Resource` models a pool of identical slots acquired in FIFO order;
the simulator uses one for each GPU's SM engine (kernel serialization) and
one per copy-engine direction (transfer serialization).  :class:`Store`
is an unbounded FIFO of items used for work queues between processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.engine.core import Environment, Event
from repro.errors import SimulationError


class Request(Event):
    """A pending acquisition of one resource slot.

    Fires when the slot is granted.  Must be released via
    :meth:`Resource.release` (or used through :meth:`Resource.acquire`).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A FIFO resource with ``capacity`` identical slots."""

    __slots__ = ("env", "capacity", "name", "_queue", "_users")

    def __init__(
        self, env: Environment, capacity: int = 1, name: "str | None" = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Observability label (e.g. ``"h2d"``); never read on hot paths.
        self.name = name
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Create a request for one slot; yields when granted."""
        return Request(self)

    def try_acquire(self) -> "Request | None":
        """Grant a slot synchronously if one is free, else return ``None``.

        The fast path for uncontended resources: no event is scheduled and
        nothing is enqueued, so a grant costs one list append.  The
        returned request is already processed (``yield``-able as a no-op)
        and must be returned with :meth:`release` like any other.
        """
        if self._queue or len(self._users) >= self.capacity:
            return None
        granted = Request.__new__(Request)
        granted.env = self.env
        granted.callbacks = None  # born processed; waiters resume inline
        granted._value = granted
        granted._exception = None
        granted._scheduled = True
        granted.resource = self
        self._users.append(granted)
        return granted

    def release(self, request: Request) -> None:
        """Return a previously granted slot to the pool."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release() of a slot that was never granted")
        self._grant_waiters()

    def acquire(self, holder: Generator) -> Generator:
        """Run ``holder`` (a generator) while holding one slot.

        Convenience wrapper encapsulating request/try/finally-release::

            yield from resource.acquire(self._do_transfer(...))
        """
        request = self.request()
        yield request
        try:
            result = yield self.env.process(holder)
        finally:
            self.release(request)
        return result

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)
        self._grant_waiters()

    def _cancel(self, request: Request) -> None:
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cancel() of a request that is not queued")

    def _grant_waiters(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            granted = self._queue.popleft()
            self._users.append(granted)
            granted.succeed(granted)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item, blocking the caller until one is available.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event firing with the next item (immediately if available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
