"""Shared resources for the discrete-event engine.

:class:`Resource` models a pool of identical slots acquired in FIFO order;
the simulator uses one for each GPU's SM engine (kernel serialization) and
one per copy-engine direction (transfer serialization).  :class:`Store`
is an unbounded FIFO of items used for work queues between processes.
"""

from __future__ import annotations

from collections import deque
from sys import getrefcount
from typing import Any, Deque, Generator, List, Optional

from repro.engine.core import Environment, Event, _PENDING
from repro.errors import SimulationError


class Request(Event):
    """A pending acquisition of one resource slot.

    Fires when the slot is granted.  Must be released via
    :meth:`Resource.release` (or used through :meth:`Resource.acquire`).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A FIFO resource with ``capacity`` identical slots."""

    __slots__ = ("env", "capacity", "name", "_queue", "_users", "_spare")

    def __init__(
        self, env: Environment, capacity: int = 1, name: "str | None" = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Observability label (e.g. ``"h2d"``); never read on hot paths.
        self.name = name
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []
        # Released Request objects recycled by request()/try_acquire().
        # Only requests whose sole remaining reference is the releasing
        # holder's local are stashed (refcount check in release), so a
        # recycled object can never be observed changing state by anyone
        # still legitimately holding it.
        self._spare: List[Request] = []

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Create a request for one slot; yields when granted."""
        # Inlined Request.__init__/_enqueue: under contention (queue
        # non-empty or at capacity) the request just parks, so the
        # constructor-chain and grant-scan cost would be pure overhead.
        spare = self._spare
        if spare:
            request = spare.pop()
        else:
            request = Request.__new__(Request)
            request.env = self.env
            request.resource = self
        request.callbacks = []
        request._value = _PENDING
        request._exception = None
        request._scheduled = False
        self._queue.append(request)
        if len(self._users) < self.capacity:
            self._grant_waiters()
        return request

    def try_acquire(self) -> "Request | None":
        """Grant a slot synchronously if one is free, else return ``None``.

        The fast path for uncontended resources: no event is scheduled and
        nothing is enqueued, so a grant costs one list append.  The
        returned request is already processed (``yield``-able as a no-op)
        and must be returned with :meth:`release` like any other.
        """
        if self._queue or len(self._users) >= self.capacity:
            return None
        spare = self._spare
        if spare:
            granted = spare.pop()
        else:
            granted = Request.__new__(Request)
            granted.env = self.env
            granted.resource = self
        granted.callbacks = None  # born processed; waiters resume inline
        granted._value = granted
        granted._exception = None
        granted._scheduled = True
        self._users.append(granted)
        return granted

    def release(self, request: Request) -> None:
        """Return a previously granted slot to the pool."""
        users = self._users
        try:
            users.remove(request)
        except ValueError:
            raise SimulationError("release() of a slot that was never granted")
        # A release frees exactly one slot, so at most one waiter can be
        # granted — inlined from _grant_waiters.
        queue = self._queue
        if queue and len(users) < self.capacity:
            granted = queue.popleft()
            users.append(granted)
            granted._value = granted
            granted._scheduled = True
            env = granted.env
            sequence = env._sequence
            env._sequence = sequence + 1
            env._now_queue.append((sequence, granted))
        else:
            # Uncontended release: recycle the request when the holder's
            # local binding is its only remaining reference (4 == local +
            # the _value self-reference every granted request carries +
            # parameter + the getrefcount argument).  Engine-granted
            # requests are still referenced by run-loop locals here and
            # anything parked in AllOf lists or traces stays above the
            # threshold, so only genuinely private objects enter the
            # pool.  Contended releases skip the check outright — their
            # requests came through the engine and never pass it.
            spare = self._spare
            if len(spare) < 8 and getrefcount(request) == 4:
                request._value = None  # drop the self-reference
                spare.append(request)

    def acquire(self, holder: Generator) -> Generator:
        """Run ``holder`` (a generator) while holding one slot.

        Convenience wrapper encapsulating request/try/finally-release::

            yield from resource.acquire(self._do_transfer(...))
        """
        request = self.request()
        yield request
        try:
            result = yield self.env.process(holder)
        finally:
            self.release(request)
        return result

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)
        self._grant_waiters()

    def _cancel(self, request: Request) -> None:
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cancel() of a request that is not queued")

    def _grant_waiters(self) -> None:
        queue = self._queue
        users = self._users
        while queue and len(users) < self.capacity:
            granted = queue.popleft()
            users.append(granted)
            # Inlined granted.succeed(granted): a queued request is never
            # already triggered (cancel removes it from the queue), so the
            # guard and the attribute dance of succeed() are pure cost.
            granted._value = granted
            granted._scheduled = True
            env = granted.env
            sequence = env._sequence
            env._sequence = sequence + 1
            env._now_queue.append((sequence, granted))


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item, blocking the caller until one is available.
    """

    __slots__ = ("env", "_items", "_getters", "_spare")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        # One recycled born-processed event for the item-available fast
        # path of get().  Reused only once the previous getter's frame
        # has dropped its reference (refcount check), so each consumer
        # observes a normal one-shot event.
        self._spare: Optional[Event] = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            # Inlined .succeed(item): a queued getter cannot be triggered.
            getter = self._getters.popleft()
            getter._value = item
            getter._scheduled = True
            env = getter.env
            sequence = env._sequence
            env._sequence = sequence + 1
            env._now_queue.append((sequence, getter))
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event firing with the next item (immediately if available).

        When an item is already available the returned event is *born
        processed* (like :meth:`Resource.try_acquire`): yielding it costs
        one synchronous ``send`` and no heap traffic, and its ``value``
        is readable immediately.  Only an empty store parks the getter on
        a scheduled event.  FIFO fairness among getters is unaffected —
        getters only ever queue when the store is empty.
        """
        env = self.env
        if self._items:
            event = self._spare
            if event is not None and getrefcount(event) == 2:
                # 2 == self._spare + the getrefcount argument: the last
                # getter is done with it.
                event._value = self._items.popleft()
                return event
            event = Event.__new__(Event)
            event.env = env
            event.callbacks = None
            event._value = self._items.popleft()
            event._exception = None
            event._scheduled = True
            self._spare = event
            return event
        event = env.event()
        self._getters.append(event)
        return event
