"""The seed-driven chaos schedule.

A :class:`ChaosConfig` fully determines a fault-injection run: the seed
plus the per-mechanism intervals are the *only* inputs to the injector's
random streams, and every stream is keyed by a fixed string tag, so

- the same config always produces the same injection schedule, and
- enabling one mechanism never shifts another mechanism's draws.

Intervals are expressed in *engine events* (the deterministic clock of
:attr:`repro.engine.core.Environment.event_count`), not simulated
seconds: injections themselves add events, and an event-count clock makes
the schedule self-consistent under that feedback.  An interval of 0
disables the mechanism.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields
from typing import Dict, Tuple

from repro.units import us


@dataclass
class ChaosConfig:
    """Fault taxonomy knobs; all intervals are mean engine-event counts."""

    #: Master seed.  Every mechanism derives its own stream as
    #: ``random.Random(f"{seed}:{tag}")``.
    seed: int = 0

    # --- interconnect degradation ---------------------------------------
    #: Mean events between degradation windows (0 = off).
    link_degrade_interval: int = 0
    #: Window length, in events, before the link is restored.
    link_degrade_duration: int = 400
    #: Bandwidth multiplier range drawn per window (uniform).
    link_degrade_factor_min: float = 0.25
    link_degrade_factor_max: float = 0.75
    #: Added per-command latency during a window (a congested switch).
    link_degrade_extra_latency: float = field(default=us(15.0))

    # --- transient transfer (DMA) faults --------------------------------
    #: Mean events between armed transfer faults (0 = off).  Each armed
    #: fault aborts the next DMA command on the link mid-flight; the
    #: migration engine's retry/backoff path recovers.
    transfer_fault_interval: int = 0

    # --- ECC frame retirement -------------------------------------------
    #: Mean events between ECC retirements (0 = off).  Each retirement
    #: forcibly vacates one frame (remapping/evicting its resident block)
    #: and removes it from the pool for the rest of the run.
    ecc_retire_interval: int = 0
    #: Ceiling on retired frames as a fraction of initial capacity, so a
    #: long run cannot retire a GPU into the ground.
    ecc_max_retired_fraction: float = 0.125

    # --- fault-replay storms and batch reordering -----------------------
    #: Mean events between replay storms (0 = off).  A storm makes the
    #: next fault batch replay repeatedly before it is serviced, charging
    #: its batch overhead ``replay_storm_factor`` extra times.
    replay_storm_interval: int = 0
    replay_storm_factor: int = 3
    #: Probability that any given fault batch is serviced in a permuted
    #: order (0.0 = off).  Exercises order-independence of the residency
    #: state machine.
    batch_reorder_probability: float = 0.0

    # --- kernel abort-and-retry -----------------------------------------
    #: Probability, per wave boundary, that the running kernel is killed
    #: and re-executed from its first wave (0.0 = off).
    kernel_abort_probability: float = 0.0
    #: Max aborts per kernel launch (guarantees termination).
    kernel_abort_limit: int = 2

    # --- oversubscription pressure spikes -------------------------------
    #: Mean events between pressure spikes (0 = off).  A spike reserves a
    #: slice of free GPU memory (an idle co-tenant waking up) and returns
    #: it after ``pressure_spike_duration`` events.
    pressure_spike_interval: int = 0
    #: Frames grabbed per spike (clamped to what is actually free).
    pressure_spike_frames: int = 4
    pressure_spike_duration: int = 600

    def validate(self) -> None:
        for name in (
            "link_degrade_interval",
            "link_degrade_duration",
            "transfer_fault_interval",
            "ecc_retire_interval",
            "replay_storm_interval",
            "replay_storm_factor",
            "kernel_abort_limit",
            "pressure_spike_interval",
            "pressure_spike_frames",
            "pressure_spike_duration",
        ):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"ChaosConfig.{name} must be >= 0, got {getattr(self, name)}"
                )
        if not 0.0 < self.link_degrade_factor_min <= self.link_degrade_factor_max <= 1.0:
            raise ValueError(
                "ChaosConfig link-degrade factor range must satisfy "
                "0 < min <= max <= 1, got "
                f"[{self.link_degrade_factor_min}, {self.link_degrade_factor_max}]"
            )
        if self.link_degrade_extra_latency < 0:
            raise ValueError("ChaosConfig.link_degrade_extra_latency must be >= 0")
        for name in ("batch_reorder_probability", "kernel_abort_probability"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(
                    f"ChaosConfig.{name} must be in [0, 1], got {getattr(self, name)}"
                )
        if not 0.0 <= self.ecc_max_retired_fraction < 1.0:
            raise ValueError(
                "ChaosConfig.ecc_max_retired_fraction must be in [0, 1), got "
                f"{self.ecc_max_retired_fraction}"
            )

    @property
    def any_enabled(self) -> bool:
        """Whether any fault mechanism is active."""
        return bool(
            self.link_degrade_interval
            or self.transfer_fault_interval
            or self.ecc_retire_interval
            or self.replay_storm_interval
            or self.batch_reorder_probability
            or self.kernel_abort_probability
            or self.pressure_spike_interval
        )

    def to_dict(self) -> Dict[str, object]:
        """Non-default fields only — the stable cache/serialization form."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = (
                f.default if f.default is not MISSING
                else f.default_factory()  # type: ignore[misc]
            )
            if value != default:
                out[f.name] = value
        return out

    @classmethod
    def from_items(cls, items: Tuple[Tuple[str, object], ...]) -> "ChaosConfig":
        """Build from the normalized ``(name, value)`` tuple form used by
        :class:`repro.harness.sweep.SweepPoint`."""
        config = cls(**dict(items))
        config.validate()
        return config

    @classmethod
    def default_storm(cls, seed: int = 0) -> "ChaosConfig":
        """The everything-on preset used by the smoke suite and CLI."""
        return cls(
            seed=seed,
            link_degrade_interval=60,
            link_degrade_duration=40,
            transfer_fault_interval=30,
            ecc_retire_interval=80,
            replay_storm_interval=50,
            batch_reorder_probability=0.35,
            kernel_abort_probability=0.15,
            pressure_spike_interval=70,
            pressure_spike_frames=3,
            pressure_spike_duration=60,
        )
