"""The chaos acceptance-suite workload catalog.

Kept in a leaf module so the CLI can list the suite (help strings,
``--workloads`` validation) without importing the runner's NumPy- and
simulator-heavy dependency chain.

The tuple's order is load-bearing: chaos input generation keys its NumPy
generator on ``(seed, CHAOS_WORKLOADS.index(name))``, so entries must
only ever be APPENDED — reordering or removing one silently changes
every later workload's input data and therefore its golden digests.
"""

from __future__ import annotations

#: The acceptance-suite workloads: the paper's three micro-benchmarks,
#: one DL net, and the five UVMBench-style categories.
CHAOS_WORKLOADS = (
    "fir",
    "radix",
    "hashjoin",
    "mlp",
    "bfs",
    "kmeans",
    "knn",
    "stencil",
    "reduction",
)

__all__ = ["CHAOS_WORKLOADS"]
